"""Patchwork configuration (requirement R5: tunable fidelity).

"The user sets the duration of each sample, number of samples in each
run, and the number of runs between cycles.  The user also configures
packet truncation size and capture pre-processing" (Section 6.2.2).
The defaults here are the paper's production settings: 20-second
samples taken at 5-minute intervals, 200-byte truncation, tcpdump as
the default capture method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.capture.session import CaptureMethod

FrameTransform = Callable[[bytes], bytes]


@dataclass(frozen=True)
class SamplingPlan:
    """Timing structure of a profile: cycles > runs > samples.

    A *run* is ``samples_per_run`` samples of ``sample_duration``
    seconds, ``sample_interval`` seconds apart.  After
    ``runs_per_cycle`` runs, the instance cycles its mirrors to new
    ports.  ``cycles`` bounds the whole profiling session.
    """

    sample_duration: float = 20.0
    sample_interval: float = 300.0
    samples_per_run: int = 3
    runs_per_cycle: int = 1
    cycles: int = 2

    def __post_init__(self) -> None:
        if self.sample_duration <= 0:
            raise ValueError("sample_duration must be positive")
        if self.sample_interval < self.sample_duration:
            raise ValueError("sample_interval must cover the sample itself")
        if min(self.samples_per_run, self.runs_per_cycle, self.cycles) < 1:
            raise ValueError("samples/runs/cycles must be at least 1")

    @property
    def total_samples(self) -> int:
        return self.samples_per_run * self.runs_per_cycle * self.cycles

    @property
    def approximate_duration(self) -> float:
        """Rough wall-clock length of the sampling phase."""
        return self.total_samples * self.sample_interval


@dataclass
class PatchworkConfig:
    """Everything a user chooses before starting Patchwork."""

    # Where captures and logs land (per-site subdirectories are created).
    output_dir: Path = field(default_factory=lambda: Path("patchwork-out"))
    # all-experiment mode profiles everything; single-experiment mode is
    # restricted to ports of one slice (set ``slice_name``).
    all_experiment: bool = True
    slice_name: Optional[str] = None
    # Sites to profile; None means every site (all-experiment mode).
    sites: Optional[Sequence[str]] = None
    plan: SamplingPlan = field(default_factory=SamplingPlan)
    # Capture knobs.
    capture_method: CaptureMethod = CaptureMethod.TCPDUMP
    snaplen: int = 200
    transform: Optional[FrameTransform] = None
    # Port selection: "busiest-bias" (default), "fixed", "uplinks", "all".
    selector: str = "busiest-bias"
    selector_n: int = 4          # the n of "1/n other non-idle port"
    fixed_ports: Sequence[str] = ()
    idle_threshold_bps: float = 1_000.0
    # Resource acquisition.
    desired_instances: int = 2   # listening nodes requested per site
    max_backoffs: int = 4
    transient_retries: int = 2
    # Telemetry window used for busiest/idle ranking (seconds).
    telemetry_window: float = 600.0

    def __post_init__(self) -> None:
        self.output_dir = Path(self.output_dir)
        if self.snaplen <= 0:
            raise ValueError("snaplen must be positive")
        if self.desired_instances < 1:
            raise ValueError("need at least one instance")
        if not self.all_experiment and not self.slice_name:
            raise ValueError("single-experiment mode needs a slice name")
