"""Patchwork configuration (requirement R5: tunable fidelity).

"The user sets the duration of each sample, number of samples in each
run, and the number of runs between cycles.  The user also configures
packet truncation size and capture pre-processing" (Section 6.2.2).
The defaults here are the paper's production settings: 20-second
samples taken at 5-minute intervals, 200-byte truncation, tcpdump as
the default capture method.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.capture.session import CaptureMethod

FrameTransform = Callable[[bytes], bytes]


@dataclass(frozen=True)
class SamplingPlan:
    """Timing structure of a profile: cycles > runs > samples.

    A *run* is ``samples_per_run`` samples of ``sample_duration``
    seconds, ``sample_interval`` seconds apart.  After
    ``runs_per_cycle`` runs, the instance cycles its mirrors to new
    ports.  ``cycles`` bounds the whole profiling session.
    """

    sample_duration: float = 20.0
    sample_interval: float = 300.0
    samples_per_run: int = 3
    runs_per_cycle: int = 1
    cycles: int = 2

    def __post_init__(self) -> None:
        if self.sample_duration <= 0:
            raise ValueError("sample_duration must be positive")
        if self.sample_interval < self.sample_duration:
            raise ValueError("sample_interval must cover the sample itself")
        if min(self.samples_per_run, self.runs_per_cycle, self.cycles) < 1:
            raise ValueError("samples/runs/cycles must be at least 1")

    @property
    def total_samples(self) -> int:
        return self.samples_per_run * self.runs_per_cycle * self.cycles

    @property
    def approximate_duration(self) -> float:
        """Rough wall-clock length of the sampling phase."""
        return self.total_samples * self.sample_interval


@dataclass(frozen=True)
class RecoveryConfig:
    """Fault-recovery knobs (all layers; disabled by default).

    With ``enabled`` False the system behaves like the paper's original
    Patchwork: transient failures are retried a couple of times at
    essentially the same instant, a watchdog trip loses the site, and
    failed sites stay failed for the occasion -- the behaviour behind
    Fig 10's ~20 % failure share.  Enabling recovery turns on:

    * jittered exponential retries with a sim-time deadline budget and
      a per-site circuit breaker on every control-plane mutation
      (:mod:`repro.core.retry`),
    * a bounded restart of the sampling loop after a watchdog trip
      (salvaging already-written samples; outcome ``DEGRADED``), and
    * one coordinator-level re-dispatch of failed sites within the
      occasion budget.
    """

    enabled: bool = False
    # Control-plane retry policy (see repro.core.retry.RetryPolicy).
    retry_attempts: int = 5
    retry_base_delay: float = 15.0
    retry_max_delay: float = 240.0
    retry_jitter: float = 0.5
    retry_deadline: float = 900.0
    # Per-site circuit breaker.
    breaker_threshold: int = 5
    breaker_cooldown: float = 120.0
    # Instance-level recovery.
    restart_limit: int = 1
    restart_delay: float = 30.0
    # Coordinator-level recovery.
    redispatch_limit: int = 1

    def __post_init__(self) -> None:
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be at least 1")
        if self.restart_limit < 0 or self.redispatch_limit < 0:
            raise ValueError("recovery limits cannot be negative")


@dataclass(frozen=True)
class AnalysisConfig:
    """Offline-pipeline knobs (Fig 9: Digest/Index/Analyze/Process).

    ``max_workers`` bounds the Digest process pool -- pcaps are
    embarrassingly parallel, one worker digests one capture at a time.
    ``0`` means "one worker per CPU".  The content-addressed acap cache
    (``cache_enabled``) lets a re-run over an unchanged corpus skip
    dissection; ``cache_dir`` defaults to ``<output_dir>/acap-cache``.
    """

    max_workers: int = 1
    cache_enabled: bool = True
    cache_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.max_workers < 0:
            raise ValueError("max_workers cannot be negative")
        if self.max_workers == 0:
            object.__setattr__(self, "max_workers", os.cpu_count() or 1)


@dataclass(frozen=True)
class TelemetryConfig:
    """Streaming-telemetry knobs (:mod:`repro.telemetry.query`).

    Disabled by default: the paper's Patchwork only has the SNMP poller.
    Enabling turns on (a) switch-side query operators shipping periodic
    sketch reports, (b) INT-style in-band stamping of mirrored clones,
    and (c) the sketch/in-band congestion detectors scored alongside the
    SNMP verdict on every sample ledger.  ``seed`` feeds the sketch hash
    derivation (campaign seed in practice) so reports are byte-identical
    across runs and shard-worker counts.
    """

    enabled: bool = False
    window: float = 1.0              # tumbling-window period (seconds)
    epsilon: float = 0.05            # count-min overcount bound
    delta: float = 0.05              # count-min failure probability
    heavy_hitters: int = 8           # top-k kept by the heavy-hitter query
    stamp_every: int = 8             # in-band: stamp 1-in-k mirrored clones
    # In-band overload trigger (occupancy fraction).  Kept well below
    # saturation: near-1.0 stamps ride frames the full queue is about
    # to drop, so they rarely survive to the capture host.
    occupancy_threshold: float = 0.6
    headroom: float = 1.0            # sketch detector rate headroom
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("telemetry window must be positive")
        if not 0.0 < self.epsilon < 1.0 or not 0.0 < self.delta < 1.0:
            raise ValueError("epsilon and delta must be in (0, 1)")
        if self.heavy_hitters < 1 or self.stamp_every < 1:
            raise ValueError("heavy_hitters and stamp_every must be >= 1")
        if not 0.0 < self.occupancy_threshold <= 1.0:
            raise ValueError("occupancy_threshold must be in (0, 1]")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")


@dataclass
class PatchworkConfig:
    """Everything a user chooses before starting Patchwork."""

    # Where captures and logs land (per-site subdirectories are created).
    output_dir: Path = field(default_factory=lambda: Path("patchwork-out"))
    # all-experiment mode profiles everything; single-experiment mode is
    # restricted to ports of one slice (set ``slice_name``).
    all_experiment: bool = True
    slice_name: Optional[str] = None
    # Sites to profile; None means every site (all-experiment mode).
    sites: Optional[Sequence[str]] = None
    plan: SamplingPlan = field(default_factory=SamplingPlan)
    # Capture knobs.
    capture_method: CaptureMethod = CaptureMethod.TCPDUMP
    snaplen: int = 200
    # Prefixed onto every pcap file name.  Durable campaigns set
    # "o<occasion>_" so pcaps from different occasions sharing one
    # captures directory keep globally unique, content-addressable names
    # (the audit keys samples by "<site>/<pcap name>").
    pcap_prefix: str = ""
    transform: Optional[FrameTransform] = None
    # Port selection: "busiest-bias" (default), "fixed", "uplinks", "all".
    selector: str = "busiest-bias"
    selector_n: int = 4          # the n of "1/n other non-idle port"
    fixed_ports: Sequence[str] = ()
    idle_threshold_bps: float = 1_000.0
    # Resource acquisition.
    desired_instances: int = 2   # listening nodes requested per site
    max_backoffs: int = 4
    transient_retries: int = 2
    # Base delay between transient-error retries during acquisition
    # (jittered; spent as sim time so retries can outlast an outage).
    transient_retry_delay: float = 5.0
    # Telemetry window used for busiest/idle ranking (seconds).
    telemetry_window: float = 600.0
    # Streaming telemetry: query operators, in-band stamping, detectors.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    # Fault recovery (off by default: the paper's original behaviour).
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    # Offline analysis pipeline (worker pool + acap cache).
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)

    def __post_init__(self) -> None:
        self.output_dir = Path(self.output_dir)
        if self.snaplen <= 0:
            raise ValueError("snaplen must be positive")
        if self.desired_instances < 1:
            raise ValueError("need at least one instance")
        if self.transient_retry_delay < 0:
            raise ValueError("transient_retry_delay cannot be negative")
        if not self.all_experiment and not self.slice_name:
            raise ValueError("single-experiment mode needs a slice name")
