"""Crash-safe campaigns: durable checkpoint/resume over many occasions.

A campaign is the paper's real workload -- months of profiling occasions
-- and the process driving it *will* die at some point.  This module
makes that survivable with deterministic recovery:

* a :class:`CampaignManifest` pins every knob (seed, sites, plan) so a
  resuming process provably reruns *the same* campaign;
* every occasion derives its RNG streams from ``(seed, label)`` pairs
  (:mod:`repro.util.rng`) recorded in the WAL, so re-running an occasion
  reproduces it byte for byte -- checkpoints never pickle live state;
* the :class:`repro.core.checkpoint.CampaignLog` WAL +
  :class:`repro.core.checkpoint.CheckpointStore` snapshots make occasion
  completion durable (see that module for the commit protocol);
* the final ``journal.jsonl`` is the byte-concatenation of per-occasion
  journal segments, each rebased with ``RunJournal.reseq``, so a resumed
  campaign's journal is **byte-identical** to an uninterrupted one --
  the oracle the chaos harness (:mod:`repro.testbed.chaos`) checks.

Two resume modes:

* **strict** (default): any occasion that is not durably committed --
  including one that crashed mid-run -- is re-run in full from its
  journaled seeds.  Output is byte-identical to never having crashed.
* **salvage** (``--salvage``): the crashed occasion's completed samples
  (the WAL's sample rows) are adopted as a DEGRADED outcome without
  re-running, mirroring the instance watchdog's salvage path.  Faster,
  but explicitly *not* byte-identical to the uninterrupted run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.checkpoint import (CHECKPOINT_DIR, MANIFEST_NAME, SEGMENT_DIR,
                                   WAL_NAME, CampaignCheckpointer, CampaignLog,
                                   CheckpointStore, RecoveryState,
                                   WalCorruptionError, canonical_json,
                                   sha256_bytes, sha256_file)
from repro.core.config import (AnalysisConfig, PatchworkConfig, RecoveryConfig,
                               SamplingPlan, TelemetryConfig)
from repro.core.status import RunOutcome, RunRecord, success_rate
from repro.util.atomio import (FileIO, atomic_write_bytes, atomic_write_text,
                               sweep_tmp_files)
from repro.util.rng import SeedSequenceFactory

#: Labels of the independent RNG streams derived per occasion.
SEED_STREAMS = ("world", "traffic", "coordinator")


@dataclass(frozen=True)
class CampaignManifest:
    """Everything needed to re-derive a campaign deterministically."""

    seed: int = 42
    sites: Tuple[str, ...] = ("STAR", "MICH", "UTAH", "TACC")
    occasions: int = 3
    traffic_scale: float = 0.05
    sample_duration: float = 5.0
    sample_interval: float = 30.0
    samples_per_run: int = 2
    runs_per_cycle: int = 1
    cycles: int = 2
    desired_instances: int = 2
    snaplen: int = 200
    method: str = "tcpdump"
    crash_probability: float = 0.0
    recovery_enabled: bool = False
    workers: int = 1
    cache_enabled: bool = True
    # Seconds of traffic to pre-generate per occasion; 0.0 means the
    # profile CLI's conservative formula (plan duration x sites + 600).
    # Small campaigns (the chaos harness) pin a tight span: generating
    # flows the occasion never simulates dominates wall time otherwise.
    traffic_span: float = 0.0
    # Sharded execution: each site's instance runs in its own world
    # (own simulator, own per-site RNG streams, own journal segment)
    # and the per-site segments are merged deterministically.  Part of
    # the manifest -- not a runtime knob -- because it changes seed
    # derivation and therefore the canonical event stream; the *worker
    # count* is the runtime knob (same bytes at any parallelism).
    sharded: bool = False
    # Streaming telemetry: switch-side query operators + in-band
    # stamping + the sketch/in-band congestion detectors.  Manifest
    # state (not a runtime knob) because enabling it changes the
    # canonical event stream.
    telemetry_queries: bool = False
    telemetry_window: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(self.sites))
        if self.occasions < 1:
            raise ValueError("a campaign needs at least one occasion")

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["sites"] = list(self.sites)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignManifest":
        return cls(**{**data, "sites": tuple(data["sites"])})

    @property
    def sha256(self) -> str:
        return sha256_bytes((canonical_json(self.to_dict()) + "\n")
                            .encode("utf-8"))

    def plan(self) -> SamplingPlan:
        return SamplingPlan(
            sample_duration=self.sample_duration,
            sample_interval=self.sample_interval,
            samples_per_run=self.samples_per_run,
            runs_per_cycle=self.runs_per_cycle,
            cycles=self.cycles)

    def occasion_seeds(self, occasion: int) -> Dict[str, int]:
        """Derive this occasion's independent RNG stream seeds.

        Stateless: ``(campaign seed, occasion, stream label)`` fully
        determines each value, so a resuming process re-derives exactly
        what the crashed process journaled (and ``begin_occasion``
        cross-checks the two).
        """
        factory = SeedSequenceFactory(self.seed)
        return {stream: factory.integer(f"occasion{occasion}/{stream}",
                                        0, 2 ** 31)
                for stream in SEED_STREAMS}

    def shard_seeds(self, occasion: int, site: str) -> Dict[str, int]:
        """Derive one shard's independent RNG stream seeds.

        The factory child is keyed by the site label, so a shard's
        streams depend only on ``(campaign seed, site, occasion,
        stream)`` -- independent of worker count, scheduling order, or
        process start method (fork vs spawn), which is what makes the
        merged output byte-identical at any parallelism.
        """
        factory = SeedSequenceFactory(self.seed).child(f"site/{site}")
        return {stream: factory.integer(f"occasion{occasion}/{stream}",
                                        0, 2 ** 31)
                for stream in SEED_STREAMS}

    def occasion_shard_seeds(self, occasion: int) -> Dict[str, Dict[str, int]]:
        """All shard seeds of one occasion, keyed by site."""
        return {site: self.shard_seeds(occasion, site)
                for site in self.sites}


def occasion_config(manifest: CampaignManifest, occasion: int,
                    run_dir: Union[str, Path],
                    sites: Optional[Sequence[str]] = None) -> PatchworkConfig:
    """Build one occasion's :class:`PatchworkConfig`.

    ``sites`` restricts the profile to a subset (a shard worker passes
    its single target site); the default profiles every manifest site.
    """
    from repro.capture.session import CaptureMethod

    run_dir = Path(run_dir)
    method = {"tcpdump": CaptureMethod.TCPDUMP,
              "dpdk": CaptureMethod.DPDK,
              "fpga+dpdk": CaptureMethod.FPGA_DPDK}[manifest.method]
    return PatchworkConfig(
        output_dir=run_dir / "captures",
        sites=list(sites if sites is not None else manifest.sites),
        plan=manifest.plan(),
        desired_instances=manifest.desired_instances,
        snaplen=manifest.snaplen,
        capture_method=method,
        pcap_prefix=f"o{occasion}_",
        recovery=RecoveryConfig(enabled=manifest.recovery_enabled),
        analysis=AnalysisConfig(max_workers=max(manifest.workers, 1),
                                cache_enabled=manifest.cache_enabled),
        telemetry=TelemetryConfig(enabled=manifest.telemetry_queries,
                                  window=manifest.telemetry_window,
                                  seed=manifest.seed))


@dataclass
class CampaignSummary:
    """What one ``CampaignRunner.run()`` call accomplished."""

    run_dir: str
    occasions: int
    executed: List[int] = field(default_factory=list)
    skipped: List[int] = field(default_factory=list)
    salvaged: List[int] = field(default_factory=list)
    success_rate: float = 0.0
    audit_ok: bool = True
    journal_path: str = ""
    journal_sha256: str = ""
    records_sha256: str = ""
    resumed: bool = False
    noop: bool = False
    torn_wal: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class CampaignRunner:
    """Drives a durable campaign: fresh start, strict resume, salvage.

    Layout of one run directory::

        campaign.manifest   pinned knobs (atomic canonical JSON)
        campaign.wal        the write-ahead log
        checkpoints/        occNNNN.ckpt snapshots (atomic, checksummed)
        journal/            occNNNN.jsonl journal segments
        journal.jsonl       final journal = byte-concat of the segments
        records.json        final Fig 10 run records (canonical JSON)
        captures/<site>/    pcaps, oN_-prefixed for global uniqueness
        acap/ acap-cache/   digests + content-addressed cache
        logs/occNNNN/       per-occasion instance logs
    """

    def __init__(self, run_dir: Union[str, Path],
                 manifest: Optional[CampaignManifest] = None,
                 io: Optional[FileIO] = None,
                 shard_workers: int = 1):
        self.run_dir = Path(run_dir)
        self.manifest = manifest
        self.io = io if io is not None else FileIO()
        # Worker-pool size for sharded manifests.  A runtime knob, not
        # manifest state: the merged output is byte-identical at any
        # value, so a campaign begun at one parallelism may be resumed
        # at another.
        self.shard_workers = max(int(shard_workers), 1)
        # Parent-side wall-clock trace (built by run()): spans for
        # verify/reuse, salvage, shard dispatch/land, merge, and commit
        # land in run_dir/trace.jsonl -- a *non-deterministic* journal,
        # deliberately outside the byte-identity contract, which is why
        # these spans don't go into the canonical journal (shard-land
        # order varies with worker count).
        self._trace_obs = None

    @property
    def trace(self):
        """The parent-side tracer (inert until run() builds a live one)."""
        if self._trace_obs is None:
            from repro.obs import Observability
            self._trace_obs = Observability.disabled()
        return self._trace_obs.tracer

    # -- paths ---------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.run_dir / "journal.jsonl"

    def segment_path(self, occasion: int) -> Path:
        return self.run_dir / SEGMENT_DIR / f"occ{occasion:04d}.jsonl"

    def shard_segment_dir(self, occasion: int) -> Path:
        return self.run_dir / SEGMENT_DIR / f"occ{occasion:04d}.shards"

    # -- entry point ---------------------------------------------------------

    def run(self, resume: bool = False, salvage: bool = False,
            quiet: bool = True) -> CampaignSummary:
        """Run (or resume) the campaign to completion.

        ``resume=False`` on an existing run directory raises rather than
        clobbering durable state; ``resume=True`` on a fresh directory
        just starts the campaign (crashing before anything durable was
        written *is* the zero-progress resume case).
        """
        manifest = self._load_or_write_manifest(resume)
        log = CampaignLog(self.run_dir / WAL_NAME, io=self.io)
        store = CheckpointStore(self.run_dir / CHECKPOINT_DIR, io=self.io)
        store.sweep()
        # A crash between temp-file write and os.replace leaves .*.tmp
        # orphans; they hold no committed state.
        sweep_tmp_files(self.run_dir)
        sweep_tmp_files(self.run_dir / SEGMENT_DIR)
        if (self.run_dir / SEGMENT_DIR).is_dir():
            for shard_dir in sorted(
                    (self.run_dir / SEGMENT_DIR).glob("occ*.shards")):
                sweep_tmp_files(shard_dir)
        from repro.core.checkpoint import fold_records
        from repro.obs import Observability
        records = log.open()
        state = fold_records(records, torn=log.torn_on_open)
        summary = CampaignSummary(run_dir=str(self.run_dir),
                                  occasions=manifest.occasions,
                                  resumed=bool(records),
                                  torn_wal=log.torn_on_open)
        # Wall-clock tracing of the parent's own work (verify, shard
        # dispatch/land, merge, commit).  Written to trace.jsonl, not
        # the canonical journal: arrival order varies with worker
        # count, so these spans must stay outside the byte-identity
        # contract.
        self._trace_obs = Observability.create(deterministic=False)
        run_span = self.trace.start_span(
            "campaign.run", occasions=manifest.occasions,
            sharded=manifest.sharded, workers=self.shard_workers,
            resumed=bool(records))
        try:
            if state.manifest_sha is None:
                log.append("campaign-begin",
                           {"manifest_sha": manifest.sha256}, commit=True)
            elif state.manifest_sha != manifest.sha256:
                raise WalCorruptionError(
                    f"{self.manifest_path}: manifest does not match the one "
                    "this WAL was begun with; refusing to resume a different "
                    "campaign")
            if state.ended is not None:
                return self._already_complete(state, summary)
            checkpointer = CampaignCheckpointer(self.run_dir, log, store,
                                                state=state)
            all_records: Dict[int, List[Dict[str, Any]]] = {}
            salvage_budget = salvage
            for occasion in range(manifest.occasions):
                committed = state.committed.get(occasion)
                if committed is not None:
                    verify_span = self.trace.start_span(
                        "occasion.verify", occasion=occasion)
                    intact = self._verify_commit(committed)
                    verify_span.end(intact=intact)
                    if intact:
                        summary.skipped.append(occasion)
                        all_records[occasion] = \
                            list(committed.get("records", []))
                        continue
                    # Demote: an artifact the commit names is damaged or
                    # missing.  Clear the occasion's durable-state entries
                    # so Coordinator.occasion_committed doesn't skip the
                    # re-run and salvage can't adopt the stale sample rows.
                    state.committed.pop(occasion, None)
                    state.samples.pop(occasion, None)
                rows = state.salvageable(occasion)
                if salvage_budget and rows:
                    # Only the crashed (first uncommitted) occasion has
                    # rows to adopt; later ones never began.
                    salvage_budget = False
                    with self.trace.span("occasion.salvage",
                                         occasion=occasion, rows=len(rows)):
                        commit = self._salvage_occasion(
                            manifest, checkpointer, occasion, rows)
                    summary.salvaged.append(occasion)
                elif manifest.sharded:
                    with self.trace.span("occasion.run", occasion=occasion,
                                         sharded=True):
                        commit = self._run_occasion_sharded(
                            manifest, checkpointer, occasion)
                    summary.executed.append(occasion)
                else:
                    with self.trace.span("occasion.run", occasion=occasion,
                                         sharded=False):
                        commit = self._run_occasion(manifest, checkpointer,
                                                    occasion)
                    summary.executed.append(occasion)
                all_records[occasion] = list(commit.get("records", []))
            with self.trace.span("campaign.finalize"):
                self._finalize(manifest, log, all_records, summary)
        finally:
            run_span.end()
            if self.run_dir.is_dir():
                self._trace_obs.journal.write(self.run_dir / "trace.jsonl")
            log.close()
        return summary

    # -- phases --------------------------------------------------------------

    def _load_or_write_manifest(self, resume: bool) -> CampaignManifest:
        if self.manifest_path.exists():
            on_disk = CampaignManifest.from_dict(
                json.loads(self.manifest_path.read_text()))
            if not resume and (self.run_dir / WAL_NAME).exists():
                raise FileExistsError(
                    f"{self.run_dir} already holds a campaign; pass "
                    "resume=True (CLI: --resume) to continue it")
            if self.manifest is not None and \
                    self.manifest.sha256 != on_disk.sha256:
                raise WalCorruptionError(
                    f"{self.manifest_path}: on-disk manifest differs from "
                    "the requested one; refusing to mix campaigns")
            self.manifest = on_disk
            return on_disk
        if self.manifest is None:
            raise FileNotFoundError(
                f"{self.manifest_path}: no manifest to resume from")
        data = (canonical_json(self.manifest.to_dict()) + "\n").encode("utf-8")
        atomic_write_bytes(self.manifest_path, data, io=self.io)
        return self.manifest

    def _already_complete(self, state: RecoveryState,
                          summary: CampaignSummary) -> CampaignSummary:
        """Resume of a finished campaign: verify, report, change nothing."""
        ended = state.ended or {}
        summary.noop = True
        summary.success_rate = float(ended.get("success_rate", 0.0))
        summary.audit_ok = bool(ended.get("audit_ok", True))
        summary.journal_path = str(self.journal_path)
        summary.journal_sha256 = str(ended.get("journal_sha256", ""))
        summary.records_sha256 = str(ended.get("records_sha256", ""))
        summary.skipped = sorted(state.committed)
        if self.journal_path.exists() and summary.journal_sha256:
            if sha256_file(self.journal_path) != summary.journal_sha256:
                raise WalCorruptionError(
                    f"{self.journal_path}: final journal does not match the "
                    "campaign-end record")
        records_path = self.run_dir / "records.json"
        if records_path.exists() and summary.records_sha256:
            if sha256_file(records_path) != summary.records_sha256:
                raise WalCorruptionError(
                    f"{records_path}: final records do not match the "
                    "campaign-end record")
        return summary

    def _verify_commit(self, commit: Dict[str, Any]) -> bool:
        """Is every artifact an occasion-commit names still intact?

        Any mismatch -- a checkpoint half-replaced, a segment missing, a
        pcap truncated after the fact -- demotes the occasion back to
        "run me again"; determinism makes the re-run safe.
        """
        checks: List[Tuple[Path, Optional[str]]] = []
        if commit.get("checkpoint"):
            checks.append((self.run_dir / CHECKPOINT_DIR / commit["checkpoint"],
                           commit.get("checkpoint_sha256")))
        if commit.get("journal_segment"):
            checks.append((self.run_dir / SEGMENT_DIR /
                           commit["journal_segment"],
                           commit.get("journal_segment_sha256")))
        for rel, sha in (commit.get("pcaps") or {}).items():
            checks.append((self.run_dir / rel, sha))
        return self._paths_intact(checks)

    def _verify_shard_commit(self, commit: Dict[str, Any]) -> bool:
        """Is a shard-commit's segment (and every pcap it names) intact?"""
        checks: List[Tuple[Path, Optional[str]]] = [
            (self.run_dir / SEGMENT_DIR / commit["journal_segment"],
             commit.get("journal_segment_sha256"))]
        for rel, sha in (commit.get("pcaps") or {}).items():
            checks.append((self.run_dir / rel, sha))
        return self._paths_intact(checks)

    @staticmethod
    def _paths_intact(checks: List[Tuple[Path, Optional[str]]]) -> bool:
        for path, sha in checks:
            if not path.exists():
                return False
            if sha is not None and sha256_file(path) != sha:
                return False
        return True

    def _occasion_config(self, manifest: CampaignManifest,
                         occasion: int) -> PatchworkConfig:
        return occasion_config(manifest, occasion, self.run_dir)

    def _run_occasion(self, manifest: CampaignManifest,
                      checkpointer: CampaignCheckpointer,
                      occasion: int) -> Dict[str, Any]:
        """Execute one occasion from its derived seeds and commit it."""
        from repro import quickstart_federation
        from repro.analysis import AnalysisPipeline
        from repro.core.coordinator import Coordinator
        from repro.obs import Observability, scoped
        from repro.obs.ledger import attach_digests

        seeds = manifest.occasion_seeds(occasion)
        next_seq = self._next_seq(checkpointer.state, occasion)
        checkpointer.begin_occasion(occasion, seeds)
        federation, api, poller, orchestrator = quickstart_federation(
            site_names=list(manifest.sites), seed=seeds["world"],
            traffic_seed=seeds["traffic"],
            traffic_scale=manifest.traffic_scale)
        config = self._occasion_config(manifest, occasion)
        plan = config.plan
        span = manifest.traffic_span or (
            plan.approximate_duration * len(manifest.sites) + 600.0)
        window = 0.0
        while window < span:
            orchestrator.generate_window(window, min(150.0, span - window))
            window += 150.0
        with scoped(Observability.create(sim=federation.sim)) as obs:
            obs.journal.reseq(next_seq)
            coordinator = Coordinator(api, config, poller=poller,
                                      seed=seeds["coordinator"],
                                      checkpointer=checkpointer)
            coordinator.occasions_run = occasion
            bundle = coordinator.run_profile(
                crash_probability=manifest.crash_probability)
            bundle.write_logs(self.run_dir / "logs" / f"occ{occasion:04d}")
            cache_dir = (self.run_dir / "acap-cache"
                         if manifest.cache_enabled else None)
            pipeline = AnalysisPipeline(acap_dir=self.run_dir / "acap",
                                        max_workers=max(manifest.workers, 1),
                                        cache_dir=cache_dir)
            pipeline.run(bundle.pcap_paths)
            attach_digests(bundle.ledgers, pipeline.acaps)
            obs.snapshot_to_journal()
            sim_end = federation.sim.now
            journal = obs.journal
        segment = journal.write(self.segment_path(occasion), io=self.io)
        segment_sha = sha256_file(segment)
        pcaps = {}
        for pcap in bundle.pcap_paths:
            rel = str(Path(pcap).relative_to(self.run_dir))
            pcaps[rel] = sha256_file(pcap)
        record_rows = [r.to_dict() for r in bundle.run_records]
        ckpt_state = {
            "occasion": occasion,
            "seeds": seeds,
            "next_seq": journal.next_seq,
            "records": record_rows,
            "pcaps": pcaps,
            "sim_end": sim_end,
            "manifest_sha": manifest.sha256,
        }
        _path, ckpt_sha = checkpointer.store.save(occasion, ckpt_state)
        commit = {
            "checkpoint": checkpointer.store.name_for(occasion),
            "checkpoint_sha256": ckpt_sha,
            "journal_segment": segment.name,
            "journal_segment_sha256": segment_sha,
            "next_seq": journal.next_seq,
            "records": record_rows,
            "pcaps": pcaps,
            "sim_end": sim_end,
        }
        checkpointer.commit_occasion(occasion, commit)
        return checkpointer.state.committed[occasion]

    def _run_occasion_sharded(self, manifest: CampaignManifest,
                              checkpointer: CampaignCheckpointer,
                              occasion: int) -> Dict[str, Any]:
        """Execute one occasion as per-site shards and commit the merge.

        Each pending site runs through :func:`repro.core.sharding.run_shard`
        (serially for ``shard_workers <= 1``, else on a process pool);
        the parent -- the only durable-state writer -- lands each
        shard's segment atomically and fsyncs a ``shard-commit`` WAL
        record, so a crash mid-occasion resumes by reusing every intact
        shard.  When all shards are in, the per-site segments merge
        into the occasion segment ordered by ``(sim_time, site, seq)``
        and the occasion commits exactly like the serial path.
        """
        from repro.core.sharding import iter_shard_results, shard_task
        from repro.obs.journal import RunJournal
        from repro.obs.tracing import TraceContext

        seeds = manifest.occasion_shard_seeds(occasion)
        next_seq = self._next_seq(checkpointer.state, occasion)
        checkpointer.begin_occasion(occasion, seeds)
        shard_dir = self.shard_segment_dir(occasion)
        # Root span id for this occasion's trace tree.  Every shard's
        # top-level spans parent under it via the TraceContext pickled
        # into the shard task, so the merged journal reads as one
        # campaign-rooted tree at any --shard-workers N.
        root_id = f"campaign/occ{occasion}"
        shard_commits: Dict[str, Dict[str, Any]] = {}
        pending: List[str] = []
        with self.trace.span("shard.verify", occasion=occasion):
            for site in manifest.sites:
                commit = checkpointer.state.shards.get(occasion, {}).get(site)
                if commit is not None and self._verify_shard_commit(commit):
                    shard_commits[site] = commit
                else:
                    pending.append(site)
        tasks = [shard_task(manifest, occasion, self.run_dir, site,
                            seeds[site],
                            trace=TraceContext(site=site,
                                               root=root_id).to_dict())
                 for site in pending]
        dispatch_span = self.trace.start_span(
            "shard.dispatch", occasion=occasion, shards=len(tasks),
            reused=len(shard_commits), workers=self.shard_workers)
        for result in iter_shard_results(tasks, self.shard_workers):
            site = str(result["site"])
            land_span = self.trace.start_span("shard.land", site=site,
                                              occasion=occasion)
            segment_rel = f"{shard_dir.name}/{site}.jsonl"
            atomic_write_text(shard_dir / f"{site}.jsonl", result["journal"],
                              io=self.io)
            commit = {
                "journal_segment": segment_rel,
                "journal_segment_sha256": sha256_file(
                    shard_dir / f"{site}.jsonl"),
                "records": result["records"],
                "samples": result["samples"],
                "pcaps": result["pcaps"],
                "sim_end": result["sim_end"],
            }
            checkpointer.commit_shard(occasion, site, commit)
            shard_commits[site] = checkpointer.state.shards[occasion][site]
            land_span.end()
        dispatch_span.end()
        merge_span = self.trace.start_span("journal.merge", occasion=occasion,
                                           segments=len(manifest.sites))
        segments = []
        for site in manifest.sites:
            segment = RunJournal.read(
                self.run_dir / SEGMENT_DIR /
                shard_commits[site]["journal_segment"], strict=True)
            segments.append((site, segment))
        merged = RunJournal.merge(segments, start_seq=0)
        # Wrap the merged shard stream in the occasion root span.  The
        # wrapper is deterministic at any worker count: the open pins
        # t=0.0 and the close pins the latest shard sim end, both pure
        # functions of the (byte-identical) shard journals.
        journal = RunJournal(clock=None, enabled=True)
        journal.merge_warnings = merged.merge_warnings
        journal.emit("span-open", t=0.0, span=root_id, parent=None,
                     name="campaign.occasion",
                     attrs={"occasion": occasion, "sharded": True,
                            "sites": list(manifest.sites)})
        journal.events.extend(merged.events)
        journal.reseq(0)
        close_t = max(
            (float(shard_commits[site]["sim_end"])
             for site in manifest.sites
             if shard_commits[site].get("sim_end") is not None),
            default=0.0)
        journal.emit("span-close", t=close_t, span=root_id,
                     name="campaign.occasion", attrs={})
        journal.reseq(next_seq)
        segment_path = journal.write(self.segment_path(occasion), io=self.io)
        segment_sha = sha256_file(segment_path)
        merge_span.end(events=len(journal.events))
        record_rows = []
        pcaps: Dict[str, str] = {}
        sim_end = {}
        for site in sorted(shard_commits):
            record_rows.extend(shard_commits[site].get("records", []))
            pcaps.update(shard_commits[site].get("pcaps", {}))
            sim_end[site] = shard_commits[site].get("sim_end")
        ckpt_state = {
            "occasion": occasion,
            "seeds": seeds,
            "next_seq": journal.next_seq,
            "records": record_rows,
            "pcaps": pcaps,
            "sim_end": sim_end,
            "manifest_sha": manifest.sha256,
            "sharded": True,
        }
        with self.trace.span("occasion.commit", occasion=occasion):
            _path, ckpt_sha = checkpointer.store.save(occasion, ckpt_state)
            commit = {
                "checkpoint": checkpointer.store.name_for(occasion),
                "checkpoint_sha256": ckpt_sha,
                "journal_segment": segment_path.name,
                "journal_segment_sha256": segment_sha,
                "next_seq": journal.next_seq,
                "records": record_rows,
                "pcaps": pcaps,
                "sim_end": sim_end,
            }
            checkpointer.commit_occasion(occasion, commit)
        return checkpointer.state.committed[occasion]

    def _salvage_occasion(self, manifest: CampaignManifest,
                          checkpointer: CampaignCheckpointer,
                          occasion: int,
                          rows: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Adopt a crashed occasion's WAL sample rows without re-running.

        Sites with at least one completed sample become DEGRADED
        (``recovered=True``, like the watchdog's salvage path); sites
        the crash caught with nothing land INCOMPLETE.  The synthetic
        journal segment replays each row's ledger event so the
        conservation audit still covers the salvaged samples.
        """
        from repro.obs.journal import RunJournal

        seeds = (manifest.occasion_shard_seeds(occasion) if manifest.sharded
                 else manifest.occasion_seeds(occasion))
        next_seq = self._next_seq(checkpointer.state, occasion)
        by_site: Dict[str, List[Dict[str, Any]]] = {
            site: [] for site in manifest.sites}
        for row in rows:
            by_site.setdefault(str(row["site"]), []).append(row)
        record_rows = []
        for site in sorted(by_site):
            site_rows = by_site[site]
            if site_rows:
                record = RunRecord(
                    site=site, started_at=0.0, outcome=RunOutcome.DEGRADED,
                    reason="salvaged after coordinator crash",
                    samples_taken=len(site_rows),
                    pcap_files=sum(1 for r in site_rows if r.get("pcap")),
                    recovered=True)
            else:
                record = RunRecord(
                    site=site, started_at=0.0, outcome=RunOutcome.INCOMPLETE,
                    reason="coordinator crash")
            record_rows.append(record.to_dict())
        journal = RunJournal(clock=None, deterministic=True, enabled=True,
                             start_seq=next_seq)
        for row in rows:
            if row.get("ledger") is not None:
                journal.emit("ledger", t=row.get("t"), **row["ledger"])
        journal.emit("salvage", t=None, occasion=occasion,
                     samples=len(rows),
                     sites={site: len(site_rows)
                            for site, site_rows in sorted(by_site.items())})
        segment = journal.write(self.segment_path(occasion), io=self.io)
        segment_sha = sha256_file(segment)
        pcaps = {str(row["pcap"]): row["pcap_sha256"] for row in rows
                 if row.get("pcap") and row.get("pcap_sha256")
                 and (self.run_dir / str(row["pcap"])).exists()}
        ckpt_state = {
            "occasion": occasion,
            "seeds": seeds,
            "next_seq": journal.next_seq,
            "records": record_rows,
            "pcaps": pcaps,
            "sim_end": None,
            "manifest_sha": manifest.sha256,
            "salvaged": True,
        }
        _path, ckpt_sha = checkpointer.store.save(occasion, ckpt_state)
        commit = {
            "checkpoint": checkpointer.store.name_for(occasion),
            "checkpoint_sha256": ckpt_sha,
            "journal_segment": segment.name,
            "journal_segment_sha256": segment_sha,
            "next_seq": journal.next_seq,
            "records": record_rows,
            "pcaps": pcaps,
            "sim_end": None,
        }
        checkpointer.commit_occasion(occasion, commit, salvaged=True)
        return checkpointer.state.committed[occasion]

    def _next_seq(self, state: RecoveryState, occasion: int) -> int:
        """First journal sequence number of this occasion's segment."""
        if occasion == 0:
            return 0
        previous = state.committed.get(occasion - 1)
        if previous is None:
            raise WalCorruptionError(
                f"occasion {occasion} cannot start: occasion {occasion - 1} "
                "was never committed (out-of-order WAL)")
        return int(previous["next_seq"])

    def _finalize(self, manifest: CampaignManifest, log: CampaignLog,
                  all_records: Dict[int, List[Dict[str, Any]]],
                  summary: CampaignSummary) -> None:
        """Concatenate segments, write final artifacts, append campaign-end."""
        from repro.obs.audit import audit_file

        chunks = []
        for occasion in range(manifest.occasions):
            chunks.append(self.segment_path(occasion).read_bytes())
        journal_bytes = b"".join(chunks)
        atomic_write_bytes(self.journal_path, journal_bytes, io=self.io)
        flat = []
        for occasion in sorted(all_records):
            for row in all_records[occasion]:
                flat.append({**row, "occasion": occasion})
        records_bytes = (canonical_json({"records": flat}) + "\n") \
            .encode("utf-8")
        atomic_write_bytes(self.run_dir / "records.json", records_bytes,
                           io=self.io)
        run_records = [RunRecord.from_dict(row) for row in flat]
        rate = success_rate(run_records)
        audit = audit_file(self.journal_path)
        audit_ok = audit.ok if audit.ledgers else True
        summary.success_rate = rate
        summary.audit_ok = audit_ok
        summary.journal_path = str(self.journal_path)
        summary.journal_sha256 = sha256_bytes(journal_bytes)
        summary.records_sha256 = sha256_bytes(records_bytes)
        log.append("campaign-end", {
            "occasions": manifest.occasions,
            "journal_sha256": summary.journal_sha256,
            "records_sha256": summary.records_sha256,
            "success_rate": rate,
            "audit_ok": audit_ok,
        }, commit=True)


def resume_campaign(run_dir: Union[str, Path], salvage: bool = False,
                    io: Optional[FileIO] = None,
                    shard_workers: int = 1) -> CampaignSummary:
    """Resume an interrupted campaign from its run directory alone."""
    return CampaignRunner(run_dir, io=io, shard_workers=shard_workers) \
        .run(resume=True, salvage=salvage)
