"""Mirror-port sharing (paper Section 6.3 limitation 1).

"Resources cannot be shared across Patchwork instances ... only a
single FABRIC user at a time can mirror a specific switch port.
Sharing could be achieved by having an intermediate layer that
schedules the use of mirrored ports on behalf of more than one FABRIC
user."

:class:`MirrorScheduler` is that intermediate layer: users submit lease
requests for (site, source port) pairs; the scheduler grants each port
to one holder at a time for a bounded lease, queueing contenders FIFO
and rotating on expiry.  Holders receive their grant through a
callback and may release early.  The scheduler never touches the
dataplane itself -- a grant is the *authorization* the holder uses to
call :meth:`~repro.testbed.api.TestbedAPI.create_port_mirror`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.netsim.engine import Event, Simulator

PortKey = Tuple[str, str]  # (site, source port id)

_lease_ids = itertools.count(1)


@dataclass
class MirrorLease:
    """One user's turn on a mirrored port."""

    lease_id: int
    site: str
    port_id: str
    holder: str
    granted_at: float
    expires_at: float
    active: bool = True

    @property
    def duration(self) -> float:
        return self.expires_at - self.granted_at


GrantCallback = Callable[[MirrorLease], None]
RevokeCallback = Callable[[MirrorLease], None]


@dataclass
class _Request:
    holder: str
    duration: float
    on_grant: GrantCallback
    on_revoke: Optional[RevokeCallback]


class MirrorScheduler:
    """Time-slices mirror source ports among requesters."""

    def __init__(self, sim: Simulator, max_lease_seconds: float = 600.0):
        if max_lease_seconds <= 0:
            raise ValueError("max lease must be positive")
        self.sim = sim
        self.max_lease_seconds = max_lease_seconds
        self._queues: Dict[PortKey, Deque[_Request]] = {}
        self._current: Dict[PortKey, MirrorLease] = {}
        self._revokers: Dict[int, Optional[RevokeCallback]] = {}
        self._expiry_events: Dict[int, Event] = {}
        self.grants_issued = 0

    # -- user API ------------------------------------------------------------

    def request(self, site: str, port_id: str, holder: str, duration: float,
                on_grant: GrantCallback,
                on_revoke: Optional[RevokeCallback] = None) -> None:
        """Queue a lease request; ``on_grant`` fires when it is this
        holder's turn (possibly immediately)."""
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        duration = min(duration, self.max_lease_seconds)
        key = (site, port_id)
        self._queues.setdefault(key, deque()).append(
            _Request(holder, duration, on_grant, on_revoke))
        if key not in self._current:
            self._grant_next(key)

    def release(self, lease: MirrorLease) -> None:
        """Return a lease early; the next queued holder is granted."""
        if not lease.active:
            return
        self._end_lease(lease, revoke=False)

    def holder_of(self, site: str, port_id: str) -> Optional[str]:
        """Who currently holds a port, if anyone."""
        lease = self._current.get((site, port_id))
        return lease.holder if lease else None

    def queue_length(self, site: str, port_id: str) -> int:
        """Requests waiting behind the current holder."""
        return len(self._queues.get((site, port_id), ()))

    # -- internals ------------------------------------------------------------

    def _grant_next(self, key: PortKey) -> None:
        queue = self._queues.get(key)
        if not queue:
            return
        request = queue.popleft()
        site, port_id = key
        lease = MirrorLease(
            lease_id=next(_lease_ids),
            site=site,
            port_id=port_id,
            holder=request.holder,
            granted_at=self.sim.now,
            expires_at=self.sim.now + request.duration,
        )
        self._current[key] = lease
        self._revokers[lease.lease_id] = request.on_revoke
        self._expiry_events[lease.lease_id] = self.sim.schedule(
            request.duration, self._expire, lease)
        self.grants_issued += 1
        request.on_grant(lease)

    def _expire(self, lease: MirrorLease) -> None:
        if lease.active:
            self._end_lease(lease, revoke=True)

    def _end_lease(self, lease: MirrorLease, revoke: bool) -> None:
        lease.active = False
        key = (lease.site, lease.port_id)
        if self._current.get(key) is lease:
            del self._current[key]
        event = self._expiry_events.pop(lease.lease_id, None)
        if event is not None:
            event.cancel()
        revoker = self._revokers.pop(lease.lease_id, None)
        if revoke and revoker is not None:
            revoker(lease)
        self._grant_next(key)
