"""Run outcomes: the vocabulary of the paper's Fig 10.

Every per-site Patchwork run ends in one of four states:

* **SUCCESS** -- the site was profiled as requested.
* **DEGRADED** -- profiling happened, but only after back-off scaled
  the resource request down ("low resources available in a FABRIC
  site, requiring the scaling-down of requests through back-off").
* **FAILED** -- no profiling happened: transient back-end problems or
  no resources at all.
* **INCOMPLETE** -- the Patchwork instance crashed mid-run (e.g. the
  VM ran out of storage, or the paper's since-fixed bug).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class RunOutcome(enum.Enum):
    SUCCESS = "success"
    DEGRADED = "degraded"
    FAILED = "failed"
    INCOMPLETE = "incomplete"


@dataclass
class RunRecord:
    """One (site, run) outcome, as mined from Patchwork's logs."""

    site: str
    started_at: float
    outcome: RunOutcome
    reason: str = ""
    backoffs: int = 0
    instances: int = 0
    samples_taken: int = 0
    pcap_files: int = 0
    # Recovery accounting (all zero/False when recovery is disabled),
    # kept per-record so Fig 10's outcome classes stay derivable both
    # with and without the recovery layer.
    retries: int = 0          # control-plane retry attempts
    breaker_opens: int = 0    # circuit-breaker open transitions
    restarts: int = 0         # sampling-loop restarts after watchdog trips
    recovered: bool = False   # a restart salvaged the run (-> DEGRADED)
    redispatched: bool = False  # the coordinator re-dispatched this site

    @property
    def profiled(self) -> bool:
        return self.outcome in (RunOutcome.SUCCESS, RunOutcome.DEGRADED)

    def to_dict(self) -> Dict[str, object]:
        """Flatten for the campaign WAL / ``records.json`` (canonical
        JSON friendly; round-trips through :meth:`from_dict`)."""
        return {
            "site": self.site,
            "started_at": self.started_at,
            "outcome": self.outcome.value,
            "reason": self.reason,
            "backoffs": self.backoffs,
            "instances": self.instances,
            "samples_taken": self.samples_taken,
            "pcap_files": self.pcap_files,
            "retries": self.retries,
            "breaker_opens": self.breaker_opens,
            "restarts": self.restarts,
            "recovered": self.recovered,
            "redispatched": self.redispatched,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        return cls(
            site=str(data["site"]),
            started_at=float(data["started_at"]),
            outcome=RunOutcome(data["outcome"]),
            reason=str(data.get("reason", "")),
            backoffs=int(data.get("backoffs", 0)),
            instances=int(data.get("instances", 0)),
            samples_taken=int(data.get("samples_taken", 0)),
            pcap_files=int(data.get("pcap_files", 0)),
            retries=int(data.get("retries", 0)),
            breaker_opens=int(data.get("breaker_opens", 0)),
            restarts=int(data.get("restarts", 0)),
            recovered=bool(data.get("recovered", False)),
            redispatched=bool(data.get("redispatched", False)),
        )


def outcome_fractions(records: List[RunRecord]) -> Dict[RunOutcome, float]:
    """Share of each outcome across a set of run records."""
    if not records:
        return {outcome: 0.0 for outcome in RunOutcome}
    total = len(records)
    return {
        outcome: sum(1 for r in records if r.outcome is outcome) / total
        for outcome in RunOutcome
    }


def success_rate(records: List[RunRecord]) -> float:
    """Fraction of runs that profiled their site (paper: 79 %)."""
    if not records:
        return 0.0
    return sum(1 for r in records if r.profiled) / len(records)


def recovery_summary(records: List[RunRecord]) -> Dict[str, int]:
    """Aggregate recovery accounting across a set of run records."""
    return {
        "retries": sum(r.retries for r in records),
        "breaker_opens": sum(r.breaker_opens for r in records),
        "restarts": sum(r.restarts for r in records),
        "recovered_runs": sum(1 for r in records if r.recovered),
        "redispatched_runs": sum(1 for r in records if r.redispatched),
    }


def publish_outcomes(records: List[RunRecord], registry=None,
                     journal=None, t: Optional[float] = None) -> Dict[str, int]:
    """Publish run outcomes + recovery accounting into ``repro.obs``.

    One source of truth: the gauges and the journal's ``recovery`` event
    carry exactly :func:`recovery_summary`'s numbers (plus the Fig 10
    outcome counts), derived from the same records.  Returns the
    recovery summary.  With no arguments, the process-default
    observability context is used.
    """
    from repro.obs import get_obs

    obs = get_obs()
    registry = registry if registry is not None else obs.registry
    journal = journal if journal is not None else obs.journal
    summary = recovery_summary(records)
    outcomes = {
        outcome.value: sum(1 for r in records if r.outcome is outcome)
        for outcome in RunOutcome
    }
    for key, value in summary.items():
        registry.gauge(f"recovery.{key}",
                       help=f"recovery accounting: {key}").set(value)
    for name, count in outcomes.items():
        registry.counter(f"runs.{name}",
                         help=f"per-site runs ending {name}").inc(count)
    journal.emit("recovery", t=t, summary=summary, outcomes=outcomes)
    return summary
