"""Dynamic resource scaling (paper Section 6.3 limitation 2 / Section 9).

"Except for mirrored ports, all of the resources used by Patchwork are
reserved at start-up time.  Adding dynamic scaling could improve
Patchwork's performance (e.g., by taking advantage of offloading
opportunities that become available at runtime) and flexibility (e.g.,
by having a 'nice' factor for the profiler to scale down its use of
resources if the testbed is being highly utilized by other
researchers)."

:class:`ScalingController` implements both directions as a policy the
instance consults at every cycle boundary:

* **scale up** when the instance has far more eligible ports than
  mirror slots *and* the site has spare dedicated NICs beyond a
  reserve -- it grows by one listening node (VM + dual-port NIC),
  adding two slots;
* **scale down** (the "nice" factor) when the site's dedicated NICs
  are nearly all taken by other researchers -- it releases its
  most-recently-added node.

The paper notes scale-down needs a signal Patchwork cannot currently
get; here the signal is the allocator's own availability view, which
is the obvious candidate a testbed could expose.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.testbed.api import TestbedAPI
from repro.testbed.errors import AllocationError, TestbedError
from repro.testbed.slice_model import NodeRequest, Slice, SliceRequest


class ScalingAction(enum.Enum):
    HOLD = "hold"
    GROW = "grow"
    SHRINK = "shrink"


@dataclass
class ScalingDecision:
    """What the policy chose and why (for the instance log)."""

    action: ScalingAction
    reason: str


class ScalingController:
    """The scale-up / nice-down policy."""

    def __init__(
        self,
        api: TestbedAPI,
        ports_per_slot_threshold: float = 4.0,
        nic_reserve: int = 1,
        nice_free_nic_floor: int = 1,
        max_extra_nodes: int = 2,
    ):
        """``ports_per_slot_threshold``: grow when eligible ports per
        mirror slot exceed this.  ``nic_reserve``: dedicated NICs to
        always leave for other users when growing.  ``nice_free_nic_floor``:
        shrink when the site's free NICs fall to this or below (other
        researchers are squeezed).  ``max_extra_nodes``: growth bound.
        """
        if ports_per_slot_threshold <= 0:
            raise ValueError("threshold must be positive")
        self.api = api
        self.ports_per_slot_threshold = ports_per_slot_threshold
        self.nic_reserve = nic_reserve
        self.nice_free_nic_floor = nice_free_nic_floor
        self.max_extra_nodes = max_extra_nodes
        self.grows = 0
        self.shrinks = 0

    # -- policy ------------------------------------------------------------

    def decide(self, site: str, eligible_ports: int, slots: int,
               extra_nodes: int) -> ScalingDecision:
        """Choose an action for the coming cycle."""
        free = self.api.available_resources(site).dedicated_nics
        if extra_nodes > 0 and free <= self.nice_free_nic_floor:
            return ScalingDecision(
                ScalingAction.SHRINK,
                f"nice factor: only {free} dedicated NICs left site-wide",
            )
        if slots == 0:
            return ScalingDecision(ScalingAction.HOLD, "no slots yet")
        if (eligible_ports / slots > self.ports_per_slot_threshold
                and extra_nodes < self.max_extra_nodes
                and free > self.nic_reserve):
            return ScalingDecision(
                ScalingAction.GROW,
                f"{eligible_ports} ports over {slots} slots with "
                f"{free} NICs free",
            )
        return ScalingDecision(ScalingAction.HOLD, "within bounds")

    # -- mechanics ------------------------------------------------------------

    def grow(self, site: str, base_slice_name: str) -> Optional[Slice]:
        """Allocate one additional listening node as its own slice.

        Returns the new slice, or None if the testbed refused (racing
        users) -- growth is opportunistic, never fatal.
        """
        request = SliceRequest(
            site=site,
            nodes=[NodeRequest(name="listener-extra")],
            name=f"{base_slice_name}/grow{self.grows}",
        )
        if self.api.simulate_allocation(request) is not None:
            return None
        try:
            live = self.api.create_slice(request)
        except (AllocationError, TestbedError):
            return None
        self.grows += 1
        return live

    def shrink(self, extra_slice: Slice) -> None:
        """Release a previously-grown node's slice."""
        self.api.delete_slice(extra_slice.name)
        self.shrinks += 1
