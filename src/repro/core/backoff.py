"""Iterative back-off during resource acquisition (Sections 6.2.1, 8.3).

Patchwork requests one listening node (VM + dedicated dual-port NIC)
per desired profiling instance.  If the site cannot satisfy the
request, Patchwork scales it down by one node and tries again --
"trading off resources for sample quality" -- until the request fits
or nothing is left to trim.  Transient back-end errors are retried a
bounded number of times before the run is declared failed.

Before each attempt the request is checked with a client-side
allocation simulation (the paper: Patchwork "carries out its own
allocation simulations to ensure that resource requests can always be
satisfied"), which turns predictable rejections into immediate
back-offs without a control-plane round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.logs import InstanceLog
from repro.testbed.api import TestbedAPI
from repro.testbed.errors import AllocationError, TransientBackendError
from repro.testbed.slice_model import NodeRequest, Slice, SliceRequest


@dataclass
class AcquisitionResult:
    """What came out of the acquisition phase at one site."""

    site: str
    live_slice: Optional[Slice]
    requested_nodes: int
    granted_nodes: int
    backoffs: int
    transient_failures: int
    failure_reason: str = ""

    @property
    def acquired(self) -> bool:
        return self.live_slice is not None

    @property
    def degraded(self) -> bool:
        """Acquired, but with fewer instances than desired."""
        return self.acquired and self.granted_nodes < self.requested_nodes


def patchwork_request(site: str, nodes: int, name: str = "") -> SliceRequest:
    """Build Patchwork's slice request for a site.

    Each listening node is the paper's default shape: 2 cores, 8 GB
    RAM, 100 GB storage, one dedicated dual-port NIC.
    """
    return SliceRequest(
        site=site,
        nodes=[NodeRequest(name=f"listener{i}") for i in range(nodes)],
        name=name or f"patchwork-{site}",
    )


def acquire_with_backoff(
    api: TestbedAPI,
    site: str,
    desired_nodes: int,
    log: InstanceLog,
    max_backoffs: int = 4,
    transient_retries: int = 2,
    retry_delay: float = 5.0,
    rng: Optional[np.random.Generator] = None,
    slice_name: str = "",
) -> AcquisitionResult:
    """Acquire a Patchwork slice at a site, scaling down as needed.

    Transient-error retries wait ``retry_delay`` seconds of *simulated*
    time (jittered when ``rng`` is given) between attempts, so that a
    retry sequence can outlast a short back-end outage window instead
    of re-attempting at the same instant.
    """
    request = patchwork_request(site, desired_nodes, slice_name)
    backoffs = 0
    transient_failures = 0
    while True:
        shortfall = api.simulate_allocation(request)
        if shortfall is not None:
            resource, need, have = shortfall
            log.warning(api.now, "acquire",
                        f"allocation simulation predicts shortfall of {resource}",
                        requested=need, available=have, nodes=len(request.nodes))
            smaller = request.scaled_down()
            if smaller is None or backoffs >= max_backoffs:
                return AcquisitionResult(
                    site, None, desired_nodes, 0, backoffs, transient_failures,
                    failure_reason=f"insufficient {resource}",
                )
            backoffs += 1
            request = smaller
            continue
        try:
            live = api.create_slice(request)
        except TransientBackendError as exc:
            transient_failures += 1
            log.error(api.now, "acquire", f"transient backend error: {exc}")
            if transient_failures > transient_retries:
                return AcquisitionResult(
                    site, None, desired_nodes, 0, backoffs, transient_failures,
                    failure_reason="transient backend error",
                )
            if retry_delay > 0:
                # Jitter in [0.5, 1.5) x base keeps concurrent sites'
                # retries from re-synchronizing onto the same instant.
                delay = retry_delay * (0.5 + rng.random()) if rng is not None \
                    else retry_delay
                log.info(api.now, "acquire", "waiting before transient retry",
                         delay=round(delay, 3), attempt=transient_failures)
                api.wait(delay)
            continue
        except AllocationError as exc:
            # The dry run passed but the testbed still refused (racing
            # users, placement fragmentation): treat as a back-off.
            log.warning(api.now, "acquire", f"allocation refused: {exc}")
            smaller = request.scaled_down()
            if smaller is None or backoffs >= max_backoffs:
                return AcquisitionResult(
                    site, None, desired_nodes, 0, backoffs, transient_failures,
                    failure_reason=str(exc),
                )
            backoffs += 1
            request = smaller
            continue
        log.info(api.now, "acquire", "slice allocated",
                 slice=live.name, nodes=len(live.vms), backoffs=backoffs)
        return AcquisitionResult(
            site, live, desired_nodes, len(live.vms), backoffs, transient_failures
        )
