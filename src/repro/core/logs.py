"""Instance logging.

"To meet (R3), Patchwork creates logs at every instance to capture a
variety of network- and host-related statistics that can help users
notice problems" (Section 6.2.2) -- and those logs are what the paper's
Fig 10 analysis was mined from.  :class:`InstanceLog` is a structured,
append-only event list that serializes to text and travels with the
captures in the gathered bundle.  Every appended event is also emitted
into the process :class:`~repro.obs.journal.RunJournal` (as a ``log``
event), so the machine-readable stream and the human text rendering are
two views of the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List

from repro.obs import get_obs

# Sim times below this render fixed-width (zero-padded to 14 columns);
# larger ones would silently overflow the column, so they switch to a
# plain non-padded rendering instead of corrupting the alignment.
_FIXED_WIDTH_LIMIT = 1e10


def _render_value(value: Any) -> str:
    """``k=v`` values containing whitespace (or quotes/``=``) are quoted
    so the rendering stays unambiguous and machine-splittable."""
    text = str(value)
    if any(c.isspace() for c in text) or "=" in text or '"' in text:
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
    return text


@dataclass(frozen=True)
class LogEvent:
    """One structured log line."""

    time: float
    level: str
    kind: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extras = " ".join(f"{k}={_render_value(v)}"
                          for k, v in sorted(self.data.items()))
        if 0 <= self.time < _FIXED_WIDTH_LIMIT:
            stamp = f"{self.time:014.3f}"
        else:
            stamp = f"{self.time:.3f}"
        body = f"[{stamp}] {self.level:<7} {self.kind}: {self.message}"
        return f"{body} {extras}".rstrip()


class InstanceLog:
    """Append-only event log for one Patchwork instance."""

    LEVELS = ("debug", "info", "warning", "error")

    def __init__(self, site: str, instance: str):
        self.site = site
        self.instance = instance
        self.events: List[LogEvent] = []

    def log(self, time: float, level: str, kind: str, message: str, **data: Any) -> LogEvent:
        if level not in self.LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        event = LogEvent(time, level, kind, message, dict(data))
        self.events.append(event)
        get_obs().journal.emit(
            "log", t=time, site=self.site, instance=self.instance,
            level=level, log_kind=kind, message=message, data=event.data)
        return event

    def info(self, time: float, kind: str, message: str, **data: Any) -> LogEvent:
        return self.log(time, "info", kind, message, **data)

    def warning(self, time: float, kind: str, message: str, **data: Any) -> LogEvent:
        return self.log(time, "warning", kind, message, **data)

    def error(self, time: float, kind: str, message: str, **data: Any) -> LogEvent:
        return self.log(time, "error", kind, message, **data)

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str) -> List[LogEvent]:
        return [e for e in self.events if e.kind == kind]

    def errors(self) -> List[LogEvent]:
        return [e for e in self.events if e.level == "error"]

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # -- serialization --------------------------------------------------------

    def render(self) -> str:
        header = f"# patchwork instance log site={self.site} instance={self.instance}\n"
        return header + "\n".join(event.render() for event in self.events) + "\n"

    def write_to(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path
