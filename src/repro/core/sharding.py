"""Per-site shard workers: one process per site, merged centrally.

Patchwork's instances are independent by design -- sites interact only
through the control plane (R3: "no inter-instance coordination") -- so
the simulation itself shards cleanly along site boundaries.  Each shard
runs one site's instance in its own process with its own
:class:`~repro.testbed.sim.Simulator`, its own RNG streams (derived
from a ``SeedSequenceFactory`` child keyed by the site label, see
:meth:`repro.core.campaign.CampaignManifest.shard_seeds`), and its own
:class:`~repro.obs.journal.RunJournal` segment.  The parent process --
the campaign runner, and the *only* writer of durable state -- then
merges the per-site segments into one canonical stream with
:meth:`RunJournal.merge`, ordered by ``(sim_time, site, seq)``.

Determinism contract: a sharded occasion's merged journal and records
are **byte-identical regardless of worker count**.  ``--shard-workers 1``
runs the same per-site workers serially in-process; ``N > 1`` fans them
over a process pool.  Both execute :func:`run_shard` with identical
task payloads, so every shard's journal is byte-identical either way,
and the merge is a pure function of the shard journals.  The parity
test (``tests/test_core_sharding.py``) and the chaos harness's
byte-identity oracle enforce this.

Durability: shard workers return their results to the parent; they
never touch the WAL, checkpoints, or journal segments themselves.  The
parent writes each shard segment atomically and appends a fsynced
``shard-commit`` WAL record per finished shard, so a crashed campaign
resumes by re-verifying shard commits and re-running only the shards
that are missing or damaged (see :mod:`repro.core.checkpoint`).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.core.checkpoint import sample_row, sha256_file


class _ShardSampleCollector:
    """The checkpointer facade a shard-local coordinator sees.

    Inside a worker there is no WAL -- the parent owns all durable
    state -- so completed-sample rows are collected in memory and
    shipped back in the shard result for the parent to commit.
    """

    def __init__(self, run_dir: Union[str, Path], occasion: int):
        self.run_dir = Path(run_dir)
        self.occasion = occasion
        self.rows: List[Dict[str, Any]] = []

    def occasion_committed(self, occasion: int) -> bool:
        return False

    def record_sample(self, occasion: int, site: str, record,
                      t: float) -> None:
        self.rows.append(sample_row(self.run_dir, occasion, site, record, t))


def shard_task(manifest, occasion: int, run_dir: Union[str, Path],
               site: str, seeds: Dict[str, int],
               trace: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build the picklable work order for one shard.

    ``trace`` is the shard's serialized
    :class:`~repro.obs.tracing.TraceContext` (site namespace + campaign
    root span), minted by the parent so the shard's spans carry
    globally unique ``"<site>/<n>"`` identities and hang off the
    occasion's root in the merged trace tree.
    """
    return {
        "manifest": manifest.to_dict(),
        "occasion": int(occasion),
        "run_dir": str(run_dir),
        "site": str(site),
        "seeds": dict(seeds),
        "trace": dict(trace) if trace is not None else None,
    }


def run_shard(task: Dict[str, Any]) -> Dict[str, Any]:
    """Run one site's slice of an occasion; returns a picklable result.

    The shard world is a two-site federation -- the target site plus a
    cyclic *companion* (``FederationBuilder`` requires at least two
    sites for the inter-site fabric to exist) -- but only the target
    site generates traffic and only the target site is profiled, so the
    companion contributes no events.  Everything the parent needs to
    commit the shard rides in the return value: the journal segment
    text, Fig 10 record rows, WAL sample rows, content-addressed pcap
    pointers, and the shard simulator's end time.
    """
    from repro import quickstart_federation
    from repro.analysis import AnalysisPipeline
    from repro.core.campaign import CampaignManifest, occasion_config
    from repro.core.coordinator import Coordinator
    from repro.obs import Observability, scoped
    from repro.obs.ledger import attach_digests
    from repro.obs.tracing import TraceContext

    manifest = CampaignManifest.from_dict(task["manifest"])
    occasion = int(task["occasion"])
    run_dir = Path(task["run_dir"])
    site = str(task["site"])
    seeds = task["seeds"]
    sites = list(manifest.sites)
    companion = sites[(sites.index(site) + 1) % len(sites)]
    federation, api, poller, orchestrator = quickstart_federation(
        site_names=[site, companion], seed=seeds["world"],
        traffic_seed=seeds["traffic"],
        traffic_scale=manifest.traffic_scale)
    config = occasion_config(manifest, occasion, run_dir, sites=[site])
    plan = config.plan
    # Same span formula as the serial path: headroom scales with the
    # whole campaign's site count, not the shard's, so shard coverage
    # never shrinks relative to a single-process run.
    span = manifest.traffic_span or (
        plan.approximate_duration * len(manifest.sites) + 600.0)
    window = 0.0
    while window < span:
        orchestrator.generate_window(window, min(150.0, span - window),
                                     sites=[site])
        window += 150.0
    collector = _ShardSampleCollector(run_dir, occasion)
    with scoped(Observability.create(sim=federation.sim)) as obs:
        if task.get("trace") is not None:
            # Namespace this shard's span ids ("<site>/<n>") and parent
            # its top-level spans under the campaign root, so the
            # merged journal forms one campaign-rooted trace tree.
            obs.tracer.context = TraceContext.from_dict(task["trace"])
        coordinator = Coordinator(api, config, poller=poller,
                                  seed=seeds["coordinator"],
                                  checkpointer=collector)
        coordinator.occasions_run = occasion
        coordinator.emit_overall_scorecard = False
        bundle = coordinator.run_profile(
            crash_probability=manifest.crash_probability)
        bundle.write_logs(run_dir / "logs" / f"occ{occasion:04d}")
        cache_dir = (run_dir / "acap-cache"
                     if manifest.cache_enabled else None)
        pipeline = AnalysisPipeline(acap_dir=run_dir / "acap",
                                    max_workers=1, cache_dir=cache_dir)
        pipeline.run(bundle.pcap_paths)
        attach_digests(bundle.ledgers, pipeline.acaps)
        obs.snapshot_to_journal()
        sim_end = federation.sim.now
        journal = obs.journal
    pcaps = {}
    for pcap in bundle.pcap_paths:
        rel = str(Path(pcap).relative_to(run_dir))
        pcaps[rel] = sha256_file(pcap)
    return {
        "site": site,
        "journal": journal.to_jsonl(),
        "records": [r.to_dict() for r in bundle.run_records],
        "samples": collector.rows,
        "pcaps": pcaps,
        "sim_end": sim_end,
    }


def iter_shard_results(tasks: Sequence[Dict[str, Any]],
                       workers: int = 1) -> Iterator[Dict[str, Any]]:
    """Run shard tasks, yielding each result as it completes.

    ``workers <= 1`` runs the tasks serially in-process, in task order
    -- the reference execution the parity contract is stated against.
    More workers fan out over a process pool; completion order is then
    scheduling-dependent, which is fine because the parent commits each
    shard independently and the final merge orders by site, never by
    arrival.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield run_shard(task)
        return
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        futures = [pool.submit(run_shard, task) for task in tasks]
        for future in as_completed(futures):
            yield future.result()
