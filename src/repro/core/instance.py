"""One site's Patchwork profiling instance (Fig 7, Fig 8).

An instance owns a slice at its site (listening VMs + dedicated NICs),
creates port mirrors toward its NIC ports, and runs the sampling loop:

    for each cycle:            # ports change here (port cycling)
        select ports, point the mirrors at them
        for each run:
            for each sample:
                capture sample_duration seconds on every slot
                congestion-check the mirrored ports via telemetry

Each dedicated NIC contributes two mirror *slots* (it is dual-port).
Everything is event-driven on the shared simulator so instances at
different sites genuinely run concurrently, like the real system's
independent per-site instances (finding A1).

With ``config.recovery.enabled`` the instance becomes self-healing:
its control-plane calls go through a :class:`~repro.core.retry.ResilientAPI`
(jittered retries + per-site circuit breaker), and a watchdog trip
triggers a *bounded restart* of the sampling loop that salvages
already-written samples and pcaps -- the run ends ``DEGRADED`` instead
of ``INCOMPLETE`` when the restart succeeds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.capture.session import CaptureSession, CaptureStats
from repro.core.backoff import AcquisitionResult, acquire_with_backoff
from repro.core.config import PatchworkConfig
from repro.core.congestion import CongestionDetector, CongestionVerdict
from repro.core.cycling import PortSelector, SelectionContext, make_selector
from repro.core.logs import InstanceLog
from repro.core.retry import ResilientAPI, RetryPolicy
from repro.core.scaling import ScalingAction, ScalingController
from repro.core.status import RunOutcome
from repro.core.watchdog import Watchdog
from repro.obs import get_obs
from repro.obs.ledger import LedgerRecorder, SampleLedger
from repro.util.rng import derive_rng
from repro.telemetry.mflib import MFlib
from repro.telemetry.query import (
    EGRESS_LOAD_QUERY,
    InbandCongestionDetector,
    IntStamper,
    Query,
    QueryRuntime,
    SketchCongestionDetector,
    SketchReport,
    snmp_reading,
)
from repro.telemetry.snmp import SNMPPoller, walk_bytes
from repro.testbed.api import TestbedAPI
from repro.testbed.errors import MirrorConflictError, TestbedError
from repro.testbed.nic import NicPort
from repro.testbed.switch import MirrorSession

_instance_ids = itertools.count(1)


@dataclass
class SampleRecord:
    """One completed sample on one slot."""

    cycle: int
    run: int
    sample: int
    slot: int
    mirrored_port: str
    pcap_path: Optional[Path]
    stats: CaptureStats
    congestion: Optional[CongestionVerdict]
    # Frame-conservation accounting for this sample's capture window.
    ledger: Optional[SampleLedger] = None


@dataclass
class InstanceResult:
    """Everything one instance produced."""

    site: str
    outcome: RunOutcome
    acquisition: Optional[AcquisitionResult]
    samples: List[SampleRecord] = field(default_factory=list)
    log: Optional[InstanceLog] = None
    abort_reason: str = ""
    # Recovery accounting (all zero when recovery is disabled).
    retries: int = 0
    breaker_opens: int = 0
    restarts: int = 0
    recovered: bool = False
    redispatched: bool = False

    @property
    def pcap_paths(self) -> List[Path]:
        return [s.pcap_path for s in self.samples if s.pcap_path is not None]

    @property
    def bytes_captured(self) -> int:
        return sum(s.stats.bytes_captured for s in self.samples)


class _MirrorSlot:
    """One (NIC port, mirror session) pair."""

    def __init__(self, index: int, nic_port: NicPort, dest_port_id: str, rate_bps: float):
        self.index = index
        self.nic_port = nic_port
        self.dest_port_id = dest_port_id
        self.rate_bps = rate_bps
        self.session: Optional[MirrorSession] = None
        self.current_source: Optional[str] = None
        self.capture: Optional[CaptureSession] = None
        self.open_ledger = None  # conservation window for the live capture


class PatchworkInstance:
    """The per-site profiler."""

    def __init__(
        self,
        api: TestbedAPI,
        mflib: MFlib,
        config: PatchworkConfig,
        site: str,
        poller: Optional[SNMPPoller] = None,
        rng: Optional[np.random.Generator] = None,
        crash_probability: float = 0.0,
        on_done: Optional[Callable[["PatchworkInstance"], None]] = None,
        scaling: Optional[ScalingController] = None,
        label: Optional[str] = None,
        on_sample: Optional[
            Callable[["PatchworkInstance", SampleRecord], None]] = None,
    ):
        self.mflib = mflib
        self.config = config
        self.site = site
        self.poller = poller
        self.rng = rng if rng is not None \
            else derive_rng(0, "instance/default")
        self.crash_probability = crash_probability
        self.on_done = on_done
        # Sample-level progress hook (the durable campaign layer's WAL
        # row writer): called once per completed or salvaged sample.
        self.on_sample = on_sample
        # A caller-supplied label keeps instance identity deterministic
        # across runs of the same seeded scenario (the coordinator passes
        # its occasion/site label); the process-wide counter is only the
        # fallback for ad-hoc instances.
        self.instance_id = label or f"pw{next(_instance_ids)}"
        self.log = InstanceLog(site, self.instance_id)
        recovery = config.recovery
        if recovery.enabled and not isinstance(api, ResilientAPI):
            api = ResilientAPI(
                api,
                policy=RetryPolicy(
                    max_attempts=recovery.retry_attempts,
                    base_delay=recovery.retry_base_delay,
                    max_delay=recovery.retry_max_delay,
                    jitter=recovery.retry_jitter,
                    deadline=recovery.retry_deadline,
                ),
                breaker_threshold=recovery.breaker_threshold,
                breaker_cooldown=recovery.breaker_cooldown,
                log=self.log,
                rng=self.rng,
            )
        self.api = api
        self.resilient: Optional[ResilientAPI] = \
            api if isinstance(api, ResilientAPI) else None
        self.selector: PortSelector = make_selector(
            config.selector, n=config.selector_n, fixed_ports=config.fixed_ports
        )
        self.detector = CongestionDetector(mflib)
        # Streaming telemetry (repro.telemetry.query): the runtime and
        # stamper are installed in _build_slots once the mirror
        # destinations are known; the two extra detectors are judged on
        # every sample alongside the SNMP verdict.
        telemetry = config.telemetry
        self._telemetry_runtime: Optional[QueryRuntime] = None
        self._telemetry_reports: List[SketchReport] = []
        self._poll_snapshot = 0
        if telemetry.enabled:
            self._sketch_detector: Optional[SketchCongestionDetector] = \
                SketchCongestionDetector(headroom=telemetry.headroom)
            self._inband_detector: Optional[InbandCongestionDetector] = \
                InbandCongestionDetector(telemetry.occupancy_threshold)
        else:
            self._sketch_detector = None
            self._inband_detector = None
        self.scaling = scaling
        self.acquisition: Optional[AcquisitionResult] = None
        self.result: Optional[InstanceResult] = None
        self.samples: List[SampleRecord] = []
        self._slots: List[_MirrorSlot] = []
        self._extra_slices: List = []  # slices added by dynamic scaling
        self._history: Dict[str, int] = {}
        self._cycle = 0
        self._run = 0
        self._sample = 0
        self._watchdog: Optional[Watchdog] = None
        self._ledgers: Optional[LedgerRecorder] = None
        self._finished = False
        self._obs_span = None  # the instance's trace span (opened in start)
        # Recovery state: the pending sampling-loop event (cancelled on
        # restart), a generation counter that invalidates in-flight loop
        # frames after a restart, and restart accounting.
        self._loop_event = None
        self._epoch = 0
        self._restarts = 0
        self._recovered = False
        # VMs whose death has been acknowledged by a restart: the
        # liveness probe ignores them so one loss trips the watchdog
        # exactly once instead of on every later check.
        self._dead_vms: set = set()

    # -- lifecycle ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    def start(self) -> None:
        """Run the setup phase and arm the sampling loop."""
        self._obs_span = get_obs().tracer.start_span(
            "instance", site=self.site, instance=self.instance_id)
        self.log.info(self.api.now, "setup", "starting instance",
                      mode="all" if self.config.all_experiment else "single")
        self.acquisition = acquire_with_backoff(
            self.api, self.site, self.config.desired_instances, self.log,
            max_backoffs=self.config.max_backoffs,
            transient_retries=self.config.transient_retries,
            retry_delay=self.config.transient_retry_delay,
            rng=self.rng,
            slice_name=f"patchwork-{self.site}-{self.instance_id}",
        )
        if not self.acquisition.acquired:
            self.log.error(self.api.now, "setup",
                           f"acquisition failed: {self.acquisition.failure_reason}")
            self._finish(RunOutcome.FAILED, self.acquisition.failure_reason)
            return
        self._build_slots()
        if not self._slots:
            self._finish(RunOutcome.FAILED, "no usable NIC ports")
            return
        disk_quota = sum(vm.disk_gb for vm in self.acquisition.live_slice.vms.values()) * 1e9
        self._watchdog = Watchdog(
            sim=self.api.federation.sim,
            log=self.log,
            disk_quota_bytes=disk_quota,
            used_bytes_fn=self._bytes_used,
            on_abort=self._on_watchdog_trip,
            interval=max(1.0, self.config.plan.sample_duration / 2),
            crash_probability_per_check=self.crash_probability,
            rng=self.rng,
            liveness_fn=self._check_liveness,
        )
        self._watchdog.start()
        self._start_cycle()

    def abort(self, reason: str) -> None:
        """Unsuccessful termination (watchdog or external).

        Partial work is still gathered: in-flight captures are stopped
        and salvaged into the sample list, so their pcaps and the
        instance log travel with the result.
        """
        if self._finished:
            return
        self.log.error(self.api.now, "abort", reason)
        self._finish(RunOutcome.INCOMPLETE, reason)

    # -- recovery -------------------------------------------------------------

    def _check_liveness(self) -> Optional[str]:
        """Watchdog probe: are all of the slice's VMs still hosted?"""
        if self.acquisition is None or self.acquisition.live_slice is None:
            return None
        for live in [self.acquisition.live_slice] + list(self._extra_slices):
            if live.deleted:
                continue
            for vm in live.vms.values():
                if vm.name not in vm.worker.vms and vm.name not in self._dead_vms:
                    return f"vm {vm.name} died"
        return None

    def _on_watchdog_trip(self, reason: str) -> None:
        """Recover from a trip when allowed; otherwise abort as before."""
        if self._finished:
            return
        recovery = self.config.recovery
        # Storage exhaustion is not recoverable by restarting: the data
        # that filled the disk is still there.
        recoverable = not reason.startswith("storage")
        if recovery.enabled and recoverable and self._restarts < recovery.restart_limit:
            self._restart(reason)
        else:
            self.abort(reason)

    def _restart(self, reason: str) -> None:
        """Bounded restart of the sampling loop after a watchdog trip."""
        self._restarts += 1
        self._recovered = True
        self._epoch += 1  # invalidate any in-flight loop frame
        self.log.error(self.api.now, "recovery",
                       f"watchdog tripped ({reason}); restarting sampling loop",
                       restart=self._restarts,
                       limit=self.config.recovery.restart_limit)
        if self._loop_event is not None:
            self._loop_event.cancel()
            self._loop_event = None
        self._salvage_captures("recovery")
        self._prune_dead_slots()
        if not self._slots:
            self.abort(f"{reason}; no usable slots after restart")
            return
        self._watchdog.rearm()
        delay = self.config.recovery.restart_delay * (0.75 + 0.5 * self.rng.random())
        self.log.info(self.api.now, "recovery", "sampling loop restart scheduled",
                      delay=round(delay, 3), cycle=self._cycle)
        self._loop_event = self.api.federation.sim.schedule(
            delay, self._start_cycle, self._epoch)

    def _salvage_captures(self, kind: str) -> int:
        """Stop in-flight captures, keeping their pcaps as partial samples."""
        if self._telemetry_runtime is not None:
            # The window ends with the fault; salvaged samples carry no
            # detector readings (the signal was interrupted mid-window).
            self._telemetry_runtime.finalize(self.api.now)
        salvaged = 0
        for slot in self._slots:
            if slot.capture is None:
                continue
            stats = slot.capture.stop()
            slot.capture = None
            ledger = None
            if slot.open_ledger is not None:
                # Salvaged mid-window: clones still in flight will never
                # be collected, so the close charges them (and any
                # mirror-gap frames) to the fault-window cause.
                ledger = slot.open_ledger.close(stats, verdict=None,
                                                aborted=True)
                slot.open_ledger = None
            if slot.current_source is None:
                continue
            record = SampleRecord(
                cycle=self._cycle, run=self._run, sample=self._sample,
                slot=slot.index, mirrored_port=slot.current_source,
                pcap_path=stats.pcap_path, stats=stats, congestion=None,
                ledger=ledger,
            )
            self.samples.append(record)
            if self.on_sample is not None:
                self.on_sample(self, record)
            salvaged += 1
        if salvaged:
            self.log.info(self.api.now, kind, "salvaged partial samples",
                          count=salvaged)
        return salvaged

    def _prune_dead_slots(self) -> None:
        """Drop mirror slots whose backing VM no longer exists."""
        alive_ports = set()
        for live in [self.acquisition.live_slice] + list(self._extra_slices):
            for vm in live.vms.values():
                if vm.name in vm.worker.vms:
                    alive_ports.update(vm.nic_ports)
                else:
                    self._dead_vms.add(vm.name)
        dead = [s for s in self._slots if s.nic_port not in alive_ports]
        if not dead:
            return
        main = self.acquisition.live_slice
        for slot in dead:
            if slot.session is not None:
                try:
                    self.api.delete_port_mirror(main, slot.session)
                except TestbedError:
                    pass
                slot.session = None
        self._slots = [s for s in self._slots if s.nic_port in alive_ports]
        self.log.warning(self.api.now, "recovery", "dropped slots on dead VMs",
                         dropped=len(dead), remaining=len(self._slots))

    # -- setup internals ------------------------------------------------------

    def _build_slots(self) -> None:
        live = self.acquisition.live_slice
        self._ledgers = LedgerRecorder(
            self.api.federation.site(self.site).switch, self.site,
            instance=self.instance_id)
        index = 0
        for vm in live.vms.values():
            for nic_port in vm.nic_ports:
                dest = self.api.switch_port_for_nic_port(self.site, nic_port)
                rate = self.api.port_rate_bps(self.site, dest)
                self._slots.append(_MirrorSlot(index, nic_port, dest, rate))
                index += 1
        self.log.info(self.api.now, "setup", "mirror slots ready",
                      slots=len(self._slots))
        if self.config.telemetry.enabled and self._slots:
            self._install_telemetry()

    def _install_telemetry(self) -> None:
        """Arm the streaming-telemetry subsystem on this site's switch.

        Two standing queries run switch-side against the mirror
        destination Tx channels (where the cloned traffic serializes):

        * ``egress-load`` -- count-min over bytes per egress port, the
          signal the sketch congestion detector thresholds against the
          destination line rate;
        * ``top-talkers`` -- heavy-hitter top-k source MACs by bytes,
          the Sonata-style application query riding the same runtime.

        The INT stamper rides the mirror clone path of the same switch.
        """
        telemetry = self.config.telemetry
        switch = self.api.federation.site(self.site).switch
        switch.int_stamper = IntStamper(stamp_every=telemetry.stamp_every)
        dest_ports = tuple(sorted({slot.dest_port_id
                                   for slot in self._slots}))
        plans = [
            Query(EGRESS_LOAD_QUERY)
            .filter(("direction", "==", "tx"))
            .map(key="port", value="wire_len")
            .reduce("count-min", epsilon=telemetry.epsilon,
                    delta=telemetry.delta)
            .every(telemetry.window)
            .watch(ports=dest_ports, directions=("tx",))
            .build(),
            Query("top-talkers")
            .map(key="src_mac", value="wire_len")
            .reduce("heavy-hitter", epsilon=telemetry.epsilon,
                    delta=telemetry.delta, k=telemetry.heavy_hitters)
            .every(telemetry.window)
            .watch(ports=dest_ports, directions=("tx",))
            .build(),
        ]
        self._telemetry_runtime = QueryRuntime(
            sim=self.api.federation.sim, site=self.site,
            seed=telemetry.seed, on_report=self._on_telemetry_report)
        self._telemetry_runtime.install(switch, plans)
        self.log.info(self.api.now, "setup", "telemetry queries installed",
                      queries=len(plans), window=telemetry.window)

    def _on_telemetry_report(self, report: SketchReport) -> None:
        self._telemetry_reports.append(report)
        get_obs().journal.emit("telemetry-report", t=report.window_end,
                               site=self.site, **report.to_event())

    def _eligible_ports(self) -> List[str]:
        """Ports this instance may mirror.

        All-experiment mode: every port except our own mirror
        destinations.  Single-experiment mode: only ports named in
        ``config.fixed_ports`` (the user's slice attachment points).
        """
        ours = {slot.dest_port_id for slot in self._slots}
        ports = [pid for pid, _kind in self.api.list_switch_ports(self.site)
                 if pid not in ours]
        if not self.config.all_experiment:
            allowed = set(self.config.fixed_ports)
            ports = [p for p in ports if p in allowed]
        return ports

    def _bytes_used(self) -> float:
        live_bytes = sum(
            slot.capture.stats.bytes_captured
            for slot in self._slots if slot.capture is not None
        )
        return sum(s.stats.bytes_captured for s in self.samples) + live_bytes

    # -- the sampling loop ------------------------------------------------------

    def _stale(self, epoch: int) -> bool:
        """True if a restart superseded the frame that captured ``epoch``."""
        return self._finished or epoch != self._epoch

    def _start_cycle(self, epoch: Optional[int] = None) -> None:
        if epoch is None:
            epoch = self._epoch
        if self._stale(epoch):
            return
        ctx = SelectionContext(
            site=self.site,
            candidates=self._eligible_ports(),
            uplink_ids=[pid for pid, kind in self.api.list_switch_ports(self.site)
                        if kind == "uplink"],
            mflib=self.mflib,
            now=self.api.now,
            window=self.config.telemetry_window,
            idle_threshold_bps=self.config.idle_threshold_bps,
            cycle_index=self._cycle,
            history=self._history,
            rng=self.rng,
        )
        targets = self.selector.select_instrumented(ctx, slots=len(self._slots))
        if not targets:
            self.log.warning(self.api.now, "cycle", "no ports selected; skipping cycle",
                             cycle=self._cycle)
            self._advance_after_cycle(epoch)
            return
        assignments = list(zip(self._slots, targets))
        # Tear down mirrors that must move first: pointing slot A at a
        # port still mirrored by slot B would otherwise conflict.  If a
        # teardown fails transiently, the old mirror is still live on
        # the switch -- keep the slot pointed at it (and sampling it)
        # rather than losing track of the session.
        live = self.acquisition.live_slice
        blocked = set()
        for slot, port_id in assignments:
            if slot.session is not None and slot.current_source != port_id:
                try:
                    self.api.delete_port_mirror(live, slot.session)
                except TestbedError as exc:
                    self.log.warning(self.api.now, "cycle",
                                     f"mirror teardown failed: {exc}")
                    blocked.add(slot.index)
                    continue
                slot.session = None
                slot.current_source = None
            if self._stale(epoch):
                return
        for slot, port_id in assignments:
            if slot.index in blocked:
                continue
            try:
                self._point_mirror(slot, port_id)
            except (MirrorConflictError, TestbedError) as exc:
                self.log.warning(self.api.now, "cycle",
                                 f"could not mirror {port_id}: {exc}")
                slot.current_source = None
            if self._stale(epoch):
                return
        for port_id in targets:
            self._history[port_id] = self._cycle
        self.log.info(self.api.now, "cycle", "mirrors pointed",
                      cycle=self._cycle, ports=",".join(targets))
        self._run = 0
        self._sample = 0
        self._begin_sample(epoch)

    def _point_mirror(self, slot: _MirrorSlot, port_id: str) -> None:
        live = self.acquisition.live_slice
        if slot.session is None:
            slot.session = self.api.create_port_mirror(live, port_id, slot.dest_port_id)
            slot.current_source = port_id

    def _begin_sample(self, epoch: Optional[int] = None) -> None:
        if epoch is None:
            epoch = self._epoch
        if self._stale(epoch):
            return
        if self.poller is not None:
            self.poller.poll_now()  # fresh rates bracketing the sample
            self._poll_snapshot = self.poller.polls_completed
        start = self.api.now
        for slot in self._slots:
            if slot.current_source is None:
                continue
            pcap = (self.config.output_dir / self.site /
                    f"{self.config.pcap_prefix}"
                    f"c{self._cycle}_r{self._run}_s{self._sample}"
                    f"_slot{slot.index}_{slot.current_source}.pcap")
            slot.capture = CaptureSession(
                sim=self.api.federation.sim,
                nic_port=slot.nic_port,
                pcap_path=pcap,
                method=self.config.capture_method,
                snaplen=self.config.snaplen,
                transform=self.config.transform,
                int_strip=self.config.telemetry.enabled,
            )
            slot.capture.start()
            # Open the conservation window in the same event as the
            # capture subscription: no frame can be delivered between
            # the two, so delivered-in-window == frames the capture saw.
            directions = (slot.session.directions
                          if slot.session is not None else ("rx", "tx"))
            slot.open_ledger = self._ledgers.open(
                mirrored_port=slot.current_source,
                dest_port=slot.dest_port_id,
                directions=directions,
                cycle=self._cycle, run=self._run, sample=self._sample,
                slot=slot.index,
                pcap=f"{self.site}/{pcap.name}",
                method=self.config.capture_method.value,
            )
        if self._telemetry_runtime is not None:
            # Same-event arming: the window clock starts exactly when
            # the captures subscribe, so sketch windows and in-band
            # stamps line up with the ledger window.
            self._telemetry_reports = []
            stamper = self.api.federation.site(self.site).switch.int_stamper
            if stamper is not None:
                stamper.reset()
            self._telemetry_runtime.arm(start)
        self._loop_event = self.api.federation.sim.schedule(
            self.config.plan.sample_duration, self._end_sample, start, epoch
        )

    def _end_sample(self, sample_start: float, epoch: Optional[int] = None) -> None:
        if epoch is None:
            epoch = self._epoch
        if self._stale(epoch):
            return
        if self.poller is not None:
            self.poller.poll_now()
        if self._telemetry_runtime is not None:
            # Force-flush the partial window before judging the sample,
            # so the sketch detector sees evidence up to this instant.
            self._telemetry_runtime.finalize(self.api.now)
        for slot in self._slots:
            if slot.capture is None:
                continue
            capture = slot.capture
            stats = capture.stop()
            verdict = self.detector.check(
                self.site, slot.current_source, slot.rate_bps,
                sample_start, self.api.now, log=self.log,
            )
            detectors = None
            if self._telemetry_runtime is not None:
                detectors = self._detector_readings(
                    slot, capture, stats, verdict, sample_start, self.api.now)
            ledger = None
            if slot.open_ledger is not None:
                ledger = slot.open_ledger.close(
                    stats,
                    verdict=verdict.overloaded if verdict is not None else None,
                    detectors=detectors)
                slot.open_ledger = None
            record = SampleRecord(
                cycle=self._cycle, run=self._run, sample=self._sample,
                slot=slot.index, mirrored_port=slot.current_source,
                pcap_path=stats.pcap_path, stats=stats, congestion=verdict,
                ledger=ledger,
            )
            self.samples.append(record)
            slot.capture = None
            if self.on_sample is not None:
                self.on_sample(self, record)
        self.log.info(self.api.now, "sample", "sample complete",
                      cycle=self._cycle, run=self._run, sample=self._sample)
        self._after_sample_bookkeeping(epoch)

    def _after_sample_bookkeeping(self, epoch: int) -> None:
        """Advance the sample/run/cycle cursors and schedule the next step."""
        self._sample += 1
        plan = self.config.plan
        if self._sample < plan.samples_per_run:
            gap = plan.sample_interval - plan.sample_duration
            self._loop_event = self.api.federation.sim.schedule(
                gap, self._begin_sample, epoch)
            return
        self._sample = 0
        self._run += 1
        if self._run < plan.runs_per_cycle:
            gap = plan.sample_interval - plan.sample_duration
            self._loop_event = self.api.federation.sim.schedule(
                gap, self._begin_sample, epoch)
            return
        self._advance_after_cycle(epoch)

    def _detector_readings(self, slot: _MirrorSlot, capture: CaptureSession,
                           stats: CaptureStats,
                           verdict: Optional[CongestionVerdict],
                           start: float, end: float) -> Dict[str, Dict[str, object]]:
        """Judge all three congestion detectors for one closed sample.

        The SNMP reading reuses the verdict already computed (evidence
        only exists once the bracketing end-of-sample poll lands, so its
        latency is the full window).  The sketch and in-band readings
        come from this sample's reports and peeled stamps.
        """
        readings: Dict[str, Dict[str, object]] = {}
        snmp_bytes = 0
        if self.poller is not None:
            walks = max(0, self.poller.polls_completed - self._poll_snapshot) + 1
            port_count = len(self.api.federation.site(self.site).switch.ports)
            snmp_bytes = walk_bytes(port_count, walks)
        readings["snmp"] = snmp_reading(
            verdict.overloaded if verdict is not None else None,
            end - start, snmp_bytes).to_dict()
        readings["sketch"] = self._sketch_detector.check(
            self._telemetry_reports, slot.dest_port_id, slot.rate_bps,
            start, end).to_dict()
        readings["inband"] = self._inband_detector.check(
            capture.int_stamps, stats.frames_seen, start, end).to_dict()
        return readings

    def _apply_scaling(self) -> None:
        """Consult the dynamic-scaling policy at a cycle boundary."""
        if self.scaling is None or self.acquisition is None or \
                self.acquisition.live_slice is None:
            return
        decision = self.scaling.decide(
            self.site, len(self._eligible_ports()), len(self._slots),
            len(self._extra_slices))
        if decision.action is ScalingAction.GROW:
            extra = self.scaling.grow(
                self.site, self.acquisition.live_slice.name)
            if extra is None:
                self.log.info(self.api.now, "scaling", "grow refused")
                return
            self._extra_slices.append(extra)
            for vm in extra.vms.values():
                for nic_port in vm.nic_ports:
                    dest = self.api.switch_port_for_nic_port(self.site, nic_port)
                    rate = self.api.port_rate_bps(self.site, dest)
                    self._slots.append(_MirrorSlot(len(self._slots), nic_port,
                                                   dest, rate))
            self.log.info(self.api.now, "scaling",
                          f"grew by one node: {decision.reason}",
                          slots=len(self._slots))
        elif decision.action is ScalingAction.SHRINK and self._extra_slices:
            extra = self._extra_slices.pop()
            doomed = {self.api.switch_port_for_nic_port(self.site, p)
                      for vm in extra.vms.values() for p in vm.nic_ports}
            keep = []
            main = self.acquisition.live_slice
            for slot in self._slots:
                if slot.dest_port_id in doomed:
                    if slot.session is not None:
                        try:
                            # Mirror sessions are registered on the main
                            # slice regardless of which node's NIC they
                            # feed.
                            self.api.delete_port_mirror(main, slot.session)
                        except TestbedError:
                            pass
                else:
                    keep.append(slot)
            self._slots = keep
            self.scaling.shrink(extra)
            self.log.info(self.api.now, "scaling",
                          f"shrank by one node: {decision.reason}",
                          slots=len(self._slots))

    def _advance_after_cycle(self, epoch: Optional[int] = None) -> None:
        if epoch is None:
            epoch = self._epoch
        if self._stale(epoch):
            return
        self._cycle += 1
        if self._cycle < self.config.plan.cycles:
            # Scaling decisions only make sense with cycles left to run.
            self._apply_scaling()
            if self._stale(epoch):
                return
        if self._cycle < self.config.plan.cycles:
            gap = self.config.plan.sample_interval - self.config.plan.sample_duration
            self._loop_event = self.api.federation.sim.schedule(
                gap, self._start_cycle, epoch)
            return
        if not self.samples:
            self._finish(RunOutcome.FAILED, "no samples taken")
            return
        degraded = (self.acquisition is not None and self.acquisition.degraded) \
            or self._recovered
        self._finish(RunOutcome.DEGRADED if degraded else RunOutcome.SUCCESS)

    # -- teardown ------------------------------------------------------------

    def _finish(self, outcome: RunOutcome, reason: str = "") -> None:
        if self._finished:
            return
        self._finished = True
        if self._watchdog is not None:
            self._watchdog.stop()
        if self._loop_event is not None:
            self._loop_event.cancel()
            self._loop_event = None
        # Gather partial work even on abort: in-flight pcaps are closed
        # and recorded so they travel with the result.
        self._salvage_captures("teardown")
        if self._telemetry_runtime is not None:
            self._telemetry_runtime.uninstall()
            self._telemetry_runtime = None
            self.api.federation.site(self.site).switch.int_stamper = None
        for extra in self._extra_slices:
            try:
                self.api.delete_slice(extra.name)
            except TestbedError as exc:
                self.log.warning(self.api.now, "teardown",
                                 f"extra-slice delete failed: {exc}")
        self._extra_slices.clear()
        if self.acquisition is not None and self.acquisition.live_slice is not None:
            try:
                self.api.delete_slice(self.acquisition.live_slice.name)
            except TestbedError as exc:
                self.log.warning(self.api.now, "teardown", f"delete failed: {exc}")
        self.log.info(self.api.now, "teardown", "instance finished",
                      outcome=outcome.value, samples=len(self.samples),
                      restarts=self._restarts)
        if self._obs_span is not None:
            self._obs_span.end(outcome=outcome.value,
                               samples=len(self.samples),
                               restarts=self._restarts)
            self._obs_span = None
        stats = self.resilient.stats if self.resilient is not None else None
        self.result = InstanceResult(
            site=self.site,
            outcome=outcome,
            acquisition=self.acquisition,
            samples=self.samples,
            log=self.log,
            abort_reason=reason,
            retries=stats.retries if stats else 0,
            breaker_opens=stats.breaker_opens if stats else 0,
            restarts=self._restarts,
            recovered=self._recovered,
        )
        if self.on_done is not None:
            self.on_done(self)
