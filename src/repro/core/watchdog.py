"""The instance watchdog (Section 6.2.2).

"During the sampling phase, a watchdog process checks for both
successful and unsuccessful termination of the Patchwork instance --
e.g., in case the FABRIC VM hosting a Patchwork instance ran out of
storage."

The watchdog polls the instance's storage accounting against the VM's
disk quota, optionally checks a liveness probe (are the slice's VMs
still hosted?), and supports injected crash probability so the harness
can reproduce the paper's "Incomplete" runs (a since-fixed Patchwork
bug).  A tripped watchdog can be :meth:`rearm`-ed, which is how the
recovery layer restarts a sampling loop after a crash.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.logs import InstanceLog
from repro.netsim.engine import Event, Simulator
from repro.obs import get_obs
from repro.util.rng import derive_rng


class Watchdog:
    """Periodically checks one instance's health."""

    def __init__(
        self,
        sim: Simulator,
        log: InstanceLog,
        disk_quota_bytes: float,
        used_bytes_fn: Callable[[], float],
        on_abort: Callable[[str], None],
        interval: float = 60.0,
        crash_probability_per_check: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        liveness_fn: Optional[Callable[[], Optional[str]]] = None,
    ):
        if interval <= 0:
            raise ValueError("watchdog interval must be positive")
        if not 0.0 <= crash_probability_per_check <= 1.0:
            raise ValueError("crash probability must be in [0, 1]")
        self.sim = sim
        self.log = log
        self.disk_quota_bytes = disk_quota_bytes
        self.used_bytes_fn = used_bytes_fn
        self.on_abort = on_abort
        self.interval = interval
        self.crash_probability = crash_probability_per_check
        self.rng = rng if rng is not None else derive_rng(0, "watchdog/default")
        self.liveness_fn = liveness_fn
        self.checks = 0
        self.trips = 0
        self.tripped = False
        self._event: Optional[Event] = None
        obs = get_obs()
        self._journal = obs.journal
        self._m_checks = obs.registry.counter(
            "watchdog.checks", help="watchdog health checks performed")
        self._m_trips = obs.registry.counter(
            "watchdog.trips", help="watchdog trips (instance aborts/restarts)")

    @property
    def running(self) -> bool:
        return self._event is not None

    def start(self) -> None:
        """Arm the first check.  A stopped watchdog may be re-started."""
        if self._event is not None:
            raise RuntimeError("watchdog already running")
        self._event = self.sim.schedule(self.interval, self._check)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def rearm(self) -> None:
        """Clear a trip and resume checking (the recovery-restart path)."""
        self.tripped = False
        if self._event is None:
            self._event = self.sim.schedule(self.interval, self._check)

    def _trip(self, reason: str, used: float) -> None:
        self.tripped = True
        self.trips += 1
        self._m_trips.inc()
        # One schema per kind (RL009): trip and healthy checks share the
        # {site, instance, verdict, reason, used} key set.
        self._journal.emit("watchdog", t=self.sim.now, site=self.log.site,
                           instance=self.log.instance, verdict="trip",
                           reason=reason, used=int(used))
        self.on_abort(reason)

    def _check(self) -> None:
        self._event = None
        if self.tripped:
            return
        self.checks += 1
        self._m_checks.inc()
        used = self.used_bytes_fn()
        if used > self.disk_quota_bytes:
            self.log.error(self.sim.now, "watchdog",
                           "instance storage exhausted",
                           used=int(used), quota=int(self.disk_quota_bytes))
            self._trip("storage exhausted", used)
            return
        if self.liveness_fn is not None:
            dead = self.liveness_fn()
            if dead is not None:
                self.log.error(self.sim.now, "watchdog", dead)
                self._trip(dead, used)
                return
        if self.crash_probability > 0 and self.rng.random() < self.crash_probability:
            self.log.error(self.sim.now, "watchdog", "instance crashed")
            self._trip("instance crashed", used)
            return
        self._journal.emit("watchdog", t=self.sim.now, site=self.log.site,
                           instance=self.log.instance, verdict="healthy",
                           reason=None, used=int(used))
        self.log.info(self.sim.now, "watchdog", "healthy",
                      used=int(used), quota=int(self.disk_quota_bytes))
        self._event = self.sim.schedule(self.interval, self._check)
