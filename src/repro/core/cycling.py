"""Port-cycling selection heuristics (Section 6.2.2).

Patchwork usually has far fewer mirror destinations (dedicated NIC
ports) than there are switch ports worth sampling, so it cycles.  Which
port each mirror slot turns to next is the *selection method*:

* :class:`BusiestBiasSelector` -- the default "busiest ports bias,
  1/n other non-idle port" heuristic: during every n-1 cycles it picks
  a random non-idle port, and during the other cycles it picks the
  busiest port that has not been sampled during the last n cycles.
  Designed to sample fairly across all non-idle ports while not
  starving quiet ones.
* :class:`FixedPortsSelector` -- no cycling; sample the given ports.
* :class:`UplinksOnlySelector` -- round-robin over uplink ports only.
* :class:`AllPortsSelector` -- round-robin over every port, idle ones
  included.

Users can add their own heuristics by implementing
:class:`PortSelector` (the paper: "Users can also add their own
heuristics").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs import get_obs
from repro.telemetry.mflib import MFlib


@dataclass
class SelectionContext:
    """Everything a selector may consult when picking ports."""

    site: str
    candidates: List[str]            # eligible switch port ids
    uplink_ids: List[str]
    mflib: MFlib
    now: float
    window: float                    # how far back to look at telemetry
    idle_threshold_bps: float
    cycle_index: int
    history: Dict[str, int]          # port id -> cycle index last sampled
    rng: np.random.Generator

    def busiest(self, among: Sequence[str]) -> List[str]:
        """Candidate ports by descending recent Tx+Rx rate."""
        ranked = self.mflib.busiest_ports(
            self.site, self.now - self.window, self.now, restrict_to=among
        )
        return [r.port_id for r in ranked]

    def non_idle(self, among: Sequence[str]) -> List[str]:
        """Candidates above the idle threshold in the recent window."""
        return self.mflib.non_idle_ports(
            self.site, self.now - self.window, self.now,
            idle_threshold_bps=self.idle_threshold_bps, restrict_to=among,
        )


class PortSelector(abc.ABC):
    """A port-cycling heuristic."""

    name = "abstract"

    @abc.abstractmethod
    def select(self, ctx: SelectionContext, slots: int) -> List[str]:
        """Pick up to ``slots`` distinct ports to mirror this cycle."""

    def select_instrumented(self, ctx: SelectionContext, slots: int) -> List[str]:
        """:meth:`select` wrapped in observability.

        Opens a ``cycling.select`` span around the selection and counts
        selection rounds, chosen ports, and empty rounds in the metrics
        registry.  The sampling loop calls this entry point; custom
        heuristics only implement :meth:`select`.
        """
        obs = get_obs()
        registry = obs.registry
        with obs.tracer.span("cycling.select", site=ctx.site,
                             selector=self.name, cycle=ctx.cycle_index):
            chosen = self.select(ctx, slots)
        registry.counter(
            "cycling.selections", help="port-selection rounds").inc()
        registry.counter(
            "cycling.ports_selected",
            help="ports chosen across all selection rounds").inc(len(chosen))
        if not chosen:
            registry.counter(
                "cycling.empty_selections",
                help="selection rounds that chose no ports").inc()
        return chosen

    def _fill_random(self, ctx: SelectionContext, chosen: List[str], slots: int) -> List[str]:
        """Top up with random unchosen candidates (never starve a slot)."""
        pool = [p for p in ctx.candidates if p not in chosen]
        while len(chosen) < slots and pool:
            pick = pool.pop(int(ctx.rng.integers(0, len(pool))))
            chosen.append(pick)
        return chosen


class BusiestBiasSelector(PortSelector):
    """The paper's default heuristic."""

    name = "busiest-bias"

    def __init__(self, n: int = 4):
        if n < 2:
            raise ValueError("n must be at least 2")
        self.n = n

    def select(self, ctx: SelectionContext, slots: int) -> List[str]:
        chosen: List[str] = []
        busiest_cycle = ctx.cycle_index % self.n == 0
        for _slot in range(slots):
            pick = self._pick_one(ctx, chosen, busiest_cycle)
            if pick is None:
                break
            chosen.append(pick)
        return self._fill_random(ctx, chosen, slots)

    def _pick_one(self, ctx: SelectionContext, chosen: List[str],
                  busiest_cycle: bool) -> Optional[str]:
        remaining = [p for p in ctx.candidates if p not in chosen]
        if not remaining:
            return None
        if busiest_cycle:
            # Busiest port not sampled during the last n cycles.
            fresh = [
                p for p in remaining
                if ctx.cycle_index - ctx.history.get(p, -10**9) >= self.n
            ]
            ranked = ctx.busiest(fresh or remaining)
            if ranked:
                return ranked[0]
            return None
        non_idle = ctx.non_idle(remaining)
        if non_idle:
            return non_idle[int(ctx.rng.integers(0, len(non_idle)))]
        return None


class FixedPortsSelector(PortSelector):
    """Sample fixed ports; no cycling."""

    name = "fixed"

    def __init__(self, ports: Sequence[str]):
        if not ports:
            raise ValueError("fixed selector needs at least one port")
        self.ports = list(ports)

    def select(self, ctx: SelectionContext, slots: int) -> List[str]:
        eligible = [p for p in self.ports if p in ctx.candidates]
        return eligible[:slots]


class UplinksOnlySelector(PortSelector):
    """Round-robin over uplink ports (inter-site traffic only)."""

    name = "uplinks"

    def select(self, ctx: SelectionContext, slots: int) -> List[str]:
        uplinks = [p for p in ctx.candidates if p in set(ctx.uplink_ids)]
        if not uplinks:
            return []
        start = (ctx.cycle_index * slots) % len(uplinks)
        rotated = uplinks[start:] + uplinks[:start]
        return rotated[:slots]


class AllPortsSelector(PortSelector):
    """Round-robin over every candidate port, idle ones included."""

    name = "all"

    def select(self, ctx: SelectionContext, slots: int) -> List[str]:
        if not ctx.candidates:
            return []
        ordered = sorted(ctx.candidates)
        start = (ctx.cycle_index * slots) % len(ordered)
        rotated = ordered[start:] + ordered[:start]
        return rotated[:slots]


def make_selector(name: str, n: int = 4, fixed_ports: Sequence[str] = ()) -> PortSelector:
    """Factory used by :class:`~repro.core.config.PatchworkConfig`."""
    if name == BusiestBiasSelector.name:
        return BusiestBiasSelector(n=n)
    if name == FixedPortsSelector.name:
        return FixedPortsSelector(fixed_ports)
    if name == UplinksOnlySelector.name:
        return UplinksOnlySelector()
    if name == AllPortsSelector.name:
        return AllPortsSelector()
    raise ValueError(f"unknown selector {name!r}")
