"""Patchwork: the paper's primary contribution.

Patchwork is a network profiler that runs *as an experiment* on the
testbed it profiles.  The package mirrors the paper's Section 6 design:

* :mod:`repro.core.config` -- user-tunable fidelity knobs (R5): sample
  duration, samples per run, runs between cycles, truncation size,
  capture method, pre-processing.
* :mod:`repro.core.coordinator` -- the out-of-testbed coordinator that
  configures and starts Patchwork at every chosen site, later gathers
  compressed results, and yields resources back (Fig 7's workflow).
* :mod:`repro.core.instance` -- one site's profiling instance: a slice
  with a listening VM + dedicated NIC, port mirrors, capture sessions,
  and the port-cycling loop.
* :mod:`repro.core.backoff` -- iterative back-off during resource
  acquisition (R1/A2): scale the request down one NIC+VM at a time.
* :mod:`repro.core.cycling` -- port-selection heuristics, including the
  default "busiest-port bias, 1/n other non-idle port".
* :mod:`repro.core.congestion` -- switch congestion inference from
  telemetry (R3): Mirrored(Tx) + Mirrored(Rx) vs. the mirror port rate.
* :mod:`repro.core.watchdog` -- detects successful and unsuccessful
  termination (e.g. storage exhaustion).
* :mod:`repro.core.retry` -- the fault-recovery layer's control-plane
  client: sim-time jittered retries with attempt/deadline budgets and a
  per-site circuit breaker wrapped around :class:`TestbedAPI`.
* :mod:`repro.core.status` / :mod:`repro.core.logs` -- run outcomes
  (Fig 10's Success / Degraded / Failed / Incomplete) and instance logs.
* :mod:`repro.core.gather` -- the gathering phase: per-site compressed
  archives with checksum manifests (Section 6.2.3).
* :mod:`repro.core.scaling` / :mod:`repro.core.sharing` -- the paper's
  Section-6.3 future-work features, implemented: a dynamic-scaling
  controller (grow/nice-down at cycle boundaries) and a mirror-port
  lease scheduler that lets multiple users share one mirrored port.
"""

from repro.core.config import (AnalysisConfig, PatchworkConfig, RecoveryConfig,
                               SamplingPlan, TelemetryConfig)
from repro.core.status import (RunOutcome, RunRecord, publish_outcomes,
                               recovery_summary)
from repro.core.retry import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    ResilientAPI,
    RetryPolicy,
    RetryStats,
)
from repro.core.logs import InstanceLog, LogEvent
from repro.core.cycling import (
    AllPortsSelector,
    BusiestBiasSelector,
    FixedPortsSelector,
    PortSelector,
    SelectionContext,
    UplinksOnlySelector,
    make_selector,
)
from repro.core.backoff import AcquisitionResult, acquire_with_backoff
from repro.core.congestion import CongestionDetector, CongestionVerdict
from repro.core.instance import InstanceResult, PatchworkInstance
from repro.core.watchdog import Watchdog
from repro.core.coordinator import Coordinator, ProfileBundle
from repro.core.scaling import ScalingAction, ScalingController, ScalingDecision
from repro.core.sharing import MirrorLease, MirrorScheduler
from repro.core.gather import (
    GatheredSite,
    extract_archive,
    gather_bundle,
    gather_site,
    verify_archive,
)
from repro.core.checkpoint import (
    CampaignCheckpointer,
    CampaignLog,
    CheckpointStore,
    WalCorruptionError,
    describe_run,
    list_runs,
)
from repro.core.campaign import (
    CampaignManifest,
    CampaignRunner,
    CampaignSummary,
    resume_campaign,
)

__all__ = [
    "AnalysisConfig",
    "PatchworkConfig",
    "RecoveryConfig",
    "SamplingPlan",
    "TelemetryConfig",
    "RunOutcome",
    "RunRecord",
    "recovery_summary",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "ResilientAPI",
    "RetryPolicy",
    "RetryStats",
    "InstanceLog",
    "LogEvent",
    "AllPortsSelector",
    "BusiestBiasSelector",
    "FixedPortsSelector",
    "PortSelector",
    "SelectionContext",
    "UplinksOnlySelector",
    "make_selector",
    "AcquisitionResult",
    "acquire_with_backoff",
    "CongestionDetector",
    "CongestionVerdict",
    "InstanceResult",
    "PatchworkInstance",
    "Watchdog",
    "Coordinator",
    "ProfileBundle",
    "ScalingAction",
    "ScalingController",
    "ScalingDecision",
    "MirrorLease",
    "MirrorScheduler",
    "GatheredSite",
    "extract_archive",
    "gather_bundle",
    "gather_site",
    "verify_archive",
    "CampaignCheckpointer",
    "CampaignLog",
    "CheckpointStore",
    "WalCorruptionError",
    "describe_run",
    "list_runs",
    "CampaignManifest",
    "CampaignRunner",
    "CampaignSummary",
    "resume_campaign",
]
