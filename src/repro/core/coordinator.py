"""The Patchwork coordinator (Fig 7).

The coordinator runs *outside* the testbed.  It (1) decides which sites
to profile and with what configuration, (2) starts an independent
Patchwork instance at each site, (3) lets the instances sample and
cycle on their own (no inter-instance coordination, per R3), then
(4) gathers each instance's captures and logs into a
:class:`ProfileBundle` and (5) yields all testbed resources back.

One ``run_profile()`` call is one *occasion* in the paper's terms --
the unit of Fig 10's success/degraded/failed/incomplete accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence


from repro.core.config import PatchworkConfig
from repro.core.instance import InstanceResult, PatchworkInstance
from repro.core.status import RunOutcome, RunRecord, publish_outcomes
from repro.obs import get_obs
from repro.obs.ledger import (
    CongestionScorecard,
    DetectorScorecard,
    detector_scorecards_from_ledgers,
    scorecard_from_ledgers,
)
from repro.telemetry.mflib import MFlib
from repro.telemetry.snmp import SNMPPoller
from repro.testbed.api import TestbedAPI
from repro.util.rng import SeedSequenceFactory


@dataclass
class ProfileBundle:
    """The gathered output of one profiling occasion."""

    started_at: float
    finished_at: float
    results: Dict[str, InstanceResult] = field(default_factory=dict)
    # Sites whose failed first attempt was re-dispatched this occasion.
    redispatches: int = 0
    # Per-site congestion-detector scorecards (verdict vs ground-truth
    # mirror-egress drops from the conservation ledger).
    scorecards: Dict[str, CongestionScorecard] = field(default_factory=dict)
    # Per-site, per-detector scorecards with latency/bytes axes; only
    # populated when the run carried streaming-telemetry readings.
    detector_scorecards: Dict[str, Dict[str, DetectorScorecard]] = \
        field(default_factory=dict)

    @property
    def scorecard(self) -> CongestionScorecard:
        """All sites merged into one confusion matrix."""
        merged = CongestionScorecard()
        for site in sorted(self.scorecards):
            merged.merge(self.scorecards[site])
        return merged

    def merged_detector_scorecards(self) -> Dict[str, DetectorScorecard]:
        """All sites merged, keyed by detector name."""
        merged: Dict[str, DetectorScorecard] = {}
        for site in sorted(self.detector_scorecards):
            for name in sorted(self.detector_scorecards[site]):
                merged.setdefault(name, DetectorScorecard()).merge(
                    self.detector_scorecards[site][name])
        return merged

    @property
    def ledgers(self) -> List:
        """Every conservation ledger row this occasion produced."""
        rows = []
        for site in sorted(self.results):
            for record in self.results[site].samples:
                if record.ledger is not None:
                    rows.append(record.ledger)
        return rows

    @property
    def run_records(self) -> List[RunRecord]:
        """Fig 10 rows: one record per site."""
        records = []
        for site, result in sorted(self.results.items()):
            acquisition = result.acquisition
            records.append(RunRecord(
                site=site,
                started_at=self.started_at,
                outcome=result.outcome,
                reason=result.abort_reason or (
                    acquisition.failure_reason if acquisition else ""
                ),
                backoffs=acquisition.backoffs if acquisition else 0,
                instances=acquisition.granted_nodes if acquisition else 0,
                samples_taken=len(result.samples),
                pcap_files=len(result.pcap_paths),
                retries=result.retries,
                breaker_opens=result.breaker_opens,
                restarts=result.restarts,
                recovered=result.recovered,
                redispatched=result.redispatched,
            ))
        return records

    @property
    def pcap_paths(self) -> List[Path]:
        paths: List[Path] = []
        for result in self.results.values():
            paths.extend(result.pcap_paths)
        return sorted(paths)

    def write_logs(self, out_dir: "str | Path") -> List[Path]:
        """Persist every instance log (the gather step's log half)."""
        out_dir = Path(out_dir)
        written = []
        for site, result in sorted(self.results.items()):
            if result.log is None:
                continue
            written.append(result.log.write_to(out_dir / site / "instance.log"))
        return written

    def outcome_counts(self) -> Dict[RunOutcome, int]:
        counts = {outcome: 0 for outcome in RunOutcome}
        for result in self.results.values():
            counts[result.outcome] += 1
        return counts


class Coordinator:
    """Runs profiling occasions over a federation."""

    def __init__(
        self,
        api: TestbedAPI,
        config: PatchworkConfig,
        poller: Optional[SNMPPoller] = None,
        seed: int = 5,
        checkpointer=None,
    ):
        self.api = api
        self.config = config
        self.poller = poller or SNMPPoller(api.federation)
        self.mflib = MFlib(self.poller.store)
        self.seeds = SeedSequenceFactory(seed)
        self.occasions_run = 0
        # Durable campaign layer (repro.core.checkpoint): when set, the
        # coordinator journals sample-level progress into the campaign
        # WAL and skips occasions the WAL already shows committed.
        self.checkpointer = checkpointer
        self._current_occasion: Optional[int] = None
        # The all-sites ("*") scorecard row.  A shard worker profiles a
        # single site, so its "overall" row would just duplicate the
        # per-site row once per shard in the merged journal; sharded
        # runs disable it and derive fleet totals from per-site rows.
        self.emit_overall_scorecard = True

    def target_sites(self) -> List[str]:
        """Sites this occasion will profile."""
        if self.config.sites is not None:
            return list(self.config.sites)
        return self.api.list_sites()

    def run_profile(
        self,
        crash_probability: float = 0.0,
        deadline_margin: float = 3.0,
        stagger: float = 5.0,
    ) -> Optional[ProfileBundle]:
        """Run one occasion across the target sites and gather results.

        ``crash_probability`` is the per-watchdog-check chance of an
        injected instance crash (reproducing the paper's "Incomplete"
        class).  ``stagger`` spaces instance start-ups so site
        acquisitions do not pile onto the allocator at one instant.
        """
        sim = self.api.federation.sim
        obs = get_obs()
        started_at = sim.now
        occasion = self.occasions_run
        if (self.checkpointer is not None
                and self.checkpointer.occasion_committed(occasion)):
            # Resume: this occasion already committed durably; its
            # artifacts were verified by the campaign runner.
            self.occasions_run += 1
            return None
        self.occasions_run += 1
        self._current_occasion = occasion
        sites = self.target_sites()
        obs.registry.counter("coordinator.occasions",
                             help="profiling occasions run").inc()
        # The occasion span stays open (and current) while the simulator
        # drives the instances, so every span started from a simulator
        # callback -- instance lifetimes, selection rounds, capture
        # sessions -- parents under it.
        with obs.tracer.span("occasion", occasion=occasion,
                             sites=list(sites)):
            instances = [
                self._make_instance(site, f"occasion{occasion}/{site}",
                                    crash_probability)
                for site in sites
            ]
            for i, instance in enumerate(instances):
                sim.schedule(i * stagger, instance.start)
            # The sampling phase is bounded; give stragglers headroom, then
            # run until every instance reports done.  One budget covers the
            # whole occasion, including any recovery re-dispatch wave.
            budget = (
                len(instances) * stagger
                + self.config.plan.approximate_duration * deadline_margin
                + 600.0
            )
            deadline = sim.now + budget
            self._run_wave(sim, instances, deadline)
            bundle = ProfileBundle(started_at=started_at, finished_at=sim.now)
            for instance in instances:
                bundle.results[instance.site] = instance.result
            self._redispatch_failed(sim, bundle, occasion, crash_probability,
                                    stagger, deadline)
            bundle.finished_at = sim.now
            obs.registry.counter(
                "coordinator.redispatches",
                help="failed-site re-dispatch attempts").inc(bundle.redispatches)
            self._score_detector(bundle, obs)
            publish_outcomes(bundle.run_records, t=sim.now)
        obs.snapshot_to_journal()
        return bundle

    def _score_detector(self, bundle: ProfileBundle, obs) -> None:
        """Judge every sample's CongestionVerdict against ledger truth."""
        for site in sorted(bundle.results):
            rows = [record.ledger
                    for record in bundle.results[site].samples
                    if record.ledger is not None]
            if not rows:
                continue
            card = scorecard_from_ledgers(rows)
            bundle.scorecards[site] = card
            obs.journal.emit("scorecard", site=site, **card.to_dict())
            # Three-way detector comparison: only when rows carry
            # streaming-telemetry readings, so telemetry-off journals
            # stay byte-identical to pre-telemetry builds.
            if any(row.detectors for row in rows):
                cards = detector_scorecards_from_ledgers(rows)
                bundle.detector_scorecards[site] = cards
                for name in sorted(cards):
                    obs.journal.emit("detector-scorecard", site=site,
                                     detector=name, **cards[name].to_dict())
        if bundle.scorecards:
            overall = bundle.scorecard
            if self.emit_overall_scorecard:
                obs.journal.emit("scorecard", site="*", **overall.to_dict())
                merged = bundle.merged_detector_scorecards()
                for name in sorted(merged):
                    obs.journal.emit("detector-scorecard", site="*",
                                     detector=name, **merged[name].to_dict())
            registry = obs.registry
            registry.counter(
                "scorecard.true_positives",
                help="congestion verdicts confirmed by ledger truth").inc(
                overall.tp)
            registry.counter(
                "scorecard.false_positives",
                help="congestion verdicts refuted by ledger truth").inc(
                overall.fp)
            registry.counter(
                "scorecard.false_negatives",
                help="mirror overloads the detector missed").inc(overall.fn)
            registry.counter(
                "scorecard.true_negatives",
                help="clean samples correctly called clean").inc(overall.tn)
            registry.counter(
                "scorecard.unanswerable",
                help="samples with no verdict to judge").inc(
                overall.unanswerable)

    def _make_instance(
        self, site: str, rng_label: str, crash_probability: float
    ) -> PatchworkInstance:
        return PatchworkInstance(
            api=self.api,
            mflib=self.mflib,
            config=self.config,
            site=site,
            poller=self.poller,
            rng=self.seeds.rng(rng_label),
            crash_probability=crash_probability,
            # Deterministic identity: the label (not a process-wide
            # counter) names the instance, so journals from two runs of
            # the same seeded scenario are byte-identical.
            label=rng_label,
            on_sample=self._on_sample if self.checkpointer else None,
        )

    def _on_sample(self, instance: PatchworkInstance, record) -> None:
        """Journal one completed sample into the campaign WAL."""
        sim = self.api.federation.sim
        self.checkpointer.record_sample(
            self._current_occasion, instance.site, record, t=sim.now)

    def _run_wave(
        self,
        sim,
        instances: Sequence[PatchworkInstance],
        deadline: float,
    ) -> None:
        """Drive the simulator until every instance finishes or time runs out."""
        while sim.now < deadline and not all(inst.finished for inst in instances):
            if not sim.step():
                break
        for instance in instances:
            if not instance.finished:
                instance.abort("coordinator deadline reached")

    def _redispatch_failed(
        self,
        sim,
        bundle: ProfileBundle,
        occasion: int,
        crash_probability: float,
        stagger: float,
        deadline: float,
    ) -> None:
        """Give FAILED sites one fresh attempt inside the occasion budget.

        Part of the recovery layer: a site whose first attempt failed
        outright (acquisition never completed) gets a brand-new instance
        while budget remains.  The retry result replaces the original
        only if it actually profiled the site; either way the record is
        flagged ``redispatched`` so the accounting stays visible.
        """
        recovery = self.config.recovery
        if not recovery.enabled or recovery.redispatch_limit < 1:
            return
        failed = sorted(
            site for site, result in bundle.results.items()
            if result.outcome is RunOutcome.FAILED
        )
        if not failed or sim.now >= deadline:
            return
        retries = [
            self._make_instance(site, f"occasion{occasion}/{site}/retry",
                                crash_probability)
            for site in failed
        ]
        for i, instance in enumerate(retries):
            sim.schedule(i * stagger, instance.start)
        self._run_wave(sim, retries, deadline)
        for instance in retries:
            result = instance.result
            bundle.redispatches += 1
            if result.outcome in (RunOutcome.SUCCESS, RunOutcome.DEGRADED):
                result.redispatched = True
                bundle.results[instance.site] = result
            else:
                bundle.results[instance.site].redispatched = True
