"""Durable campaign state: write-ahead log + checkpoint snapshots.

The paper's headline artifact is a 13-month, 9000+-run campaign; over a
horizon like that the *coordinator process itself* dies (host reboot,
OOM, operator ctrl-C).  This module is the run-state layer that makes
the coordinator's own death recoverable:

* :class:`CampaignLog` -- a write-ahead log (``campaign.wal``): one
  canonical-JSON line per record (the RunJournal codec), each line
  carrying a content checksum.  Appends are flushed; *commit* records
  are fsynced.  Reads tolerate a torn tail (the partial final line a
  crash leaves) and truncate it before appending again.
* :class:`CheckpointStore` -- per-occasion snapshots written with the
  atomic temp-file-then-``os.replace`` pattern and verified by SHA-256
  on load.
* :class:`CampaignCheckpointer` -- the narrow interface the coordinator
  and instances see: occasion begin/commit records and sample-level
  progress rows (so a mid-occasion crash can salvage completed samples).
* :func:`fold_records` / :func:`describe_run` / :func:`list_runs` --
  recovery: replay the WAL into the campaign's last durable state.

The commit protocol for one occasion:

1. append ``occasion-begin`` carrying the derived RNG seeds (fsync);
2. run the occasion; each completed sample appends a ``sample`` row
   (flush only -- losing the tail loses samples, not consistency);
3. write the journal segment and the checkpoint file atomically;
4. append ``occasion-commit`` naming both files and their SHA-256
   (fsync).  **The WAL commit is the durability point**: a crash
   between step 3's ``os.replace`` and step 4 leaves an orphan
   checkpoint that recovery ignores and the re-run overwrites.

Sharded occasions (:mod:`repro.core.sharding`) add one record kind
inside step 2: after each per-site worker finishes, the parent -- the
only WAL writer -- appends the shard's sample rows and then a fsynced
``shard-commit`` naming the shard segment and pcaps by SHA-256.  A
resume of an uncommitted occasion re-verifies each shard commit and
re-runs only the shards that are missing or damaged.

Because every stochastic stream is derived from (seed, label) pairs
(:mod:`repro.util.rng`), a checkpoint never serializes live RNG or
simulator state: re-running an occasion from its journaled seeds
reproduces it byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.journal import jsonable
from repro.util.atomio import FileIO, atomic_write_bytes, sweep_tmp_files

#: Modules whose writes land on durable run-state paths.  reprolint
#: RL008 uses this registry to flag non-atomic (truncating) writes in
#: them; append-mode opens and :mod:`repro.util.atomio` helpers are the
#: two sanctioned write patterns.
DURABLE_MODULES = (
    "repro/core/checkpoint.py",
    "repro/core/campaign.py",
    "repro/core/gather.py",
    "repro/core/sharding.py",
    "repro/obs/journal.py",
    "repro/testbed/chaos.py",
)

WAL_NAME = "campaign.wal"
MANIFEST_NAME = "campaign.manifest"
CHECKPOINT_DIR = "checkpoints"
SEGMENT_DIR = "journal"


class WalCorruptionError(ValueError):
    """The WAL is damaged beyond the tolerated torn tail."""


def canonical_json(payload: Any) -> str:
    """The RunJournal codec: sorted keys, compact separators."""
    return json.dumps(jsonable(payload), sort_keys=True,
                      separators=(",", ":"))


def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: Union[str, Path]) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class WalRecord:
    """One committed WAL line."""

    seq: int
    kind: str
    data: Dict[str, Any]


def _line_checksum(body: str) -> str:
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def _encode_record(seq: int, kind: str, data: Dict[str, Any]) -> bytes:
    body = canonical_json({"data": data, "kind": kind, "seq": seq})
    line = canonical_json({"data": jsonable(data), "kind": kind, "seq": seq,
                           "sum": _line_checksum(body)})
    return (line + "\n").encode("utf-8")


def _decode_line(line: str) -> WalRecord:
    payload = json.loads(line)
    body = canonical_json({"data": payload["data"], "kind": payload["kind"],
                           "seq": payload["seq"]})
    if payload.get("sum") != _line_checksum(body):
        raise ValueError("checksum mismatch")
    return WalRecord(seq=int(payload["seq"]), kind=str(payload["kind"]),
                     data=payload["data"])


def read_wal(path: Union[str, Path]) -> Tuple[List[WalRecord], bool, int]:
    """Parse a WAL, tolerating a torn tail.

    Returns ``(records, torn, valid_bytes)`` where ``valid_bytes`` is
    the length of the longest committed prefix (what a reopening writer
    truncates to).  Damage *before* the final line raises
    :class:`WalCorruptionError` -- a torn tail is the only corruption a
    crash can legitimately produce.
    """
    raw = Path(path).read_bytes()
    # Canonical JSON is pure ASCII with escaped newlines, so a partial
    # append can never *end* with a newline: everything after the last
    # 0x0A byte is exactly the torn fragment (empty = clean termination).
    # The split happens on bytes: decoding first with errors="replace"
    # would inflate each undecodable tail byte (bitrot, a torn multi-byte
    # write) into a 3-byte U+FFFD, undercounting valid_bytes and letting
    # the reopening writer truncate into committed records.
    body, _sep, tail = raw.rpartition(b"\n")
    torn = bool(tail)
    valid_bytes = len(raw) - len(tail)
    records: List[WalRecord] = []
    for i, line_bytes in enumerate(body.split(b"\n") if body else []):
        try:
            records.append(_decode_line(line_bytes.decode("utf-8")))
        except (json.JSONDecodeError, ValueError, KeyError, TypeError) as exc:
            # Terminated lines were written in full; damage here is real
            # corruption, not the signature of a crash.
            raise WalCorruptionError(
                f"{path}: corrupt WAL line {i + 1}: {exc}") from exc
    return records, torn, valid_bytes


class CampaignLog:
    """The append-only write-ahead log of one campaign run directory."""

    def __init__(self, path: Union[str, Path], io: Optional[FileIO] = None):
        self.path = Path(path)
        self.io = io if io is not None else FileIO()
        self._handle = None
        self._next_seq = 0
        self.torn_on_open = False

    def open(self) -> List[WalRecord]:
        """Open for appending, first truncating any torn tail.

        Returns every record committed before the last crash (the
        recovery input).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        records: List[WalRecord] = []
        if self.path.exists():
            records, torn, valid_bytes = read_wal(self.path)
            self.torn_on_open = torn
            if torn:
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
        self._next_seq = records[-1].seq + 1 if records else 0
        self._handle = open(self.path, "ab")
        return records

    def append(self, kind: str, data: Dict[str, Any],
               commit: bool = False) -> WalRecord:
        """Append one record; ``commit=True`` fsyncs (durability point)."""
        if self._handle is None:
            raise RuntimeError("CampaignLog is not open")
        seq = self._next_seq
        self.io.write(self._handle, _encode_record(seq, kind, data))
        self._handle.flush()
        if commit:
            self.io.fsync(self._handle)
        self._next_seq += 1
        return WalRecord(seq=seq, kind=kind, data=data)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignLog":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CheckpointStore:
    """Atomic, checksummed per-occasion snapshots."""

    def __init__(self, directory: Union[str, Path],
                 io: Optional[FileIO] = None):
        self.directory = Path(directory)
        self.io = io if io is not None else FileIO()

    def name_for(self, occasion: int) -> str:
        return f"occ{occasion:04d}.ckpt"

    def path_for(self, occasion: int) -> Path:
        return self.directory / self.name_for(occasion)

    def save(self, occasion: int, state: Dict[str, Any]) -> Tuple[Path, str]:
        """Write one snapshot atomically; returns ``(path, sha256)``."""
        data = (canonical_json(state) + "\n").encode("utf-8")
        path = atomic_write_bytes(self.path_for(occasion), data, io=self.io)
        return path, sha256_bytes(data)

    def load(self, occasion: int,
             expect_sha: Optional[str] = None) -> Dict[str, Any]:
        data = self.path_for(occasion).read_bytes()
        if expect_sha is not None and sha256_bytes(data) != expect_sha:
            raise WalCorruptionError(
                f"{self.path_for(occasion)}: checkpoint checksum mismatch")
        return json.loads(data)

    def sweep(self) -> int:
        """Drop temp files a crash left mid-replace."""
        return sweep_tmp_files(self.directory)


@dataclass
class RecoveryState:
    """The campaign's last durable state, folded from the WAL."""

    manifest_sha: Optional[str] = None
    begun: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    committed: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    samples: Dict[int, List[Dict[str, Any]]] = field(default_factory=dict)
    # Sharded occasions: per-occasion, per-site shard commits.  Not
    # reset by a fresh ``occasion-begin`` -- shard results are keyed to
    # the occasion's derived seeds, which begin_occasion cross-checks,
    # so a resuming attempt legitimately reuses verified shards.
    shards: Dict[int, Dict[str, Dict[str, Any]]] = field(default_factory=dict)
    ended: Optional[Dict[str, Any]] = None
    torn: bool = False

    def salvageable(self, occasion: int) -> List[Dict[str, Any]]:
        """Sample rows recorded for an occasion that never committed.

        In sharded mode the per-sample rows ride inside each fsynced
        ``shard-commit`` record (the worker cannot write the WAL, so a
        shard is the unit of durability); those rows are salvageable
        exactly like the in-process path's incremental ``sample`` rows.
        """
        if occasion in self.committed:
            return []
        rows = list(self.samples.get(occasion, []))
        for site in sorted(self.shards.get(occasion, {})):
            rows.extend(self.shards[occasion][site].get("samples", []))
        return rows


def fold_records(records: List[WalRecord],
                 torn: bool = False) -> RecoveryState:
    """Replay WAL records into the last durable state.

    Re-runs after a crash append fresh ``occasion-begin``/``sample``
    rows for the same occasion; later records win, and sample rows are
    kept per *attempt* (an ``occasion-begin`` resets the occasion's
    sample list, because a strict re-run regenerates them all).
    """
    state = RecoveryState(torn=torn)
    for record in records:
        data = record.data
        if record.kind == "campaign-begin":
            state.manifest_sha = data.get("manifest_sha")
        elif record.kind == "occasion-begin":
            occasion = int(data["occasion"])
            state.begun[occasion] = data
            state.samples[occasion] = []
        elif record.kind == "sample":
            occasion = int(data["occasion"])
            state.samples.setdefault(occasion, []).append(data)
        elif record.kind == "shard-commit":
            occasion = int(data["occasion"])
            state.shards.setdefault(occasion, {})[str(data["site"])] = data
        elif record.kind in ("occasion-commit", "occasion-salvaged"):
            occasion = int(data["occasion"])
            state.committed[occasion] = data
        elif record.kind == "campaign-end":
            state.ended = data
    return state


def sample_row(run_dir: Union[str, Path], occasion: int, site: str,
               record, t: float) -> Dict[str, Any]:
    """Build the WAL ``sample`` row for one completed sample.

    ``record`` is a :class:`repro.core.instance.SampleRecord`; the row
    carries enough to rebuild the sample's ledger event and a
    content-addressed pointer to its pcap.  Shared by the in-process
    checkpointer and the shard workers (which return rows for the
    parent -- the single WAL writer -- to append).
    """
    run_dir = Path(run_dir)
    pcap = record.pcap_path
    rel = None
    sha = None
    if pcap is not None and Path(pcap).exists():
        pcap = Path(pcap)
        try:
            rel = str(pcap.relative_to(run_dir))
        except ValueError:
            rel = str(pcap)
        sha = sha256_file(pcap)
    ledger = record.ledger.to_event() if record.ledger is not None else None
    return {
        "occasion": occasion,
        "site": site,
        "cycle": record.cycle,
        "run": record.run,
        "sample": record.sample,
        "slot": record.slot,
        "mirrored_port": record.mirrored_port,
        "pcap": rel,
        "pcap_sha256": sha,
        "frames_seen": record.stats.frames_seen,
        "frames_captured": record.stats.frames_captured,
        "bytes_captured": record.stats.bytes_captured,
        "t": t,
        "ledger": ledger,
    }


class CampaignCheckpointer:
    """What the coordinator and instances see of the durable layer.

    ``Coordinator.run_profile`` asks :meth:`occasion_committed` to skip
    occasions a previous process already finished, and calls
    :meth:`record_sample` from the instance sample hook so a
    mid-occasion crash can salvage completed samples as DEGRADED.
    """

    def __init__(self, run_dir: Union[str, Path], log: CampaignLog,
                 store: CheckpointStore,
                 state: Optional[RecoveryState] = None):
        self.run_dir = Path(run_dir)
        self.log = log
        self.store = store
        self.state = state if state is not None else RecoveryState()

    def occasion_committed(self, occasion: int) -> bool:
        return occasion in self.state.committed

    def begin_occasion(self, occasion: int,
                       seeds: Dict[str, int]) -> None:
        """Journal the occasion's derived RNG state before running it."""
        previous = self.state.begun.get(occasion)
        if previous is not None and previous.get("seeds") != jsonable(seeds):
            raise WalCorruptionError(
                f"occasion {occasion}: journaled seeds {previous.get('seeds')} "
                f"!= derived {seeds}; the manifest or WAL is inconsistent")
        self.log.append("occasion-begin",
                        {"occasion": occasion, "seeds": dict(seeds)},
                        commit=True)
        self.state.begun[occasion] = {"occasion": occasion,
                                      "seeds": jsonable(seeds)}
        self.state.samples[occasion] = []

    def record_sample(self, occasion: int, site: str, record,
                      t: float) -> None:
        """Append one sample-progress row (flush, no fsync)."""
        row = sample_row(self.run_dir, occasion, site, record, t)
        self.log.append("sample", row)
        self.state.samples.setdefault(occasion, []).append(row)

    def commit_shard(self, occasion: int, site: str,
                     data: Dict[str, Any]) -> None:
        """Durably record one finished shard (fsynced).

        A parent crash after this record lets resume reuse the shard --
        segment, pcaps, and sample rows -- instead of re-running it.
        """
        payload = dict(data)
        payload["occasion"] = occasion
        payload["site"] = site
        self.log.append("shard-commit", payload, commit=True)
        self.state.shards.setdefault(occasion, {})[site] = payload

    def commit_occasion(self, occasion: int, commit_data: Dict[str, Any],
                        salvaged: bool = False) -> None:
        """The durability point: fsynced after checkpoint ``os.replace``."""
        kind = "occasion-salvaged" if salvaged else "occasion-commit"
        data = dict(commit_data)
        data["occasion"] = occasion
        self.log.append(kind, data, commit=True)
        self.state.committed[occasion] = data


# -- run-directory inspection (repro runs list/describe) -----------------


def describe_run(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Summarize a campaign run directory from its durable state alone."""
    run_dir = Path(run_dir)
    manifest_path = run_dir / MANIFEST_NAME
    wal_path = run_dir / WAL_NAME
    summary: Dict[str, Any] = {
        "path": str(run_dir),
        "state": "not-a-campaign",
        "occasions_total": None,
        "occasions_committed": 0,
        "samples_salvageable": 0,
        "torn_wal": False,
    }
    manifest = None
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError:
            summary["state"] = "corrupt-manifest"
            return summary
        summary["occasions_total"] = manifest.get("occasions")
        summary["sites"] = manifest.get("sites")
        summary["seed"] = manifest.get("seed")
    if not wal_path.exists():
        if manifest is not None:
            summary["state"] = "fresh"
        return summary
    try:
        records, torn, _valid = read_wal(wal_path)
    except WalCorruptionError as exc:
        summary["state"] = "corrupt-wal"
        summary["error"] = str(exc)
        return summary
    state = fold_records(records, torn=torn)
    summary["torn_wal"] = torn
    summary["occasions_committed"] = len(state.committed)
    pending = [o for o in state.begun if o not in state.committed]
    summary["samples_salvageable"] = sum(
        len(state.salvageable(o)) for o in pending)
    if state.ended is not None:
        summary["state"] = "complete"
        summary["success_rate"] = state.ended.get("success_rate")
    elif manifest is None:
        summary["state"] = "resumable-no-manifest"
    else:
        summary["state"] = "resumable"
    return summary


def list_runs(parent: Union[str, Path]) -> List[Dict[str, Any]]:
    """Describe every campaign run directory directly under ``parent``."""
    parent = Path(parent)
    summaries = []
    if (parent / MANIFEST_NAME).exists() or (parent / WAL_NAME).exists():
        summaries.append(describe_run(parent))
    for child in sorted(p for p in parent.iterdir() if p.is_dir()):
        if (child / MANIFEST_NAME).exists() or (child / WAL_NAME).exists():
            summaries.append(describe_run(child))
    return summaries
