"""Switch-congestion detection (requirement R3, Section 6.2.2).

Port mirroring copies both the Rx and Tx channels of the mirrored port
into the single Tx channel toward Patchwork's NIC, so whenever
``Mirrored(Tx) + Mirrored(Rx) > line rate`` the switch silently drops
clones and the sample is incomplete.  Patchwork cannot prevent this --
it does not control the traffic -- so it *detects* it: around every
sample it queries the switch's rates for the mirrored port and infers
whether loss was likely, logging the verdict as part of the profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.logs import InstanceLog
from repro.telemetry.mflib import MFlib


@dataclass(frozen=True)
class CongestionVerdict:
    """The congestion inference for one sample."""

    site: str
    mirrored_port: str
    mirror_rate_bps: Optional[float]   # Tx+Rx of the mirrored port
    dest_rate_bps: float               # line rate of the mirror destination
    overloaded: Optional[bool]         # None = telemetry could not answer

    @property
    def answerable(self) -> bool:
        return self.overloaded is not None

    def describe(self) -> str:
        if not self.answerable:
            return "telemetry unavailable; congestion unknown"
        if self.overloaded:
            return (
                f"mirror overload likely: mirrored Tx+Rx "
                f"{self.mirror_rate_bps / 1e9:.2f} Gbps exceeds destination "
                f"line rate {self.dest_rate_bps / 1e9:.2f} Gbps"
            )
        return "no mirror congestion inferred"


class CongestionDetector:
    """Runs the inference and logs verdicts."""

    def __init__(self, mflib: MFlib, headroom: float = 1.0):
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        self.mflib = mflib
        self.headroom = headroom

    def check(
        self,
        site: str,
        mirrored_port: str,
        dest_rate_bps: float,
        start: float,
        end: float,
        log: Optional[InstanceLog] = None,
    ) -> CongestionVerdict:
        """Infer whether the sample window overloaded the mirror."""
        rates = self.mflib.port_rates(site, mirrored_port, start, end)
        if rates is None:
            verdict = CongestionVerdict(site, mirrored_port, None, dest_rate_bps, None)
        else:
            overloaded = rates.total_bps > dest_rate_bps * self.headroom
            verdict = CongestionVerdict(
                site, mirrored_port, rates.total_bps, dest_rate_bps, overloaded
            )
        if log is not None:
            level = "warning" if verdict.overloaded else "info"
            log.log(end, level, "congestion", verdict.describe(),
                    port=mirrored_port)
        return verdict
