"""Control-plane fault recovery: retries and circuit breaking.

The paper's Fig 10 shows clusters of "Failed" runs caused by transient
back-end incidents (e.g. 10-15 Sept).  The original Patchwork simply
recorded those failures; this module is the recovery layer that lets
the reproduction *wait out* such incidents instead:

* :class:`RetryPolicy` -- jittered exponential delays with attempt and
  sim-time deadline budgets.  Delays are spent as *simulated* time via
  ``api.wait``, so a retry sequence genuinely outlasts a short
  :class:`~repro.testbed.faults.OutageWindow` rather than hammering the
  same instant.
* :class:`CircuitBreaker` -- a per-site breaker (closed -> open after N
  consecutive transient failures -> half-open probe) that turns a
  persistently failing site's control plane from a time sink into a
  fast rejection, while still probing for recovery.
* :class:`ResilientAPI` -- a wrapper around
  :class:`~repro.testbed.api.TestbedAPI` that applies both to every
  control-plane *mutation* (slice create/delete, mirror
  create/retarget/delete).  Read-only calls pass straight through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, TypeVar

import numpy as np

from repro.core.logs import InstanceLog
from repro.obs import get_obs
from repro.testbed.api import TestbedAPI
from repro.testbed.errors import TransientBackendError, is_retryable
from repro.testbed.slice_model import Slice, SliceRequest
from repro.testbed.switch import MirrorSession

T = TypeVar("T")


class CircuitOpenError(TransientBackendError):
    """The per-site breaker is open: the call was rejected client-side.

    Subclasses :class:`TransientBackendError` because the condition is
    transient from the caller's point of view -- the breaker will
    half-open after its cooldown.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Budgeted, jittered exponential retry delays (in sim seconds).

    ``delay(attempt)`` for attempt 1, 2, 3, ... is
    ``min(max_delay, base_delay * multiplier ** (attempt - 1))``
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter/2, 1 + jitter/2]``.  Jitter keeps concurrent
    instances' retries from re-synchronizing onto the same instant.
    """

    max_attempts: int = 5
    base_delay: float = 15.0
    max_delay: float = 240.0
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = 900.0  # total sim-time budget per call

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("delays must satisfy 0 < base_delay <= max_delay")
        if not 0.0 <= self.jitter < 2.0:
            raise ValueError("jitter must be in [0, 2)")

    def delay(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if rng is None or self.jitter == 0.0:
            return raw
        factor = 1.0 + self.jitter * (rng.random() - 0.5)
        return raw * factor


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-site breaker over control-plane mutations.

    CLOSED until ``threshold`` *consecutive* transient failures, then
    OPEN for ``cooldown`` sim-seconds (every call rejected without
    touching the backend), then HALF_OPEN: one probe call is let
    through; success closes the breaker, failure re-opens it.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 300.0):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.threshold = threshold
        self.cooldown = cooldown
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False
        self.opens = 0
        self.rejections = 0

    def state(self, now: float) -> BreakerState:
        if self.opened_at is None:
            return BreakerState.CLOSED
        if now - self.opened_at >= self.cooldown:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    def allow(self, now: float) -> bool:
        """May a call proceed at ``now``?  (Counts rejections.)"""
        state = self.state(now)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        self.rejections += 1
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until the breaker would half-open (0 if not open)."""
        if self.opened_at is None:
            return 0.0
        return max(0.0, self.opened_at + self.cooldown - now)

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self, now: float) -> bool:
        """Note a transient failure; True if the breaker opened (again)."""
        self.consecutive_failures += 1
        was_open = self.opened_at is not None
        if self._probing:
            # Failed probe: re-open for a fresh cooldown.
            self._probing = False
            self.opened_at = now
            self.opens += 1
            return True
        if not was_open and self.consecutive_failures >= self.threshold:
            self.opened_at = now
            self.opens += 1
            return True
        return False


@dataclass
class RetryStats:
    """Accounting across one :class:`ResilientAPI`'s lifetime."""

    calls: int = 0
    transient_failures: int = 0
    retries: int = 0
    giveups: int = 0
    breaker_opens: int = 0
    breaker_rejections: int = 0
    total_delay: float = 0.0


class ResilientAPI:
    """A :class:`TestbedAPI` whose mutations retry and circuit-break.

    Composition, not inheritance: read-only calls (and anything this
    class does not override) delegate straight to the wrapped API, so a
    ``ResilientAPI`` drops into any code written against
    ``TestbedAPI``.  Mutations run under the retry policy with one
    breaker per site.
    """

    __test__ = False

    def __init__(
        self,
        api: TestbedAPI,
        policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 300.0,
        log: Optional[InstanceLog] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self._api = api
        self.policy = policy or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.log = log
        self.rng = rng
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.stats = RetryStats()
        # Pre-bound observability handles (null instruments when the
        # process registry is disabled).
        obs = get_obs()
        self._journal = obs.journal
        registry = obs.registry
        self._m_calls = registry.counter(
            "retry.calls", help="control-plane mutations attempted")
        self._m_retries = registry.counter(
            "retry.retries", help="transient-failure retries")
        self._m_failures = registry.counter(
            "retry.transient_failures", help="transient control-plane failures")
        self._m_giveups = registry.counter(
            "retry.giveups", help="mutations abandoned after budget exhaustion")
        self._m_delay = registry.counter(
            "retry.delay_seconds", help="sim seconds spent waiting to retry")
        self._m_opens = registry.counter(
            "breaker.opens", help="circuit-breaker open transitions")
        self._m_rejections = registry.counter(
            "breaker.rejections", help="calls rejected by an open breaker")

    # -- plumbing ----------------------------------------------------------

    @property
    def inner(self) -> TestbedAPI:
        """The wrapped, non-resilient API."""
        return self._api

    def __getattr__(self, name: str):
        # Only consulted for attributes not defined here: every
        # read-only TestbedAPI method and property delegates.
        return getattr(self._api, name)

    def breaker_for(self, site: str) -> CircuitBreaker:
        breaker = self.breakers.get(site)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)
            self.breakers[site] = breaker
        return breaker

    def _note(self, level: str, message: str, **data) -> None:
        if self.log is not None:
            self.log.log(self._api.now, level, "retry", message, **data)

    def _call(self, site: str, label: str, fn: Callable[[], T]) -> T:
        """Run one mutation under retry + breaker discipline."""
        policy = self.policy
        breaker = self.breaker_for(site)
        started = self._api.now
        attempt = 0
        self.stats.calls += 1
        self._m_calls.inc()
        while True:
            if not breaker.allow(self._api.now):
                self.stats.breaker_rejections += 1
                self._m_rejections.inc()
                wait_for = breaker.retry_after(self._api.now)
                if not self._budget_allows(policy, started, attempt, wait_for):
                    self.stats.giveups += 1
                    self._m_giveups.inc()
                    raise CircuitOpenError(
                        f"{site}: circuit open for {label} "
                        f"(retry after {wait_for:.0f}s)"
                    )
                # Wait out the cooldown (plus jitter) and probe.
                delay = wait_for + policy.delay(1, self.rng) * 0.1
                self._note("warning", f"{label}: breaker open; waiting for probe",
                           site=site, delay=round(delay, 3))
                self.stats.total_delay += delay
                self._m_delay.inc(delay)
                self._api.wait(delay)
                continue
            was_open = breaker.opened_at is not None
            try:
                result = fn()
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                self.stats.transient_failures += 1
                self._m_failures.inc()
                if breaker.record_failure(self._api.now):
                    self.stats.breaker_opens += 1
                    self._m_opens.inc()
                    self._journal.emit(
                        "breaker", t=self._api.now, site=site, state="open",
                        label=label, failures=breaker.consecutive_failures)
                    self._note("error", f"{label}: breaker opened",
                               site=site, failures=breaker.consecutive_failures)
                attempt += 1
                if attempt >= policy.max_attempts:
                    self.stats.giveups += 1
                    self._m_giveups.inc()
                    raise
                delay = policy.delay(attempt, self.rng)
                if not self._budget_allows(policy, started, attempt, delay):
                    self.stats.giveups += 1
                    self._m_giveups.inc()
                    raise
                self._note("warning",
                           f"{label} failed transiently; retrying", site=site,
                           attempt=attempt, delay=round(delay, 3), error=str(exc))
                self.stats.retries += 1
                self._m_retries.inc()
                self._journal.emit("retry", t=self._api.now, site=site,
                                   label=label, attempt=attempt,
                                   delay=round(delay, 3))
                self.stats.total_delay += delay
                self._m_delay.inc(delay)
                self._api.wait(delay)
                continue
            breaker.record_success()
            if was_open:
                # A successful half-open probe: the breaker closed.  The
                # failure streak is over, so `failures` resets to 0 --
                # keeping one {site, state, label, failures} schema for
                # every `breaker` event (RL009).
                self._journal.emit("breaker", t=self._api.now, site=site,
                                   state="closed", label=label, failures=0)
            if attempt > 0:
                self._note("info", f"{label} succeeded after retries",
                           site=site, attempts=attempt + 1)
            return result

    def _budget_allows(self, policy: RetryPolicy, started: float,
                       attempt: int, delay: float) -> bool:
        if attempt >= policy.max_attempts:
            return False
        if policy.deadline is None:
            return True
        return (self._api.now - started) + delay <= policy.deadline

    # -- guarded mutations --------------------------------------------------

    def create_slice(self, request: SliceRequest) -> Slice:
        return self._call(request.site, "create_slice",
                          lambda: self._api.create_slice(request))

    def delete_slice(self, slice_name: str) -> None:
        live = self._api.federation.allocator.slices.get(slice_name)
        site = live.site_name if live is not None else slice_name
        return self._call(site, "delete_slice",
                          lambda: self._api.delete_slice(slice_name))

    def create_port_mirror(
        self,
        live_slice: Slice,
        source_port_id: str,
        dest_port_id: str,
        directions: FrozenSet[str] = frozenset({"rx", "tx"}),
    ) -> MirrorSession:
        return self._call(
            live_slice.site_name, "create_port_mirror",
            lambda: self._api.create_port_mirror(
                live_slice, source_port_id, dest_port_id, directions),
        )

    def retarget_port_mirror(
        self, live_slice: Slice, session: MirrorSession, new_source_port_id: str
    ) -> MirrorSession:
        return self._call(
            live_slice.site_name, "retarget_port_mirror",
            lambda: self._api.retarget_port_mirror(
                live_slice, session, new_source_port_id),
        )

    def delete_port_mirror(self, live_slice: Slice, session: MirrorSession) -> None:
        return self._call(
            live_slice.site_name, "delete_port_mirror",
            lambda: self._api.delete_port_mirror(live_slice, session),
        )
