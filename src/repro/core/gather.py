"""The gathering phase (paper Section 6.2.3).

"When the sampling phase ends, the captured traffic (as pcap files)
and logs are compressed and downloaded to the coordinator."

:func:`gather_bundle` packages each profiled site's pcaps and instance
log into one ``<site>.tar.gz`` with a manifest of SHA-256 checksums, so
the coordinator can verify transfers; :func:`verify_archive` and
:func:`extract_archive` are the coordinator-side half.  Compressing
before transfer is also what lets Patchwork release its testbed
resources quickly -- the paper's point about keeping leases short.
"""

from __future__ import annotations

import hashlib
import io
import json
import tarfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.util.atomio import FileIO, atomic_write_bytes

MANIFEST_NAME = "MANIFEST.json"


@dataclass
class GatheredSite:
    """One site's compressed capture bundle."""

    site: str
    archive_path: Path
    files: int
    raw_bytes: int
    compressed_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 0.0
        return self.raw_bytes / self.compressed_bytes


def gather_site(site: str, site_dir: Path, out_dir: Path,
                log_text: Optional[str] = None,
                file_io: Optional[FileIO] = None) -> GatheredSite:
    """Compress one site's output directory into ``<site>.tar.gz``.

    The archive is assembled in memory and landed with the atomic
    temp-file + ``os.replace`` idiom (RL008): a gather interrupted
    mid-compression leaves either no archive or the previous complete
    one on disk, never a truncated ``.tar.gz`` for ``verify_archive``
    to trip over later.
    """
    site_dir = Path(site_dir)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    archive_path = out_dir / f"{site}.tar.gz"
    manifest: Dict[str, str] = {}
    raw_bytes = 0
    files = sorted(p for p in site_dir.rglob("*") if p.is_file())
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w:gz") as archive:  # reprolint: disable=RL008 -- writes an in-memory buffer, landed via atomic_write_bytes below
        for path in files:
            arcname = f"{site}/{path.relative_to(site_dir)}"
            # Read each capture once: hash and archive from the same
            # bytes instead of a separate pass per job.
            data = path.read_bytes()
            info = tarfile.TarInfo(arcname)
            info.size = len(data)
            info.mtime = int(path.stat().st_mtime)
            archive.addfile(info, io.BytesIO(data))
            manifest[arcname] = hashlib.sha256(data).hexdigest()
            raw_bytes += len(data)
        if log_text is not None:
            data = log_text.encode("utf-8")
            info = tarfile.TarInfo(f"{site}/instance.log")
            info.size = len(data)
            archive.addfile(info, io.BytesIO(data))
            manifest[f"{site}/instance.log"] = hashlib.sha256(data).hexdigest()
            raw_bytes += len(data)
        manifest_data = json.dumps(manifest, indent=2, sort_keys=True).encode()
        info = tarfile.TarInfo(f"{site}/{MANIFEST_NAME}")
        info.size = len(manifest_data)
        archive.addfile(info, io.BytesIO(manifest_data))
    atomic_write_bytes(archive_path, buffer.getvalue(), io=file_io)
    return GatheredSite(
        site=site,
        archive_path=archive_path,
        files=len(manifest),
        raw_bytes=raw_bytes,
        compressed_bytes=archive_path.stat().st_size,
    )


def gather_bundle(bundle, out_dir: Union[str, Path],
                  max_workers: int = 1) -> List[GatheredSite]:
    """Compress every profiled site of a ProfileBundle.

    ``bundle`` is a :class:`~repro.core.coordinator.ProfileBundle`; each
    site that produced pcaps gets one archive containing its captures,
    its instance log, and a checksum manifest.  Sites are independent,
    so ``max_workers`` > 1 compresses them concurrently (gzip releases
    the GIL); the returned list is always in site order.
    """
    out_dir = Path(out_dir)
    jobs = []
    for site, result in sorted(bundle.results.items()):
        if not result.pcap_paths:
            continue
        site_dir = result.pcap_paths[0].parent
        log_text = result.log.render() if result.log is not None else None
        jobs.append((site, site_dir, log_text))
    if max_workers > 1 and len(jobs) > 1:
        with ThreadPoolExecutor(max_workers=min(max_workers, len(jobs))) as pool:
            return list(pool.map(
                lambda job: gather_site(job[0], job[1], out_dir, job[2]), jobs))
    return [gather_site(site, site_dir, out_dir, log_text)
            for site, site_dir, log_text in jobs]


def verify_archive(archive_path: Union[str, Path]) -> bool:
    """Check every archived file against the embedded manifest.

    The manifest is matched by its **exact** archive path,
    ``<site>/MANIFEST.json`` at the archive root -- a captured file
    whose name merely ends in the manifest name (say
    ``<site>/sub/MANIFEST.json``) is ordinary content to be verified,
    not a manifest.  Should the exact name somehow appear twice, the
    last occurrence wins, matching both tar extraction semantics and
    ``gather_site`` appending the manifest last.  Every non-manifest
    member must be listed with a matching SHA-256, and every listed
    file must be present: extras and absences both fail.
    """
    archive_path = Path(archive_path)
    with tarfile.open(archive_path, "r:gz") as archive:
        members = [m for m in archive.getmembers() if m.isfile()]
        if not members:
            return False
        root = members[0].name.split("/", 1)[0]
        manifest_name = f"{root}/{MANIFEST_NAME}"
        manifest_member = None
        for member in members:
            if member.name == manifest_name:
                manifest_member = member
        if manifest_member is None:
            return False
        try:
            manifest = json.loads(archive.extractfile(manifest_member).read())
        except (json.JSONDecodeError, UnicodeDecodeError):
            return False
        if not isinstance(manifest, dict):
            return False
        seen = set()
        for member in members:
            if member.name == manifest_name:
                continue
            expected = manifest.get(member.name)
            if expected is None:
                return False
            data = archive.extractfile(member).read()
            if hashlib.sha256(data).hexdigest() != expected:
                return False
            seen.add(member.name)
        return seen == set(manifest)


def extract_archive(archive_path: Union[str, Path],
                    dest: Union[str, Path]) -> List[Path]:
    """Unpack a gathered archive (the coordinator's download step)."""
    archive_path = Path(archive_path)
    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    extracted = []
    with tarfile.open(archive_path, "r:gz") as archive:
        for member in archive.getmembers():
            if not member.isfile():
                continue
            target = dest / member.name
            if not str(target.resolve()).startswith(str(dest.resolve())):
                raise ValueError(f"unsafe path in archive: {member.name}")
            atomic_write_bytes(target, archive.extractfile(member).read())
            extracted.append(target)
    return extracted
