"""Patchwork reproduction: traffic capture and analysis for a federated testbed.

This library reproduces, in pure Python, the system and evaluation of
*"Patchwork: A Traffic Capture and Analysis Platform for Network
Experiments on a Federated Testbed"* (IMC '25): the Patchwork profiler
itself (:mod:`repro.core`, :mod:`repro.analysis`) plus every substrate
it needs -- a FABRIC-like federated testbed model (:mod:`repro.testbed`)
over a discrete-event dataplane (:mod:`repro.netsim`), SNMP/MFlib
telemetry (:mod:`repro.telemetry`), researcher workloads
(:mod:`repro.traffic`), calibrated capture-path performance models
(:mod:`repro.capture`), and the Section-5 infrastructure study
(:mod:`repro.study`).

Quickstart::

    from repro import quickstart_federation
    from repro.core import Coordinator, PatchworkConfig, SamplingPlan

    federation, api, poller, orchestrator = quickstart_federation()
    orchestrator.generate_window(0.0, 60.0)
    config = PatchworkConfig(output_dir="out", plan=SamplingPlan(
        sample_duration=5, sample_interval=30, samples_per_run=2,
        runs_per_cycle=1, cycles=2))
    bundle = Coordinator(api, config, poller=poller).run_profile()

See ``examples/quickstart.py`` for the full walk-through.
"""

from typing import Optional, Sequence

__version__ = "1.0.0"

__all__ = ["quickstart_federation", "__version__"]


def quickstart_federation(
    site_names: "Optional[Sequence[str]]" = None,
    seed: int = 42,
    traffic_seed: int = 7,
    traffic_scale: float = 0.1,
    poll_interval: float = 30.0,
):
    """Build a ready-to-profile testbed in one call.

    Returns ``(federation, api, poller, orchestrator)``: a FABRIC-like
    federation, its user-facing API, a started SNMP poller, and a
    traffic orchestrator with endpoints already set up.
    """
    from repro.telemetry import SNMPPoller
    from repro.testbed import FederationBuilder, TestbedAPI
    from repro.traffic.workloads import TrafficOrchestrator

    federation = FederationBuilder(seed=seed).build(site_names=site_names)
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=poll_interval)
    poller.start()
    orchestrator = TrafficOrchestrator(federation, seed=traffic_seed,
                                       scale=traffic_scale)
    orchestrator.setup()
    return federation, api, poller, orchestrator
