"""Rendering lint results for humans (text) and machines (``--json``).

The JSON document is the CI artifact: stable keys, violations sorted by
(path, line, col, rule), and a top-level ``ok`` so a gate can jq a
single boolean.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.devtools.lint.engine import LintResult
from repro.devtools.lint.rules import PROJECT_RULES, RULES
from repro.devtools.lint.violations import Violation


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    lines: List[str] = []
    by_path: Dict[str, List[Violation]] = {}
    items = list(result.errors) + list(result.violations)
    if show_suppressed:
        items += list(result.suppressed)
    for violation in items:
        by_path.setdefault(violation.path, []).append(violation)
    for path in sorted(by_path):
        for violation in sorted(by_path[path]):
            lines.append(violation.render())
            if violation.snippet:
                lines.append(f"    {violation.snippet}")
    counts = result.counts_by_rule()
    if counts:
        summary = ", ".join(f"{rule} x{n}" for rule, n in sorted(counts.items()))
        lines.append("")
        lines.append(f"{len(result.violations)} violation(s) "
                     f"[{summary}] in {result.files_checked} file(s)")
    elif result.errors:
        lines.append("")
        lines.append(f"{len(result.errors)} file(s) could not be parsed")
    else:
        suffix = f" ({len(result.suppressed)} suppressed by pragma)" \
            if result.suppressed else ""
        lines.append(f"clean: {result.files_checked} file(s), "
                     f"{len(result.rules_run)} rule(s){suffix}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def render_rule_list() -> str:
    lines = []
    merged = {**RULES, **PROJECT_RULES}
    for rule_id in sorted(merged):
        rule = merged[rule_id]
        family = "project" if rule_id in PROJECT_RULES else "file"
        lines.append(f"{rule_id}  {rule.name}  [{family}]")
        lines.append(f"       {rule.summary}")
        if rule.default_allow:
            allowed = ", ".join(rule.default_allow)
            lines.append(f"       always allowed in: {allowed}")
    return "\n".join(lines)
