"""Phase 1 of two-phase lint: the whole-program project index.

Per-file AST rules (RL001--RL008) are blind at the seams between
modules and processes -- a journal ``emit("sheduled", ...)`` typo, a
shard task closing over a live simulator, a WAL append sneaking into
worker-reachable code.  The project index is the shared substrate the
interprocedural rules (RL009--RL012) run against:

* **module resolution** -- repo-relative path -> dotted module name;
* **symbol table** -- every module-level function, class, and method;
* **call graph** -- caller -> resolved callee edges, with method calls
  resolved through ``self`` and constructor-typed local receivers;
* **string-constant propagation** -- module/class-level string and
  tuple-of-string constants plus parameter defaults, so an event kind
  passed as a name (``snapshot_to_journal``'s ``kind="metrics"``) or a
  membership test against ``RunJournal.SPAN_KINDS`` still resolves;
* **journal schema facts** -- every ``journal.emit(kind, ...)`` site
  with its keyword-key set, and every consumer match
  (``of_kind("k")`` / ``event.kind == "k"`` / ``kind in CONSTANT``);
* **process-boundary facts** -- every ``ProcessPoolExecutor``
  submit/map and ``iter_shard_results`` call with a function-local
  taint report over its arguments;
* **durability facts** -- every raw ``os.replace``/``os.fsync`` and
  ``CampaignLog``/``CheckpointStore`` construction, attributed to its
  enclosing function.

Facts are plain JSON-serializable dicts, extracted once per file and
**cached on the file's content hash** (``.reprolint-cache.json`` by
default) so repeated lint runs only re-extract edited files.  The
extraction is a pure function of one file's source, which is what makes
the cache sound: same bytes, same facts.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.devtools.lint.context import FileContext, names_in

#: Bump when the fact schema changes: stale cache entries are discarded
#: wholesale rather than misread.
FACTS_VERSION = 1

#: Constructors whose results are not picklable-by-construction and so
#: must never flow into a process-boundary call (matched on the last
#: one or two segments of the resolved call name).
UNPICKLABLE_CTORS = frozenset({
    "open", "tarfile.open", "socket.socket", "io.StringIO", "io.BytesIO",
    "RunJournal", "RunJournal.read", "Observability.create", "Tracer",
    "get_obs", "configure", "CampaignLog", "CheckpointStore",
    "ProcessPoolExecutor", "ThreadPoolExecutor", "Simulator",
    "quickstart_federation", "FederationBuilder",
})

#: Calls that produce live RNG *objects* (vs seeds).  Used by RL012's
#: boundary check: generators must not cross process boundaries.
RNG_PRODUCERS = frozenset({
    "default_rng", "derive_rng", "Generator", "PCG64", "PCG64DXSM",
    "Random", "rng",
})

#: Bare RNG constructors whose seed argument needs provenance (RL012).
RNG_CTORS = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.PCG64", "numpy.random.PCG64DXSM",
    "numpy.random.SeedSequence", "random.Random",
})

#: Hash-of-string derivations accepted as seed provenance: the label is
#: the domain, exactly as in ``derive_rng``'s ``_label_entropy``.
STRING_HASHES = frozenset({
    "zlib.crc32", "crc32", "_label_entropy", "stable_hash",
    "hashlib.sha256", "hashlib.md5", "hashlib.blake2b",
})

#: Durability APIs whose call sites RL011 confines to parent-side
#: modules (matched on the last one or two resolved-name segments).
DURABILITY_APIS = frozenset({
    "os.replace", "os.fsync", "CampaignLog", "CheckpointStore",
})


def module_name(rel_path: str) -> str:
    """Dotted module name for a repo-relative posix path."""
    parts = rel_path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def _tail_names(qual: str) -> Tuple[str, ...]:
    """The (last-segment, last-two-segments) match keys for a name."""
    parts = qual.split(".")
    keys = [parts[-1]]
    if len(parts) >= 2:
        keys.append(".".join(parts[-2:]))
    return tuple(keys)


def _matches(qual: Optional[str], vocabulary: frozenset) -> bool:
    if not qual:
        return False
    return any(key in vocabulary for key in _tail_names(qual))


def _const_strings(node: ast.AST) -> Optional[List[str]]:
    """The string payload of a constant expr: str -> [s], tuple/list of
    str -> list, anything else -> None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List)):
        items = []
        for element in node.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                items.append(element.value)
            else:
                return None
        return items
    return None


class _FactExtractor(ast.NodeVisitor):
    """One walk over a module's AST collecting every project-level fact."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.module = module_name(ctx.rel_path)
        self.facts: Dict[str, Any] = {
            "module": self.module,
            "functions": [],
            "classes": [],
            "calls": [],
            "emits": [],
            "consumes": [],
            "constants": {},
            "rng_sites": [],
            "derive_calls": [],
            "seed_params": {},
            "boundaries": [],
            "durability": [],
        }
        self._class_stack: List[str] = []
        self._func_stack: List[ast.AST] = []
        # Local names bound to module-level defs, for intra-module call
        # resolution: "run_shard" -> "repro.core.sharding.run_shard".
        self._local_defs: Dict[str, str] = {}
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self._local_defs[node.name] = f"{self.module}.{node.name}"
        # Per-function receiver typing: local name -> class qualname,
        # from `x = Class(...)` and `with Class(...) as x`.
        self._receiver_types: Dict[str, str] = {}

    # -- scope bookkeeping -------------------------------------------------

    def _qual(self, name: str) -> str:
        scope = [self.module] + self._class_stack + [name]
        return ".".join(scope)

    def _current_function(self) -> Optional[str]:
        if not self._func_stack:
            return None
        names = [self.module] + self._class_stack[:]
        # Nested functions keep their full lexical chain.
        return ".".join(names + [f.name for f in self._func_stack])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.facts["classes"].append({
            "name": self._qual(node.name),
            "line": node.lineno,
            "methods": sorted(
                child.name for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))),
        })
        self._class_stack.append(node.name)
        self._collect_constants(node.body, prefix=node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Module(self, node: ast.Module) -> None:
        self._collect_constants(node.body, prefix=None)
        self.generic_visit(node)

    def _collect_constants(self, body: Sequence[ast.stmt],
                           prefix: Optional[str]) -> None:
        for stmt in body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            strings = _const_strings(value)
            if strings is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    key = f"{prefix}.{target.id}" if prefix else target.id
                    self.facts["constants"][key] = strings

    def _handle_function(self, node) -> None:
        qual = self._qual(node.name)
        self.facts["functions"].append({
            "name": qual,
            "line": node.lineno,
            "params": [a.arg for a in node.args.args],
        })
        self._func_stack.append(node)
        saved = dict(self._receiver_types)
        if not self._class_stack and len(self._func_stack) == 1:
            self._receiver_types = {}
        self._type_receivers(node)
        self.generic_visit(node)
        self._analyze_function(node, qual)
        self._receiver_types = saved
        self._func_stack.pop()

    visit_FunctionDef = _handle_function
    visit_AsyncFunctionDef = _handle_function

    # -- receiver typing ---------------------------------------------------

    def _type_receivers(self, fn: ast.AST) -> None:
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                qual = self._resolve_call(stmt.value)
                if qual is None or not qual[:1].isalpha():
                    continue
                head = qual.split(".")[-1]
                if not head[:1].isupper():  # heuristics: classes are CapWords
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._receiver_types[target.id] = qual
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    if isinstance(item.context_expr, ast.Call) \
                            and isinstance(item.optional_vars, ast.Name):
                        qual = self._resolve_call(item.context_expr)
                        if qual and qual.split(".")[-1][:1].isupper():
                            self._receiver_types[item.optional_vars.id] = qual

    # -- call resolution ---------------------------------------------------

    def _resolve_call(self, call: ast.Call) -> Optional[str]:
        """Best-effort canonical name for a call's target."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self._local_defs:
                return self._local_defs[func.id]
            return self.ctx.imports.get(func.id, func.id)
        if isinstance(func, ast.Attribute):
            # self.method() -> enclosing class's method.
            if isinstance(func.value, ast.Name):
                head = func.value.id
                if head == "self" and self._class_stack:
                    return ".".join([self.module] + self._class_stack
                                    + [func.attr])
                if head in self._receiver_types:
                    return f"{self._receiver_types[head]}.{func.attr}"
            qual = self.ctx.qualname(func)
            if qual is not None:
                # Resolve a locally-defined class head: Foo.bar with
                # class Foo in this module -> module.Foo.bar.
                head, _, rest = qual.partition(".")
                if rest and head in self._local_defs:
                    return f"{self._local_defs[head]}.{rest}"
            return qual
        return None

    def visit_Call(self, node: ast.Call) -> None:
        qual = self._resolve_call(node)
        caller = self._current_function() or f"{self.module}.<module>"
        if qual is not None:
            int_args = [i for i, arg in enumerate(node.args)
                        if isinstance(arg, ast.Constant)
                        and isinstance(arg.value, int)
                        and not isinstance(arg.value, bool)]
            int_kwargs = sorted(
                kw.arg for kw in node.keywords
                if kw.arg is not None and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, int)
                and not isinstance(kw.value.value, bool))
            self.facts["calls"].append({
                "caller": caller,
                "callee": qual,
                "line": node.lineno,
                "col": node.col_offset,
                "int_args": int_args,
                "int_kwargs": int_kwargs,
            })
        self._record_emit(node)
        self._record_consume_call(node)
        self._record_rng(node, qual)
        self._record_durability(node, qual, caller)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._record_consume_compare(node)
        self.generic_visit(node)

    # -- journal schema facts ----------------------------------------------

    def _journal_receiver(self, func: ast.expr) -> bool:
        if not isinstance(func, ast.Attribute):
            return False
        return any("journal" in name.lower()
                   for name in names_in(func.value))

    def _journal_scope(self) -> bool:
        """Does the enclosing function (or module) talk about journals?

        Scopes the ``event.kind == "..."`` consumer pattern to code that
        actually iterates journal events, so WAL-record dispatch in
        ``checkpoint.fold_records`` (a different kind namespace) stays
        out of the event registry.
        """
        scope: ast.AST = self._func_stack[-1] if self._func_stack \
            else self.ctx.tree
        return any("journal" in name.lower() for name in names_in(scope))

    def _resolve_kind(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.Name):
            # A parameter whose default is a string constant: the only
            # call-site override in-tree is none, so the default is the
            # emitted kind (snapshot_to_journal's kind="metrics").
            for fn in reversed(self._func_stack):
                args = fn.args
                defaults = args.defaults
                offset = len(args.args) - len(defaults)
                for i, arg in enumerate(args.args):
                    if arg.arg == expr.id and i >= offset:
                        default = defaults[i - offset]
                        if isinstance(default, ast.Constant) \
                                and isinstance(default.value, str):
                            return default.value
                for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                    if arg.arg == expr.id and isinstance(default, ast.Constant) \
                            and isinstance(default.value, str):
                        return default.value
            strings = self.facts["constants"].get(expr.id)
            if strings and len(strings) == 1:
                return strings[0]
        if isinstance(expr, ast.Attribute):
            strings = self._constant_strings_for(expr)
            if strings and len(strings) == 1 \
                    and not strings[0].startswith("\x00"):
                return strings[0]
        return None

    def _constant_strings_for(self, expr: ast.expr) -> Optional[List[str]]:
        """Strings behind a Name/Attribute constant reference, if any."""
        if isinstance(expr, ast.Name):
            return self.facts["constants"].get(expr.id)
        if isinstance(expr, ast.Attribute):
            # Class-qualified: RunJournal.SPAN_KINDS -> "SPAN_KINDS" /
            # "RunJournal.SPAN_KINDS" looked up locally; cross-module
            # fallback happens at index level via the bare tail.
            tail = expr.attr
            qual = self.ctx.qualname(expr)
            for key in ((qual,) if qual else ()) + (tail,):
                hit = self.facts["constants"].get(key)
                if hit is not None:
                    return hit
            head = expr.value
            if isinstance(head, ast.Name):
                hit = self.facts["constants"].get(f"{head.id}.{tail}")
                if hit is not None:
                    return hit
            if tail.isupper():
                # CONSTANT-cased attribute on another module's class
                # (RunJournal.SPAN_KINDS): defer resolution to the
                # index, which sees every module's constants.
                return ["\x00" + tail]
            return None
        return None

    def _record_emit(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"
                and self._journal_receiver(func)):
            return
        kind_expr: Optional[ast.expr] = None
        if node.args:
            kind_expr = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg == "kind":
                    kind_expr = kw.value
        keys = sorted(kw.arg for kw in node.keywords
                      if kw.arg not in (None, "t", "volatile", "kind"))
        self.facts["emits"].append({
            "kind": self._resolve_kind(kind_expr) if kind_expr is not None
            else None,
            "keys": keys,
            "open": any(kw.arg is None for kw in node.keywords),
            "line": node.lineno,
            "col": node.col_offset,
            "snippet": self.ctx.snippet(node),
            "func": self._current_function(),
        })

    def _record_consume_call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "of_kind"
                and self._journal_receiver(func)):
            return
        if not node.args:
            return
        kind = self._resolve_kind(node.args[0])
        if kind is None:
            return  # dynamic lookup (repro obs dump --kind): not a contract
        self.facts["consumes"].append({
            "kind": kind,
            "via": "of_kind",
            "line": node.lineno,
            "col": node.col_offset,
            "snippet": self.ctx.snippet(node),
        })

    def _record_consume_compare(self, node: ast.Compare) -> None:
        left = node.left
        if not (isinstance(left, ast.Attribute) and left.attr == "kind"
                and len(node.ops) == 1):
            return
        if not self._journal_scope():
            return
        op = node.ops[0]
        comparator = node.comparators[0]
        via = None
        kinds: List[str] = []
        if isinstance(op, (ast.Eq, ast.NotEq)):
            kind = self._resolve_kind(comparator)
            if kind is not None:
                kinds, via = [kind], "kind-eq"
        elif isinstance(op, (ast.In, ast.NotIn)):
            strings = _const_strings(comparator)
            if strings is None:
                strings = self._constant_strings_for(comparator)
            if strings:
                kinds, via = strings, "kind-in"
        for kind in kinds:
            self.facts["consumes"].append({
                "kind": kind,
                "via": via,
                "line": node.lineno,
                "col": node.col_offset,
                "snippet": self.ctx.snippet(node),
            })

    # -- RNG provenance facts ----------------------------------------------

    def _seed_provenance(self, expr: Optional[ast.expr],
                         fn: Optional[ast.AST]) -> str:
        if expr is None:
            return "missing"
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, int) and not isinstance(expr.value, bool):
                return "int-literal"
            return "other"
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                qual = self._resolve_call(sub)
                if _matches(qual, STRING_HASHES):
                    return "derived-string"
                if qual and qual.split(".")[-1] in ("child", "rng",
                                                    "spawn", "entropy"):
                    return "derived"
            if isinstance(sub, ast.Attribute) and sub.attr == "seed":
                return "derived"
        if isinstance(expr, ast.Name) and fn is not None:
            params = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
            if expr.id in params:
                return f"param:{expr.id}"
        return "other"

    def _record_rng(self, node: ast.Call, qual: Optional[str]) -> None:
        if qual in RNG_CTORS or (qual is not None
                                 and _matches(qual, frozenset({"random.Random"}))):
            fn = self._func_stack[-1] if self._func_stack else None
            seed_expr = node.args[0] if node.args else None
            if seed_expr is None:
                for kw in node.keywords:
                    if kw.arg in ("seed", "bit_generator"):
                        seed_expr = kw.value
            provenance = self._seed_provenance(seed_expr, fn)
            self.facts["rng_sites"].append({
                "ctor": qual,
                "seed": provenance,
                "line": node.lineno,
                "col": node.col_offset,
                "snippet": self.ctx.snippet(node),
                "func": self._current_function(),
            })
            if provenance.startswith("param:"):
                func_qual = self._current_function()
                if func_qual is not None:
                    param = provenance.split(":", 1)[1]
                    fn_args = [a.arg for a in fn.args.args]
                    self.facts["seed_params"].setdefault(
                        func_qual, sorted(set(
                            self.facts["seed_params"].get(func_qual, [])
                        ) | {param}))
                    # record positional index for caller matching
                    self.facts["seed_params"][func_qual] = sorted(set(
                        self.facts["seed_params"][func_qual]) | {param})
                    _ = fn_args
        # derive_rng / factory.rng / factory.child: the label must be a
        # string-domain expression, never a bare number.
        label_expr: Optional[ast.expr] = None
        if qual is not None and qual.split(".")[-1] == "derive_rng":
            if len(node.args) >= 2:
                label_expr = node.args[1]
            for kw in node.keywords:
                if kw.arg == "label":
                    label_expr = kw.value
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("rng", "child") \
                and any("seed" in n.lower() or "factory" in n.lower()
                        for n in names_in(node.func.value)):
            if node.args:
                label_expr = node.args[0]
        if label_expr is not None:
            if isinstance(label_expr, ast.Constant) \
                    and not isinstance(label_expr.value, str):
                verdict = "nonstring"
            else:
                verdict = "ok"
            self.facts["derive_calls"].append({
                "label": verdict,
                "line": node.lineno,
                "col": node.col_offset,
                "snippet": self.ctx.snippet(node),
            })

    # -- durability facts ----------------------------------------------------

    def _record_durability(self, node: ast.Call, qual: Optional[str],
                           caller: str) -> None:
        if not _matches(qual, DURABILITY_APIS):
            return
        self.facts["durability"].append({
            "api": qual,
            "line": node.lineno,
            "col": node.col_offset,
            "snippet": self.ctx.snippet(node),
            "func": caller,
        })

    # -- per-function boundary taint -----------------------------------------

    def _analyze_function(self, fn: ast.AST, qual: str) -> None:
        boundaries: List[Tuple[ast.Call, str]] = []
        pools: Dict[str, str] = {}  # local name -> "process" | "thread"
        for name, cls in self._receiver_types.items():
            tail = cls.split(".")[-1]
            if tail == "ProcessPoolExecutor":
                pools[name] = "process"
            elif tail == "ThreadPoolExecutor":
                pools[name] = "thread"
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("submit", "map") \
                    and isinstance(func.value, ast.Name) \
                    and pools.get(func.value.id) == "process":
                boundaries.append((node, func.attr))
            else:
                resolved = self._resolve_call(node)
                if resolved is not None \
                        and resolved.split(".")[-1] == "iter_shard_results":
                    boundaries.append((node, "iter_shard_results"))
        if not boundaries:
            return
        tainted = self._taint(fn)
        nested = {child.name for child in ast.walk(fn)
                  if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                  and child is not fn}
        for call, kind in boundaries:
            record: Dict[str, Any] = {
                "kind": kind,
                "line": call.lineno,
                "col": call.col_offset,
                "snippet": self.ctx.snippet(call),
                "fn": None,
                "fn_issue": None,
                "tainted": [],
                "func": qual,
            }
            args = list(call.args)
            if kind in ("submit", "map") and args:
                target = args.pop(0)
                if isinstance(target, ast.Lambda):
                    record["fn_issue"] = "lambda"
                elif isinstance(target, ast.Name) and target.id in nested:
                    record["fn_issue"] = "nested-function"
                elif isinstance(target, ast.Name):
                    record["fn"] = self._local_defs.get(
                        target.id, self.ctx.imports.get(target.id, target.id))
                elif isinstance(target, ast.Attribute):
                    record["fn"] = self.ctx.qualname(target)
            payload = args + [kw.value for kw in call.keywords]
            for expr in payload:
                for category, sources in tainted.items():
                    hit = self._value_taint(expr, category, set(sources))
                    if hit is not None:
                        record["tainted"].append({
                            "expr": hit,
                            "category": category,
                            "line": expr.lineno,
                            "col": expr.col_offset,
                        })
            self.facts["boundaries"].append(record)

    def _value_taint(self, value: ast.expr, category: str,
                     tainted: set) -> Optional[str]:
        """Does this expression *evaluate to* (or carry, as a container
        element) a tainted value?

        Structural, not name-mention: containers, comprehensions,
        ternaries, ``or``-defaults, and subscripts of tainted containers
        propagate; call *arguments* do not (``int(rng.integers(...))``
        is a number, not an RNG).  Returns the offending name/callee for
        the report, or None.
        """
        vocabulary = UNPICKLABLE_CTORS if category == "unpicklable" \
            else RNG_PRODUCERS
        if isinstance(value, ast.Name):
            return value.id if value.id in tainted else None
        if isinstance(value, ast.Starred):
            return self._value_taint(value.value, category, tainted)
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                hit = self._value_taint(element, category, tainted)
                if hit is not None:
                    return hit
            return None
        if isinstance(value, ast.Dict):
            for element in value.values:
                if element is None:
                    continue
                hit = self._value_taint(element, category, tainted)
                if hit is not None:
                    return hit
            return None
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            hit = self._value_taint(value.elt, category, tainted)
            if hit is not None:
                return hit
            for comp in value.generators:
                hit = self._value_taint(comp.iter, category, tainted)
                if hit is not None:
                    return hit
            return None
        if isinstance(value, ast.DictComp):
            return self._value_taint(value.value, category, tainted)
        if isinstance(value, ast.IfExp):
            return (self._value_taint(value.body, category, tainted)
                    or self._value_taint(value.orelse, category, tainted))
        if isinstance(value, ast.BoolOp):  # e.g. `rng or default_rng(0)`
            for element in value.values:
                hit = self._value_taint(element, category, tainted)
                if hit is not None:
                    return hit
            return None
        if isinstance(value, ast.Call):
            qual = self._resolve_call(value)
            if qual and any(k in vocabulary for k in _tail_names(qual)):
                return qual
            return None
        if isinstance(value, ast.Subscript):
            # An element of a tainted container is tainted.
            return self._value_taint(value.value, category, tainted)
        if isinstance(value, ast.Await):
            return self._value_taint(value.value, category, tainted)
        return None

    @staticmethod
    def _target_names(target: ast.expr) -> List[str]:
        """Names a binding actually taints: plain targets and, for
        subscript/attribute stores, the *container* -- never the index
        expression (``commits[site] = x`` taints ``commits``, not
        ``site``)."""
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: List[str] = []
            for element in target.elts:
                out.extend(_FactExtractor._target_names(element))
            return out
        if isinstance(target, ast.Starred):
            return _FactExtractor._target_names(target.value)
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            return _FactExtractor._target_names(target.value)
        return []

    def _taint(self, fn: ast.AST) -> Dict[str, List[str]]:
        """Names bound (transitively) to unpicklable or RNG values."""
        tainted: Dict[str, set] = {"unpicklable": set(), "rng": set()}
        assigns = [stmt for stmt in ast.walk(fn)
                   if isinstance(stmt, (ast.Assign, ast.AnnAssign))
                   and getattr(stmt, "value", None) is not None]
        with_items = [(item.optional_vars, item.context_expr)
                      for stmt in ast.walk(fn) if isinstance(stmt, ast.With)
                      for item in stmt.items if item.optional_vars is not None]
        bindings = [(s.targets if isinstance(s, ast.Assign) else [s.target],
                     s.value) for s in assigns]
        bindings += [([t], v) for t, v in with_items]
        changed = True
        while changed:
            changed = False
            for targets, value in bindings:
                for category in tainted:
                    if self._value_taint(value, category,
                                         tainted[category]) is None:
                        continue
                    for target in targets:
                        for name in self._target_names(target):
                            if name not in tainted[category]:
                                tainted[category].add(name)
                                changed = True
        return {key: sorted(values) for key, values in tainted.items()}


def extract_facts(ctx: FileContext) -> Dict[str, Any]:
    """Pure fact extraction for one parsed file."""
    extractor = _FactExtractor(ctx)
    extractor.visit(ctx.tree)
    return extractor.facts


def content_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class IndexCache:
    """Content-hash-keyed cache of per-file facts (JSON on disk)."""

    def __init__(self, path: Optional[Path]):
        self.path = path
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = None
            if isinstance(data, dict) \
                    and data.get("version") == FACTS_VERSION \
                    and isinstance(data.get("files"), dict):
                self.entries = data["files"]

    def get(self, rel_path: str, sha: str) -> Optional[Dict[str, Any]]:
        entry = self.entries.get(rel_path)
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            return entry.get("facts")
        self.misses += 1
        return None

    def put(self, rel_path: str, sha: str, facts: Dict[str, Any]) -> None:
        self.entries[rel_path] = {"sha": sha, "facts": facts}

    def save(self, rel_paths: Sequence[str]) -> None:
        """Persist entries for the linted set (atomic, sorted keys)."""
        if self.path is None:
            return
        payload = {
            "version": FACTS_VERSION,
            "files": {rel: self.entries[rel] for rel in sorted(rel_paths)
                      if rel in self.entries},
        }
        try:
            from repro.util.atomio import atomic_write_text
            atomic_write_text(self.path, json.dumps(
                payload, indent=None, sort_keys=True, separators=(",", ":")))
        except OSError:
            pass  # cache is best-effort; lint results never depend on it


class ProjectIndex:
    """The merged whole-program view phase-2 rules run against."""

    def __init__(self):
        self.files: Dict[str, Dict[str, Any]] = {}  # rel_path -> facts
        self.defs: Dict[str, Tuple[str, int]] = {}  # qualname -> (path, line)
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.edges: Dict[str, List[str]] = {}
        self.constants: Dict[str, List[str]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[FileContext],
              cache_path: Optional[Path] = None) -> "ProjectIndex":
        index = cls()
        cache = IndexCache(cache_path)
        rel_paths = []
        for ctx in contexts:
            sha = content_sha(ctx.source)
            facts = cache.get(ctx.rel_path, sha)
            if facts is None:
                facts = extract_facts(ctx)
                cache.put(ctx.rel_path, sha, facts)
            index.files[ctx.rel_path] = facts
            rel_paths.append(ctx.rel_path)
        index.cache_hits = cache.hits
        index.cache_misses = cache.misses
        cache.save(rel_paths)
        index._link()
        return index

    def _link(self) -> None:
        for rel_path, facts in self.files.items():
            for fn in facts["functions"]:
                self.defs[fn["name"]] = (rel_path, fn["line"])
            for cls_rec in facts["classes"]:
                self.classes[cls_rec["name"]] = cls_rec
                self.defs.setdefault(cls_rec["name"],
                                     (rel_path, cls_rec["line"]))
            for key, strings in facts["constants"].items():
                module = facts["module"]
                self.constants[f"{module}.{key}"] = strings
                self.constants.setdefault(key.split(".")[-1], strings)
        edges: Dict[str, set] = {}
        for facts in self.files.values():
            for call in facts["calls"]:
                callee = self._resolve_def(call["callee"])
                if callee is None:
                    continue
                edges.setdefault(call["caller"], set()).add(callee)
        self.edges = {caller: sorted(callees)
                      for caller, callees in edges.items()}

    def _resolve_def(self, callee: Optional[str]) -> Optional[str]:
        """Map a recorded callee string onto a known definition."""
        if callee is None:
            return None
        if callee in self.defs:
            if callee in self.classes:
                init = f"{callee}.__init__"
                return init if init in self.defs else callee
            return callee
        # Method on an imported class: repro.x.Class.method.
        head, _, method = callee.rpartition(".")
        if head in self.classes and f"{head}.{method}" not in self.defs:
            return None
        return None

    # -- queries -----------------------------------------------------------

    def reachable_from(self, entry: str) -> List[str]:
        """Every definition reachable from ``entry`` via resolved edges."""
        seen = {entry}
        frontier = [entry]
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return sorted(seen)

    def call_path(self, entry: str, target: str) -> Optional[List[str]]:
        """One shortest entry -> target path, or None."""
        from collections import deque
        parents: Dict[str, Optional[str]] = {entry: None}
        queue = deque([entry])
        while queue:
            current = queue.popleft()
            if current == target:
                path = [current]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            for callee in self.edges.get(current, ()):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return None

    def emits(self) -> List[Dict[str, Any]]:
        out = []
        for rel_path in sorted(self.files):
            for emit in self.files[rel_path]["emits"]:
                out.append({**emit, "path": rel_path})
        return out

    def consumes(self) -> List[Dict[str, Any]]:
        out = []
        for rel_path in sorted(self.files):
            for consume in self.files[rel_path]["consumes"]:
                kind = consume["kind"]
                if kind.startswith("\x00"):  # deferred constant reference
                    strings = self.constants.get(kind[1:])
                    if not strings:
                        continue
                    for resolved in strings:
                        out.append({**consume, "kind": resolved,
                                    "path": rel_path})
                    continue
                out.append({**consume, "path": rel_path})
        return out

    def boundaries(self) -> List[Dict[str, Any]]:
        out = []
        for rel_path in sorted(self.files):
            for boundary in self.files[rel_path]["boundaries"]:
                out.append({**boundary, "path": rel_path})
        return out

    def durability_sites(self) -> List[Dict[str, Any]]:
        out = []
        for rel_path in sorted(self.files):
            for site in self.files[rel_path]["durability"]:
                out.append({**site, "path": rel_path})
        return out

    def rng_sites(self) -> List[Dict[str, Any]]:
        out = []
        for rel_path in sorted(self.files):
            facts = self.files[rel_path]
            for site in facts["rng_sites"]:
                out.append({**site, "path": rel_path})
        return out

    def location_of(self, qualname: str) -> Tuple[str, int]:
        return self.defs.get(qualname, ("<unknown>", 1))

    # -- the machine-readable dump (`repro lint --graph`) -------------------

    def to_graph_dict(self) -> Dict[str, Any]:
        from repro.devtools.lint.events import event_registry
        return {
            "facts_version": FACTS_VERSION,
            "files": sorted(self.files),
            "modules": sorted({facts["module"]
                               for facts in self.files.values()}),
            "definitions": {name: {"path": path, "line": line}
                            for name, (path, line) in sorted(self.defs.items())},
            "call_graph": {caller: callees
                           for caller, callees in sorted(self.edges.items())},
            "events": event_registry(self),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }
