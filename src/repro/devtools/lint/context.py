"""Per-file analysis context shared by every rule.

One :class:`FileContext` is built per linted module: parsed AST, source
lines (for snippets), pragma maps, and an import-alias table so rules
can resolve a call like ``t.monotonic()`` (under ``import time as t``)
or ``now()`` (under ``from time import time as now``) to the canonical
dotted name ``time.monotonic`` / ``time.time`` before matching.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.lint.pragmas import parse_pragma_sites, parse_pragmas


class FileContext:
    """Everything a rule needs to know about one module."""

    def __init__(self, path: Path, rel_path: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self.line_pragmas, self.file_pragmas = parse_pragmas(source)
        self.pragma_sites = parse_pragma_sites(source)
        self.imports: Dict[str, str] = _import_table(tree)

    # -- source access ---------------------------------------------------

    def snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- name resolution -------------------------------------------------

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, alias-resolved.

        ``Name`` heads are looked up in the module's import table, so
        with ``import numpy as np`` the expression ``np.random.default_rng``
        resolves to ``numpy.random.default_rng``.  Returns ``None`` for
        expressions with a non-name head (calls, subscripts, ...), whose
        value a static pass cannot track.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.imports.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def call_qualname(self, call: ast.Call) -> Optional[str]:
        return self.qualname(call.func)


def _import_table(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> canonical dotted name for every import."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    table[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: not a stdlib/third-party alias
                continue
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = (
                    f"{module}.{alias.name}" if module else alias.name
                )
    return table


def names_in(node: ast.AST) -> Set[str]:
    """Every bare identifier mentioned anywhere in an expression."""
    found: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            found.add(child.id)
        elif isinstance(child, ast.Attribute):
            found.add(child.attr)
    return found


def load_context(path: Path, rel_path: str) -> Tuple[Optional[FileContext],
                                                     Optional[str]]:
    """Parse one file; returns (context, error-message)."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, f"unreadable: {exc}"
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, f"syntax error: {exc.msg} (line {exc.lineno})"
    return FileContext(path, rel_path, source, tree), None
