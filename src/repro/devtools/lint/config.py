"""reprolint configuration from ``[tool.reprolint]`` in pyproject.toml.

Everything has a working default so the linter runs on a bare checkout
(and on Pythons without :mod:`tomllib`, where the config file is simply
skipped).  Layout::

    [tool.reprolint]
    paths = ["src/repro"]          # default lint targets for `repro lint`
    exclude = ["*/lint_fixtures/*"]
    select = []                    # non-empty = only these rule ids
    ignore = []                    # always-skipped rule ids

    [tool.reprolint.rules.RL001]
    allow = ["repro/obs/clock.py"]   # path suffixes the rule skips
    # ...plus arbitrary rule-specific keys (e.g. RL007 extra-causes)

CLI ``--select``/``--ignore`` override the file-level lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple


@dataclass
class LintConfig:
    root: Path = field(default_factory=Path.cwd)
    paths: List[str] = field(default_factory=lambda: ["src/repro"])
    exclude: List[str] = field(default_factory=list)
    select: List[str] = field(default_factory=list)
    ignore: List[str] = field(default_factory=list)
    rule_options: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Per-file fact cache for the project index (content-hash keyed).
    #: Relative paths resolve against ``root``; ``use_cache=False``
    #: (CLI ``--no-cache``) forces cold extraction.
    cache_path: str = ".reprolint-cache.json"
    use_cache: bool = True

    def options_for(self, rule_id: str) -> Dict[str, object]:
        return self.rule_options.get(rule_id, {})

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def resolved_cache_path(self) -> Optional[Path]:
        if not self.use_cache or not self.cache_path:
            return None
        path = Path(self.cache_path)
        return path if path.is_absolute() else self.root / path


def _read_pyproject(path: Path) -> Optional[Dict[str, object]]:
    try:
        import tomllib
    except ImportError:  # Python < 3.11: run with built-in defaults
        return None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except (OSError, ValueError):
        return None


def find_pyproject(start: Path) -> Optional[Path]:
    for candidate in [start, *start.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _str_list(raw: object) -> List[str]:
    if isinstance(raw, str):
        return [raw]
    if isinstance(raw, (list, tuple)):
        return [str(item) for item in raw]
    return []


def load_config(explicit: Optional[Path] = None,
                start: Optional[Path] = None) -> LintConfig:
    """Load config from an explicit file or the nearest pyproject.toml."""
    pyproject = explicit or find_pyproject(start or Path.cwd())
    if pyproject is None:
        return LintConfig()
    data = _read_pyproject(pyproject)
    if data is None:
        return LintConfig(root=pyproject.parent)
    tool = data.get("tool", {})
    section = tool.get("reprolint", {}) if isinstance(tool, dict) else {}
    if not isinstance(section, dict):
        section = {}
    rules = section.get("rules", {})
    rule_options: Dict[str, Dict[str, object]] = {}
    if isinstance(rules, dict):
        for rule_id, options in rules.items():
            if isinstance(options, dict):
                rule_options[str(rule_id).upper()] = dict(options)
    config = LintConfig(
        root=pyproject.parent,
        exclude=_str_list(section.get("exclude")),
        select=[s.upper() for s in _str_list(section.get("select"))],
        ignore=[s.upper() for s in _str_list(section.get("ignore"))],
        rule_options=rule_options,
    )
    paths = _str_list(section.get("paths"))
    if paths:
        config.paths = paths
    cache_path = section.get("cache_path")
    if isinstance(cache_path, str):
        config.cache_path = cache_path
    return config


def apply_overrides(config: LintConfig,
                    select: Tuple[str, ...] = (),
                    ignore: Tuple[str, ...] = ()) -> LintConfig:
    if select:
        config.select = [s.upper() for s in select]
    if ignore:
        config.ignore = [s.upper() for s in ignore]
    return config
