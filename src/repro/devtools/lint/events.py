"""The journal event registry: the machine-checked schema contract.

Built from the :class:`~repro.devtools.lint.project.ProjectIndex`, the
registry pairs every ``journal.emit(kind, ...)`` site in the tree with
every consumer match (``of_kind("k")``, ``event.kind == "k"``,
``event.kind in KINDS``).  It is the single source of truth behind three
surfaces:

* **RL009** flags contract breaks (typos, orphan consumers, key drift);
* ``repro lint --graph`` embeds the registry in its JSON dump;
* ``EVENTS.md`` is the rendered, committed form -- CI regenerates it and
  fails on drift, so the documented schema can never trail the code.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List

_HEADER = """\
# Journal event registry

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with:  repro lint --events-md EVENTS.md
     CI fails if this file is stale vs. the source tree. -->

Every event kind written to the canonical `RunJournal`, extracted from
the source tree by reprolint's whole-program index (RL009 enforces the
contract).  `keys` is the union of data keys over all emit sites of the
kind; *open* marks sites that splat a dynamic mapping (`**row`), whose
keys the static pass cannot enumerate.  `observe-only` kinds are
emitted for humans and dashboards and have no in-tree consumer by
design (declared in `[tool.reprolint.rules.RL009] observe_only`).
"""


def event_registry(index) -> List[Dict[str, Any]]:
    """One record per event kind, sorted by kind name."""
    kinds: Dict[str, Dict[str, Any]] = {}

    def entry(kind: str) -> Dict[str, Any]:
        return kinds.setdefault(kind, {
            "kind": kind,
            "emit_sites": [],
            "consumers": [],
            "keys": [],
            "open": False,
        })

    for emit in index.emits():
        kind = emit["kind"]
        if kind is None:
            continue
        record = entry(kind)
        record["emit_sites"].append({
            "path": emit["path"],
            "line": emit["line"],
            "keys": emit["keys"],
            "open": emit["open"],
            "func": emit.get("func"),
        })
        record["keys"] = sorted(set(record["keys"]) | set(emit["keys"]))
        record["open"] = record["open"] or emit["open"]
    for consume in index.consumes():
        record = entry(consume["kind"])
        record["consumers"].append({
            "path": consume["path"],
            "line": consume["line"],
            "via": consume["via"],
        })
    out = []
    for kind in sorted(kinds):
        record = kinds[kind]
        record["emit_sites"].sort(key=lambda s: (s["path"], s["line"]))
        record["consumers"].sort(key=lambda s: (s["path"], s["line"]))
        out.append(record)
    return out


def render_events_md(index, observe_only: List[str]) -> str:
    """The committed, human-readable form of the registry."""
    observe = set(observe_only)
    lines = [_HEADER]
    registry = event_registry(index)
    emitted = [r for r in registry if r["emit_sites"]]
    lines.append(f"{len(emitted)} event kinds.\n")
    lines.append("| kind | keys | emit sites | consumers | status |")
    lines.append("|------|------|-----------|-----------|--------|")
    for record in emitted:
        kind = record["kind"]
        keys = ", ".join(f"`{k}`" for k in record["keys"]) or "—"
        if record["open"]:
            keys += " *(+open)*"
        emits = "<br>".join(f"`{s['path']}:{s['line']}`"
                            for s in record["emit_sites"])
        consumers = "<br>".join(
            f"`{s['path']}:{s['line']}` ({s['via']})"
            for s in record["consumers"]) or "—"
        if record["consumers"]:
            status = "consumed"
        elif kind in observe:
            status = "observe-only"
        else:
            status = "**unconsumed**"
        lines.append(f"| `{kind}` | {keys} | {emits} | {consumers} "
                     f"| {status} |")
    orphans = [r for r in registry
               if r["consumers"] and not r["emit_sites"]]
    if orphans:
        lines.append("\n## Consumed but never emitted\n")
        for record in orphans:
            sites = ", ".join(f"`{s['path']}:{s['line']}`"
                              for s in record["consumers"])
            lines.append(f"- `{record['kind']}` — {sites}")
    lines.append("")
    return "\n".join(lines)


def events_md_stale(index, observe_only: List[str],
                    path: Path) -> bool:
    """True when the committed EVENTS.md no longer matches the tree."""
    expected = render_events_md(index, observe_only)
    try:
        current = path.read_text(encoding="utf-8")
    except OSError:
        return True
    return current != expected
