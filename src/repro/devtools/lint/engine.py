"""The lint engine: discover files, run rules, apply suppression.

Two phases:

1. **parse + index** -- every target file is parsed once into a
   :class:`FileContext`; the contexts feed both the per-file rules and
   the :class:`~repro.devtools.lint.project.ProjectIndex`, whose
   per-file fact extraction is cached on content hashes
   (``.reprolint-cache.json``) so warm runs only re-extract edits.
2. **rules** -- per-file rules (RL000--RL008) visit each AST; project
   rules (RL009--RL012) run once against the merged index.

Rules are pure functions of their input (AST or index); the engine owns
everything contextual -- file discovery, per-rule path allowlists,
``select``/``ignore``, pragma suppression -- so a rule's fixture tests
never depend on configuration.  Project-rule violations are mapped back
to their file's pragma table, so ``# reprolint: disable=RL009 -- why``
works identically across both families.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.context import FileContext, load_context
from repro.devtools.lint.pragmas import suppresses
from repro.devtools.lint.project import ProjectIndex
from repro.devtools.lint.rules import PROJECT_RULES, RULES
from repro.devtools.lint.violations import PARSE_ERROR, Violation


@dataclass
class LintResult:
    """Outcome of one lint run over a set of files."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    errors: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    index_stats: Dict[str, int] = field(default_factory=dict)
    #: The phase-1 project index (not serialized; backs ``--graph`` /
    #: ``--events-md`` without a second pass).
    index: Optional[ProjectIndex] = field(default=None, repr=False,
                                          compare=False)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "counts": self.counts_by_rule(),
            "index": dict(self.index_stats),
            "violations": [v.to_dict() for v in self.violations],
            "suppressed": [v.to_dict() for v in self.suppressed],
            "errors": [v.to_dict() for v in self.errors],
        }


def discover_files(paths: Sequence[Path], root: Path,
                   exclude: Sequence[str]) -> List[Tuple[Path, str]]:
    """(absolute path, repo-relative posix path) for every target file."""
    seen = {}
    for target in paths:
        target = target if target.is_absolute() else root / target
        if target.is_dir():
            candidates: Iterable[Path] = sorted(target.rglob("*.py"))
        else:
            candidates = [target]
        for candidate in candidates:
            try:
                rel = candidate.resolve().relative_to(root.resolve())
                rel_path = rel.as_posix()
            except ValueError:
                rel_path = candidate.as_posix()
            if "__pycache__" in rel_path:
                continue
            if any(fnmatch.fnmatch(rel_path, pattern)
                   or fnmatch.fnmatch("/" + rel_path, pattern)
                   for pattern in exclude):
                continue
            seen[rel_path] = candidate
    return [(path, rel) for rel, path in sorted(seen.items())]


def _route(violation: Violation, rule_id: str, suppressible: bool,
           ctx: Optional[FileContext], result: LintResult) -> None:
    """File a violation as live or pragma-suppressed."""
    if suppressible and ctx is not None:
        line_rules = ctx.line_pragmas.get(violation.line, set())
        if suppresses(ctx.file_pragmas, rule_id) \
                or suppresses(line_rules, rule_id):
            result.suppressed.append(
                Violation(**{**violation.to_dict(), "suppressed": True}))
            return
    result.violations.append(violation)


def lint_file(ctx: FileContext, config: LintConfig,
              result: LintResult) -> None:
    for rule_id in sorted(RULES):
        if not config.rule_enabled(rule_id):
            continue
        rule_cls = RULES[rule_id]
        rule = rule_cls(ctx, config.options_for(rule_id))
        if not rule.applies_to(ctx.rel_path):
            continue
        for violation in rule.run():
            _route(violation, rule_id, rule_cls.suppressible, ctx, result)


def lint_project(index: ProjectIndex, contexts: Dict[str, FileContext],
                 config: LintConfig, result: LintResult) -> None:
    """Phase 2: run every enabled project rule against the index."""
    for rule_id in sorted(PROJECT_RULES):
        if not config.rule_enabled(rule_id):
            continue
        rule_cls = PROJECT_RULES[rule_id]
        rule = rule_cls(index, config.options_for(rule_id))
        for violation in rule.run():
            if not rule.applies_to(violation.path):
                continue
            _route(violation, rule_id, True,
                   contexts.get(violation.path), result)


def run_lint(paths: Optional[Sequence[Path]] = None,
             config: Optional[LintConfig] = None) -> LintResult:
    """Lint ``paths`` (default: the configured targets) under ``config``."""
    config = config or LintConfig()
    targets = [Path(p) for p in paths] if paths \
        else [Path(p) for p in config.paths]
    result = LintResult(
        rules_run=[r for r in sorted(set(RULES) | set(PROJECT_RULES))
                   if config.rule_enabled(r)])

    # Phase 1: parse everything, build the whole-program index.
    contexts: Dict[str, FileContext] = {}
    for path, rel_path in discover_files(targets, config.root,
                                         config.exclude):
        ctx, error = load_context(path, rel_path)
        if ctx is None:
            result.errors.append(Violation(
                path=rel_path, line=1, col=0, rule=PARSE_ERROR,
                message=error or "unreadable"))
            continue
        result.files_checked += 1
        contexts[rel_path] = ctx
    index = ProjectIndex.build(list(contexts.values()),
                               cache_path=config.resolved_cache_path())
    result.index = index
    result.index_stats = {
        "files": len(index.files),
        "definitions": len(index.defs),
        "call_edges": sum(len(v) for v in index.edges.values()),
        "cache_hits": index.cache_hits,
        "cache_misses": index.cache_misses,
    }

    # Phase 2: per-file rules, then project rules over the index.
    for ctx in contexts.values():
        lint_file(ctx, config, result)
    lint_project(index, contexts, config, result)

    result.violations.sort()
    result.suppressed.sort()
    return result
