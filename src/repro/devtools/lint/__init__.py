"""reprolint -- the repo-specific invariant checker behind ``repro lint``.

Off-the-shelf linters know nothing about the three contracts this
reproduction actually lives or dies by:

* **determinism** -- a seeded run must be byte-identical on rerun
  (the RunJournal contract, PR 3);
* **sim-time discipline** -- every delay is spent as simulated time,
  never wall time;
* **ledger hygiene** -- every dropped frame carries a cause from the
  central taxonomy (the frame-conservation ledger, PR 4).

reprolint enforces them statically with seven AST rules (RL001-RL007;
``repro lint --list-rules``), a line/file pragma escape hatch
(``# reprolint: disable=RLxxx -- reason``), and per-rule configuration
in ``[tool.reprolint]``.  See DESIGN.md section 9 for the invariant
catalogue and the incidents each rule is distilled from.
"""

from __future__ import annotations

from repro.devtools.lint.config import (LintConfig, apply_overrides,
                                        load_config)
from repro.devtools.lint.engine import LintResult, run_lint
from repro.devtools.lint.report import (render_json, render_rule_list,
                                        render_text)
from repro.devtools.lint.rules import RULES, Rule, register
from repro.devtools.lint.violations import PARSE_ERROR, Violation

__all__ = [
    "LintConfig", "LintResult", "PARSE_ERROR", "RULES", "Rule", "Violation",
    "apply_overrides", "load_config", "register", "render_json",
    "render_rule_list", "render_text", "run_lint",
]
