"""reprolint -- the repo-specific invariant checker behind ``repro lint``.

Off-the-shelf linters know nothing about the three contracts this
reproduction actually lives or dies by:

* **determinism** -- a seeded run must be byte-identical on rerun
  (the RunJournal contract, PR 3);
* **sim-time discipline** -- every delay is spent as simulated time,
  never wall time;
* **ledger hygiene** -- every dropped frame carries a cause from the
  central taxonomy (the frame-conservation ledger, PR 4).

reprolint enforces them statically in two phases: per-file AST rules
(RL000-RL008) over each module, then whole-program rules (RL009-RL012:
journal event-schema contracts, process-boundary picklability,
parent-only durability, seed-provenance taint) over a cached project
index (``lint/project.py``) of symbols, call edges, and propagated
string constants.  A line/file pragma escape hatch
(``# reprolint: disable=RLxxx -- reason``; reasons are mandatory,
RL000) and per-rule configuration in ``[tool.reprolint]`` complete the
surface.  See DESIGN.md sections 9 and 14 for the invariant catalogue
and the incidents each rule is distilled from, and ``EVENTS.md`` for
the generated journal event registry.
"""

from __future__ import annotations

from repro.devtools.lint.config import (LintConfig, apply_overrides,
                                        load_config)
from repro.devtools.lint.engine import LintResult, run_lint
from repro.devtools.lint.events import (event_registry, events_md_stale,
                                        render_events_md)
from repro.devtools.lint.project import ProjectIndex
from repro.devtools.lint.report import (render_json, render_rule_list,
                                        render_text)
from repro.devtools.lint.rules import (PROJECT_RULES, RULES, ProjectRule,
                                       Rule, register, register_project)
from repro.devtools.lint.sarif import render_sarif
from repro.devtools.lint.violations import PARSE_ERROR, Violation

__all__ = [
    "LintConfig", "LintResult", "PARSE_ERROR", "PROJECT_RULES",
    "ProjectIndex", "ProjectRule", "RULES", "Rule", "Violation",
    "apply_overrides", "event_registry", "events_md_stale", "load_config",
    "register", "register_project", "render_events_md", "render_json",
    "render_rule_list", "render_sarif", "render_text", "run_lint",
]
