"""SARIF 2.1.0 output for GitHub code scanning.

One run, one driver (``reprolint``), one rule descriptor per registered
rule, one result per live violation.  Parse errors map to SARIF
``error``-level results under the ``E000`` rule so a broken file shows
up in the code-scanning UI rather than silently shrinking coverage.
"""

from __future__ import annotations

from typing import Any, Dict, List

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _rule_descriptors() -> List[Dict[str, Any]]:
    from repro.devtools.lint.rules import PROJECT_RULES, RULES
    descriptors = []
    for rule_id in sorted(set(RULES) | set(PROJECT_RULES)):
        rule_cls = RULES.get(rule_id) or PROJECT_RULES[rule_id]
        descriptors.append({
            "id": rule_id,
            "name": rule_cls.name or rule_id,
            "shortDescription": {"text": rule_cls.summary or rule_id},
            "defaultConfiguration": {"level": "error"},
        })
    descriptors.append({
        "id": "E000",
        "name": "parse-error",
        "shortDescription": {"text": "file could not be parsed"},
        "defaultConfiguration": {"level": "error"},
    })
    return descriptors


def _result(violation, level: str) -> Dict[str, Any]:
    message = violation.message
    if violation.snippet:
        message = f"{message} [{violation.snippet}]"
    return {
        "ruleId": violation.rule,
        "level": level,
        "message": {"text": message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": violation.path.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": max(1, violation.line),
                    "startColumn": max(1, violation.col + 1),
                },
            },
        }],
    }


def render_sarif(result, tool_version: str = "2.0") -> Dict[str, Any]:
    """The SARIF log document for one :class:`LintResult`."""
    results = [_result(v, "error") for v in result.violations]
    results += [_result(e, "error") for e in result.errors]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri":
                        "https://example.invalid/repro/reprolint",
                    "version": tool_version,
                    "rules": _rule_descriptors(),
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
