"""``# reprolint: disable=RLxxx`` pragma parsing.

Two scopes:

* **line** -- a pragma in a trailing comment suppresses the named rules
  for violations reported on that physical line::

      started = time.perf_counter()  # reprolint: disable=RL001 -- volatile stage timing

* **file** -- a pragma comment on a line of its own, using
  ``disable-file=``, suppresses the named rules for the whole module::

      # reprolint: disable-file=RL006 -- fixture exercises broad excepts

Rule lists are comma-separated; ``all`` names every rule.  Anything
after ``--`` is the human-readable justification.  Reasons are
**mandatory**: RL000 (pragma hygiene) reports every pragma whose reason
is missing or empty, so a suppression can never land without saying why.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)(?:\s*--\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True)
class PragmaSite:
    """One pragma comment: where it sits, what it silences, and why."""

    line: int
    scope: str  # "disable" | "disable-file"
    rules: Tuple[str, ...]
    reason: Optional[str]  # None = no `--` clause at all

    @property
    def has_reason(self) -> bool:
        return bool(self.reason and self.reason.strip())


def _rule_set(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def parse_pragma_sites(source: str) -> List[PragmaSite]:
    """Every pragma comment in a module, in line order.

    Uses the tokenizer rather than a line regex so pragma-looking text
    inside string literals (e.g. this linter's own tests) is ignored.
    Tokenization errors fall back to an empty list -- the engine reports
    the syntax error separately.
    """
    sites: List[PragmaSite] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if not match:
                continue
            sites.append(PragmaSite(
                line=token.start[0],
                scope=match.group("scope"),
                rules=tuple(sorted(_rule_set(match.group("rules")))),
                reason=match.group("reason"),
            ))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return sites


def parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract (line -> rules, file-wide rules) from a module's source."""
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for site in parse_pragma_sites(source):
        if site.scope == "disable-file":
            file_wide |= set(site.rules)
        else:
            by_line.setdefault(site.line, set()).update(site.rules)
    return by_line, file_wide


def suppresses(rules: Set[str], rule_id: str) -> bool:
    return "ALL" in rules or rule_id.upper() in rules
