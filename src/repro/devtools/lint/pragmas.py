"""``# reprolint: disable=RLxxx`` pragma parsing.

Two scopes:

* **line** -- a pragma in a trailing comment suppresses the named rules
  for violations reported on that physical line::

      started = time.perf_counter()  # reprolint: disable=RL001 -- volatile stage timing

* **file** -- a pragma comment on a line of its own, using
  ``disable-file=``, suppresses the named rules for the whole module::

      # reprolint: disable-file=RL006

Rule lists are comma-separated; ``all`` names every rule.  Anything
after ``--`` is a human-readable justification and is ignored by the
parser (but encouraged: a pragma with no reason invites cargo-culting).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Set, Tuple

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)(?:\s*--.*)?$"
)


def _rule_set(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract (line -> rules, file-wide rules) from a module's source.

    Uses the tokenizer rather than a line regex so pragma-looking text
    inside string literals (e.g. this linter's own tests) is ignored.
    Tokenization errors fall back to empty maps -- the engine reports
    the syntax error separately.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if not match:
                continue
            rules = _rule_set(match.group("rules"))
            if match.group("scope") == "disable-file":
                file_wide |= rules
            else:
                by_line.setdefault(token.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, set()
    return by_line, file_wide


def suppresses(rules: Set[str], rule_id: str) -> bool:
    return "ALL" in rules or rule_id.upper() in rules
