"""The lint result model.

A :class:`Violation` is one rule firing at one source location.  The
engine keeps *suppressed* violations (those silenced by a
``# reprolint: disable=RLxxx`` pragma) in its result so reports can
show what the pragmas are hiding; only unsuppressed violations count
toward the exit code.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Violation:
    """One rule firing at one location (path is repo-relative, posix)."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""
    suppressed: bool = False

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def render(self) -> str:
        flag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule}{flag} {self.message}"


# Pseudo-rule for files the engine cannot parse at all.  A syntax error
# is not a policy violation -- the CLI maps it to exit code 2 (usage /
# environment error) rather than 1 (violations found).
PARSE_ERROR = "E000"
