"""RL004 -- seeded-RNG draws guarded by cache state.

The exact PR 3 incident class: ``FlowTemplate`` built app headers with
the flow's *shared* seeded RNG, but only on a template-cache miss.  Two
seeded runs in one process then consumed different amounts of the same
stream (the second run hit the cache and skipped the draw), and every
subsequent draw in the "identical" run was desynchronized.  The fix --
derive a local RNG from the template shape -- is the pattern this rule
steers toward.

Static shape flagged here: inside one function, a draw from a *shared*
RNG (a parameter or attribute, not derived locally) that executes
conditionally on cache state, either

* lexically inside an ``if``/``else`` whose test mentions a cache
  (``cache``/``memo``/``seen``/``lru`` in an identifier, or a value
  obtained from ``<cache>.get(...)``), or
* after a cache-hit early return (``if key in self._cache: return ...``),
  i.e. on the miss path.

Draws from RNGs created *within* the function by
``repro.util.rng.derive_rng``, a seeded ``default_rng(...)``, or
``Generator.spawn()`` are exempt: a fresh stream keyed on stable inputs
cannot desync siblings no matter which branch builds it.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.devtools.lint.context import names_in
from repro.devtools.lint.rules.base import Rule, register

CACHEISH = ("cache", "cached", "memo", "lru", "seen")

# numpy.random.Generator draw methods plus the generic names local
# sampler closures use in this repo.
CONSUMERS = frozenset({
    "integers", "random", "choice", "bytes", "shuffle", "permutation",
    "permuted", "standard_normal", "normal", "uniform", "exponential",
    "standard_exponential", "poisson", "lognormal", "pareto", "binomial",
    "geometric", "gamma", "standard_gamma", "beta", "triangular",
    "weibull", "zipf", "vonmises", "rayleigh", "multinomial", "laplace",
    "logistic", "chisquare", "dirichlet", "hypergeometric",
    "negative_binomial", "standard_cauchy", "standard_t", "wald",
    "sample", "draw",
})

DERIVERS = frozenset({"default_rng", "derive_rng", "spawn", "rng"})


def _is_cacheish_name(identifier: str) -> bool:
    lowered = identifier.lower()
    return any(tag in lowered for tag in CACHEISH)


def _derives_local_rng(value: ast.AST) -> bool:
    """True for ``default_rng(seed)`` / ``derive_rng(..)`` / ``x.spawn()``."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    tail = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    return tail in DERIVERS


def _is_cache_lookup(value: ast.AST) -> bool:
    """``<cache>.get(...)`` or ``<cache>[...]`` on a cache-ish receiver."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute) \
            and value.func.attr == "get":
        return any(_is_cacheish_name(n) for n in names_in(value.func.value))
    if isinstance(value, ast.Subscript):
        return any(_is_cacheish_name(n) for n in names_in(value.value))
    return False


def _assigned_names(target: ast.AST) -> Set[str]:
    found: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            found.add(node.id)
    return found


@register
class ConditionalRngRule(Rule):
    id = "RL004"
    name = "rng-draw-on-cache-miss"
    summary = ("shared seeded RNG consumed inside a cache-miss or "
               "cache-guarded branch (cross-run desync, the PR 3 bug class)")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._analyze(node)
        self.generic_visit(node)  # nested defs analyzed independently

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._analyze(node)
        self.generic_visit(node)

    # -- per-function analysis ------------------------------------------

    def _analyze(self, fn: ast.AST) -> None:
        local_rngs: Set[str] = set()
        cache_derived: Set[str] = set()
        for stmt in self._statements(fn):
            if isinstance(stmt, ast.Assign):
                targets = set()
                for target in stmt.targets:
                    targets |= _assigned_names(target)
                if _derives_local_rng(stmt.value):
                    local_rngs |= targets
                if _is_cache_lookup(stmt.value):
                    cache_derived |= targets
        self._walk_block(fn.body, False, local_rngs, cache_derived)

    def _statements(self, fn: ast.AST):
        """Every statement in ``fn``, not descending into nested defs."""
        stack = list(fn.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield stmt
            for field in ("body", "orelse", "finalbody"):
                stack.extend(getattr(stmt, field, []))
            for handler in getattr(stmt, "handlers", []):
                stack.extend(handler.body)

    def _is_gate(self, test: ast.AST, cache_derived: Set[str]) -> bool:
        mentioned = names_in(test)
        return any(_is_cacheish_name(n) for n in mentioned) \
            or bool(mentioned & cache_derived)

    def _walk_block(self, stmts, conditional: bool,
                    local_rngs: Set[str], cache_derived: Set[str]) -> None:
        on_miss_path = conditional
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If) and \
                    self._is_gate(stmt.test, cache_derived):
                self._walk_block(stmt.body, True, local_rngs, cache_derived)
                self._walk_block(stmt.orelse, True, local_rngs, cache_derived)
                if any(isinstance(s, (ast.Return, ast.Raise, ast.Continue))
                       for s in stmt.body):
                    # Cache-hit branch exits early: the rest of this
                    # block is the miss path.
                    on_miss_path = True
                continue
            if on_miss_path:
                self._flag_draws(stmt, local_rngs)
                continue
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, [])
                if inner:
                    self._walk_block(inner, on_miss_path, local_rngs,
                                     cache_derived)
            for handler in getattr(stmt, "handlers", []):
                self._walk_block(handler.body, on_miss_path, local_rngs,
                                 cache_derived)

    def _flag_draws(self, stmt: ast.AST, local_rngs: Set[str]) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in CONSUMERS):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Name):
                tail = receiver.id
            elif isinstance(receiver, ast.Attribute):
                tail = receiver.attr
            else:
                continue
            if "rng" not in tail.lower() or tail in local_rngs:
                continue
            self.report(node, (
                f"shared RNG `{tail}.{node.func.attr}(...)` consumed on a "
                "cache-dependent path -- sibling seeded runs that hit the "
                "cache skip this draw and desync; draw unconditionally or "
                "derive a local RNG from stable inputs "
                "(repro.util.rng.derive_rng)"))
