"""RL008 -- durable run state must be written atomically.

The crash-safety contract (PR 6) rests on exactly two write patterns
for WAL/checkpoint/journal paths:

* **append-only** (``open(path, "ab")``) -- a crash can only tear the
  final line, which readers tolerate and reopening truncates;
* **atomic replace** (:func:`repro.util.atomio.atomic_write_bytes` /
  ``atomic_write_text``: temp file + fsync + ``os.replace``) -- readers
  see the old file or the whole new file, never a torn one.

A *truncating* open (mode containing ``w`` or ``x``) or a
``Path.write_text`` / ``Path.write_bytes`` call in a durable-state
module destroys the old state before the new state is safely on disk: a
crash in that window loses both.  One such write silently voids every
recovery oracle the chaos harness checks.

Scope is **inclusive**, unlike other rules: it applies only to the
modules registered in :data:`repro.core.checkpoint.DURABLE_MODULES`
(the write paths of ``campaign.wal``, ``checkpoints/``, journal
segments).  ``repro/util/atomio.py`` itself is the sanctioned
implementation and deliberately not registered.  Recovery truncation
(``open(path, "r+b")`` + ``.truncate()``) does not clobber on open and
stays allowed.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from repro.devtools.lint.rules.base import Rule, register

#: Fallback when the rule runs outside an importable repro tree; kept in
#: sync by tests/test_lint_rules.py::test_rl008_fallback_matches_registry.
FALLBACK_DURABLE_MODULES = (
    "repro/core/checkpoint.py",
    "repro/core/campaign.py",
    "repro/core/gather.py",
    "repro/core/sharding.py",
    "repro/obs/journal.py",
    "repro/testbed/chaos.py",
)

TRUNCATING_ATTRS = frozenset({"write_text", "write_bytes"})


def durable_modules() -> Tuple[str, ...]:
    """The live registry of durable-state write paths."""
    try:
        from repro.core.checkpoint import DURABLE_MODULES
    except ImportError:
        return FALLBACK_DURABLE_MODULES
    return tuple(DURABLE_MODULES)


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open()`` call, if knowable."""
    mode: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@register
class AtomicWriteRule(Rule):
    id = "RL008"
    name = "non-atomic-durable-write"
    summary = ("truncating write to durable run state -- use append mode "
               "or repro.util.atomio's temp-file + os.replace idiom")

    def applies_to(self, rel_path: str) -> bool:
        # Inclusive scope: only registered durable-state modules.
        posix = rel_path.replace("\\", "/")
        if any(posix.endswith(suffix) for suffix in self.allow_paths()):
            return False
        return any(posix.endswith(module) for module in durable_modules())

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_open = (isinstance(func, ast.Name) and func.id == "open") or \
            (isinstance(func, ast.Attribute) and func.attr == "open")
        if is_open:
            mode = _open_mode(node)
            if mode is not None and any(c in mode for c in "wx"):
                self.report(node, (
                    f"open(..., {mode!r}) truncates durable state in place; "
                    "a crash mid-write loses old and new state -- append "
                    "(mode 'ab') or use repro.util.atomio.atomic_write_*"))
        elif isinstance(func, ast.Attribute) and \
                func.attr in TRUNCATING_ATTRS:
            self.report(node, (
                f".{func.attr}() clobbers durable state in place -- use "
                "repro.util.atomio.atomic_write_* so readers never see a "
                "torn file"))
        self.generic_visit(node)
