"""RL000: every suppression pragma must carry a reason.

A ``# reprolint: disable=...`` without a ``-- why`` clause is an
invariant waiver nobody can audit: six months later there is no way to
tell a sanctioned architectural exception from a shortcut.  This rule
makes the justification part of the pragma grammar, so the suppression
inventory in ``repro lint --show-suppressed`` always reads as a list of
*decisions*, not mysteries.
"""

from __future__ import annotations

from typing import List

from repro.devtools.lint.rules.base import Rule, register
from repro.devtools.lint.violations import Violation


@register
class PragmaReasonRule(Rule):
    id = "RL000"
    name = "pragma-reason"
    summary = ("suppression pragmas must state a reason "
               "(`# reprolint: disable=RLxxx -- why`)")
    suppressible = False  # a reasonless `disable=all` must not hide RL000

    def run(self) -> List[Violation]:
        for site in self.ctx.pragma_sites:
            if site.has_reason:
                continue
            rules = ",".join(site.rules)
            line_text = ""
            if 1 <= site.line <= len(self.ctx.lines):
                line_text = self.ctx.lines[site.line - 1].strip()
            self.violations.append(Violation(
                path=self.ctx.rel_path,
                line=site.line,
                col=0,
                rule=self.id,
                message=(f"pragma `{site.scope}={rules}` has no reason; "
                         f"append ` -- <why this suppression is sound>`"),
                snippet=line_text,
            ))
        return self.violations
