"""RL010: process-boundary safety.

Everything crossing a process boundary -- the callable and every
argument of a ``ProcessPoolExecutor.submit/map`` or
``iter_shard_results`` call -- is pickled.  An open file, a live
``RunJournal``, a ``Simulator``, or a lambda fails *at dispatch time*,
usually only on the code path that actually fans out, which is exactly
the path the fast unit tests skip.  This rule makes picklability a
static property:

* the submitted callable must be a module-level function (no lambdas,
  no nested closures);
* no argument expression may be tainted by an unpicklable constructor
  (``open``, journals, executors, simulators, ...), tracked through
  local assignments by the index's per-function taint pass.

Shard tasks built via ``shard_task(...)`` are frozen dataclasses of
primitives by construction and pass untouched.
"""

from __future__ import annotations

from typing import List

from repro.devtools.lint.rules.base import ProjectRule, register_project
from repro.devtools.lint.violations import Violation


@register_project
class ProcessBoundaryRule(ProjectRule):
    id = "RL010"
    name = "process-boundary"
    summary = ("process-pool submits and iter_shard_results args must be "
               "picklable-by-construction (no open handles, journals, "
               "lambdas, or live simulators)")

    def run(self) -> List[Violation]:
        for boundary in self.index.boundaries():
            where = (f"`{boundary['kind']}` boundary in "
                     f"{boundary['func']}")
            if boundary["fn_issue"] == "lambda":
                self.report_at(
                    boundary["path"], boundary["line"], boundary["col"],
                    f"lambda submitted across the {where}; process pools "
                    f"pickle the callable -- use a module-level function",
                    snippet=boundary["snippet"])
            elif boundary["fn_issue"] == "nested-function":
                self.report_at(
                    boundary["path"], boundary["line"], boundary["col"],
                    f"nested function submitted across the {where}; "
                    f"closures do not pickle -- use a module-level "
                    f"function",
                    snippet=boundary["snippet"])
            for taint in boundary["tainted"]:
                if taint["category"] != "unpicklable":
                    continue  # RNG-at-boundary is RL012's report
                self.report_at(
                    boundary["path"], taint["line"], taint["col"],
                    f"`{taint['expr']}` ({taint['category']}) crosses the "
                    f"{where}; boundary arguments must be "
                    f"picklable-by-construction (frozen dataclasses, "
                    f"primitives, TraceContext)",
                    snippet=boundary["snippet"])
        return self.violations
