"""RL003 -- sim-time discipline: no real sleeps.

Every delay in the reproduction -- allocation latency, retry backoff,
sample intervals -- is *simulated* time spent via
:meth:`repro.netsim.engine.Simulator.run` (or an API that charges it,
like ``ResilientAPI.wait``).  A real ``time.sleep`` would couple test
wall time to modelled time (a 20-minute mega-slice allocation would
really take 20 minutes) and, worse, spend no sim time at all, silently
decoupling the caller from every scheduled dataplane event.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.rules.base import Rule, register

SLEEP_CALLS = frozenset({
    "time.sleep",
    "asyncio.sleep",
})


@register
class SleepRule(Rule):
    id = "RL003"
    name = "real-sleep"
    summary = ("time.sleep/asyncio.sleep in src/repro -- delays must be "
               "charged to the Simulator clock")

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.call_qualname(node)
        if qual in SLEEP_CALLS:
            self.report(node, (
                f"`{qual}` spends wall time but zero sim time -- charge "
                "the delay via Simulator.run(until=...) / the owning "
                "API's wait() instead"))
        self.generic_visit(node)
