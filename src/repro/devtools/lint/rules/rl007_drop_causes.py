"""RL007 -- drop causes must come from the central ledger taxonomy.

The frame-conservation identity (PR 4) only audits cleanly because
every dropped frame is charged to one of the causes in
:data:`repro.obs.ledger.CAUSES`.  A stringly-typed cause -- a typo
(``"mirror-egres"``), an ad-hoc name (``"ring"``), a stage name used as
a cause -- silently opens a parallel books entry: the conservation sum
still balances per-row, but the audit waterfall, the
``ledger.dropped.*`` counters, and the scorecard's ground truth
(``drops["mirror-egress"]``) all stop seeing those frames.

Flagged: any string literal used as a drop-cause key that is not in the
taxonomy -- subscripts on a ``drops`` mapping (``row.drops["..."]``,
``drops["..."] = n``), ``drops.get("...")``, and cause arguments to
drop-recording calls (``add_drop``/``record_drop``/``charge_drop``).
New cause?  Add it to ``CAUSES`` + ``STAGE_OF_CAUSE`` first; the audit
waterfall and this rule pick it up together.
"""

from __future__ import annotations

import ast
from typing import FrozenSet

from repro.devtools.lint.rules.base import Rule, register

DROP_RECORDERS = frozenset({"add_drop", "record_drop", "charge_drop"})

# Fallback when the rule runs outside an importable repro tree (e.g.
# linting a checkout without src on sys.path); kept in sync by
# tests/test_lint_rules.py::test_rl007_fallback_matches_ledger.
FALLBACK_TAXONOMY = frozenset({
    "oversize", "fault-window", "mirror-egress", "in-flight", "nic-ring",
    "writer-backpressure", "filtered", "parse-error",
})


def taxonomy() -> FrozenSet[str]:
    """The live cause vocabulary (ledger CAUSES + staged extras)."""
    try:
        from repro.obs.ledger import CAUSES, STAGE_OF_CAUSE
    except ImportError:
        return FALLBACK_TAXONOMY
    return frozenset(CAUSES) | frozenset(STAGE_OF_CAUSE)


def _is_drops_mapping(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "drops"
    if isinstance(node, ast.Attribute):
        return node.attr == "drops"
    return False


@register
class DropCauseRule(Rule):
    id = "RL007"
    name = "unknown-drop-cause"
    summary = ("string drop cause not in the ledger taxonomy (typo or "
               "ad-hoc cause bypassing repro.obs.ledger.CAUSES)")

    def __init__(self, ctx, options):
        super().__init__(ctx, options)
        self._causes = taxonomy() | frozenset(
            str(extra) for extra in options.get("extra-causes", []))

    def _check_literal(self, node: ast.AST) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and node.value not in self._causes:
            close = ", ".join(sorted(self._causes))
            self.report(node, (
                f"drop cause '{node.value}' is not in the ledger taxonomy "
                f"({close}) -- add it to repro.obs.ledger.CAUSES/"
                "STAGE_OF_CAUSE or fix the spelling"))

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _is_drops_mapping(node.value):
            self._check_literal(node.slice)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "get" and _is_drops_mapping(func.value) \
                    and node.args:
                self._check_literal(node.args[0])
            elif func.attr in DROP_RECORDERS and node.args:
                self._check_literal(node.args[0])
        self.generic_visit(node)
