"""RL001 -- wall-clock reads outside the clock boundary.

Journal determinism (PR 3) rests on every timestamp in deterministic
output coming from sim time.  The single sanctioned wall-clock read is
``repro/obs/clock.py`` (:class:`WallClock`); anything else reading
``time.time()`` et al. is either a latent journal leak or a benchmark
that should be marked volatile and pragma'd with a reason.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.rules.base import Rule, register

WALL_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

# Flagged only when called with no arguments: ``datetime.now(tz)`` is
# still wall time but is out of scope per the invariant catalogue (it
# is always explicit, greppable, and never an accident).
ARGLESS_WALL_CALLS = frozenset({
    "datetime.datetime.now",
})


@register
class WallClockRule(Rule):
    id = "RL001"
    name = "wall-clock-read"
    summary = ("wall-clock read (time.time/monotonic/perf_counter, argless "
               "datetime.now) outside the obs/clock.py boundary")
    default_allow = ("repro/obs/clock.py",)

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.call_qualname(node)
        if qual in WALL_CALLS or (
                qual in ARGLESS_WALL_CALLS and not node.args
                and not node.keywords):
            self.report(node, (
                f"wall-clock read `{qual}` -- deterministic code must take "
                "time from the Simulator (obs clock); if this is volatile "
                "benchmark timing, pragma it with a reason"))
        self.generic_visit(node)
