"""RL011: parent-only durability.

Crash-safety is a *parent-side* responsibility: the campaign WAL
(``CampaignLog``), checkpoint commits (``CheckpointStore``), and atomic
replaces (``os.replace``/``os.fsync``) must only ever run in the
coordinating process.  A worker that appends to the WAL races the
parent's recovery scan; a worker that ``os.replace``s a checkpoint can
tear a commit the parent believes atomic.  Two checks:

* **module confinement** -- direct durability calls are only allowed in
  the declared parent-side modules (``allow_modules`` option; defaults
  cover ``core/campaign.py``, ``core/checkpoint.py``,
  ``util/atomio.py``, and the chaos harness whose raw replaces *are*
  the crash-fuzzing IO shim);
* **worker reachability** -- no function submitted across a process
  boundary (the index's boundary facts) may reach a durability call
  through the call graph.  Boundaries inside allowed modules are
  exempt: the chaos harness deliberately runs full durable campaigns
  inside its trial workers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devtools.lint.rules.base import ProjectRule, register_project
from repro.devtools.lint.violations import Violation

_DEFAULT_ALLOW_MODULES = (
    "core/campaign.py",
    "core/checkpoint.py",
    "util/atomio.py",
    "testbed/chaos.py",
)


@register_project
class ParentDurabilityRule(ProjectRule):
    id = "RL011"
    name = "parent-durability"
    summary = ("WAL appends, checkpoint commits, and os.replace are "
               "confined to parent-side modules; worker functions must "
               "not reach them")

    def _allowed_modules(self) -> tuple:
        extra = self.options.get("allow_modules", [])
        if isinstance(extra, str):
            extra = [extra]
        return _DEFAULT_ALLOW_MODULES + tuple(extra)

    def _module_allowed(self, rel_path: str) -> bool:
        posix = rel_path.replace("\\", "/")
        return any(posix.endswith(suffix)
                   for suffix in self._allowed_modules())

    def run(self) -> List[Violation]:
        sites = self.index.durability_sites()

        # Check 1: direct durability calls outside parent-side modules.
        for site in sites:
            if self._module_allowed(site["path"]):
                continue
            self.report_at(
                site["path"], site["line"], site["col"],
                f"durability call `{site['api']}` outside the parent-side "
                f"modules ({', '.join(self._allowed_modules())}); WAL and "
                f"checkpoint writes belong to the coordinating process",
                snippet=site["snippet"])

        # Check 2: worker entry points must not *reach* durability calls.
        durable_fns: Dict[str, dict] = {}
        for site in sites:
            if site["func"]:
                durable_fns.setdefault(site["func"], site)
        for boundary in self.index.boundaries():
            if self._module_allowed(boundary["path"]):
                continue
            entry = boundary.get("fn")
            if not entry or entry not in self.index.defs:
                continue
            for reached in self.index.reachable_from(entry):
                if reached not in durable_fns:
                    continue
                site = durable_fns[reached]
                path = self.index.call_path(entry, reached) or [entry,
                                                                reached]
                chain = " -> ".join(p.split(".")[-1] for p in path)
                self.report_at(
                    boundary["path"], boundary["line"], boundary["col"],
                    f"worker function `{entry}` reaches durability call "
                    f"`{site['api']}` ({site['path']}:{site['line']}) via "
                    f"{chain}; workers must stay WAL-free",
                    snippet=boundary["snippet"])
        return self.violations
