"""Rule plugin interface.

A rule is an :class:`ast.NodeVisitor` with a stable id, a one-line
summary (shown by ``repro lint --list-rules`` and used in DESIGN.md's
invariant catalogue), and an optional per-rule options dict sourced
from ``[tool.reprolint.rules.<id>]`` in pyproject.toml.

Rules only *report*; suppression (pragmas, per-rule path allowlists,
select/ignore) is applied by the engine so every rule stays a pure
function of the AST.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Type

from repro.devtools.lint.context import FileContext
from repro.devtools.lint.violations import Violation

RULES: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or cls.id in RULES:
        raise ValueError(f"duplicate or empty rule id: {cls.id!r}")
    RULES[cls.id] = cls
    return cls


class Rule(ast.NodeVisitor):
    """Base class for reprolint rules (subclass and ``@register``)."""

    id: str = ""
    name: str = ""
    summary: str = ""
    #: Repo-relative path suffixes where this rule never applies (the
    #: architectural escape hatch -- e.g. RL001 allows ``obs/clock.py``,
    #: the one sanctioned wall-clock boundary).  Extended, not replaced,
    #: by the ``allow`` list in pyproject.
    default_allow: tuple = ()

    def __init__(self, ctx: FileContext, options: Dict[str, object]):
        self.ctx = ctx
        self.options = options
        self.violations: List[Violation] = []

    # -- reporting -------------------------------------------------------

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            path=self.ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            snippet=self.ctx.snippet(node),
        ))

    # -- execution -------------------------------------------------------

    def run(self) -> List[Violation]:
        self.visit(self.ctx.tree)
        return self.violations

    # -- option helpers --------------------------------------------------

    def allow_paths(self) -> tuple:
        extra = self.options.get("allow", [])
        if isinstance(extra, str):
            extra = [extra]
        return tuple(self.default_allow) + tuple(extra)

    def applies_to(self, rel_path: str) -> bool:
        posix = rel_path.replace("\\", "/")
        return not any(posix.endswith(suffix) for suffix in self.allow_paths())
