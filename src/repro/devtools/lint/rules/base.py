"""Rule plugin interface.

A rule is an :class:`ast.NodeVisitor` with a stable id, a one-line
summary (shown by ``repro lint --list-rules`` and used in DESIGN.md's
invariant catalogue), and an optional per-rule options dict sourced
from ``[tool.reprolint.rules.<id>]`` in pyproject.toml.

Rules only *report*; suppression (pragmas, per-rule path allowlists,
select/ignore) is applied by the engine so every rule stays a pure
function of the AST.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Type

from repro.devtools.lint.context import FileContext
from repro.devtools.lint.violations import Violation

RULES: Dict[str, Type["Rule"]] = {}

#: Phase-2 rules: run once per lint invocation against the whole-program
#: :class:`~repro.devtools.lint.project.ProjectIndex`, not per file.
PROJECT_RULES: Dict[str, Type["ProjectRule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id or cls.id in RULES:
        raise ValueError(f"duplicate or empty rule id: {cls.id!r}")
    RULES[cls.id] = cls
    return cls


def register_project(cls: Type["ProjectRule"]) -> Type["ProjectRule"]:
    """Class decorator adding an interprocedural rule to the registry."""
    if not cls.id or cls.id in PROJECT_RULES or cls.id in RULES:
        raise ValueError(f"duplicate or empty rule id: {cls.id!r}")
    PROJECT_RULES[cls.id] = cls
    return cls


class Rule(ast.NodeVisitor):
    """Base class for reprolint rules (subclass and ``@register``)."""

    id: str = ""
    name: str = ""
    summary: str = ""
    #: Pragma-suppressible?  RL000 (pragma hygiene) sets this False so a
    #: reasonless ``disable=all`` cannot silence the rule that polices
    #: reasonless pragmas.
    suppressible: bool = True
    #: Repo-relative path suffixes where this rule never applies (the
    #: architectural escape hatch -- e.g. RL001 allows ``obs/clock.py``,
    #: the one sanctioned wall-clock boundary).  Extended, not replaced,
    #: by the ``allow`` list in pyproject.
    default_allow: tuple = ()

    def __init__(self, ctx: FileContext, options: Dict[str, object]):
        self.ctx = ctx
        self.options = options
        self.violations: List[Violation] = []

    # -- reporting -------------------------------------------------------

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            path=self.ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            snippet=self.ctx.snippet(node),
        ))

    # -- execution -------------------------------------------------------

    def run(self) -> List[Violation]:
        self.visit(self.ctx.tree)
        return self.violations

    # -- option helpers --------------------------------------------------

    def allow_paths(self) -> tuple:
        extra = self.options.get("allow", [])
        if isinstance(extra, str):
            extra = [extra]
        return tuple(self.default_allow) + tuple(extra)

    def applies_to(self, rel_path: str) -> bool:
        posix = rel_path.replace("\\", "/")
        return not any(posix.endswith(suffix) for suffix in self.allow_paths())


class ProjectRule:
    """Base class for whole-program (phase-2) rules.

    Unlike :class:`Rule`, a project rule sees the merged
    :class:`~repro.devtools.lint.project.ProjectIndex` and reports
    violations located anywhere in the linted set.  It shares the id /
    summary / allowlist surface so ``--select``, ``--list-rules``,
    per-rule pyproject options, and pragma suppression all work
    identically; the engine maps each violation back to its file's
    pragma table before deciding suppression.
    """

    id: str = ""
    name: str = ""
    summary: str = ""
    default_allow: tuple = ()

    def __init__(self, index, options: Dict[str, object]):
        self.index = index
        self.options = options
        self.violations: List[Violation] = []

    def report_at(self, path: str, line: int, col: int, message: str,
                  snippet: str = "") -> None:
        self.violations.append(Violation(
            path=path, line=line, col=col, rule=self.id,
            message=message, snippet=snippet))

    def run(self) -> List[Violation]:
        raise NotImplementedError

    def allow_paths(self) -> tuple:
        extra = self.options.get("allow", [])
        if isinstance(extra, str):
            extra = [extra]
        return tuple(self.default_allow) + tuple(extra)

    def applies_to(self, rel_path: str) -> bool:
        posix = rel_path.replace("\\", "/")
        return not any(posix.endswith(suffix) for suffix in self.allow_paths())
