"""RL002 -- hidden nondeterminism.

Everything random in this reproduction flows from one seeded
:class:`numpy.random.Generator` tree (``repro.util.rng.derive_rng``).
This rule flags the ways entropy sneaks in anyway:

* stdlib ``random`` module functions (process-global state, seeded or
  not, shared with any library that also touches it);
* the legacy ``numpy.random.*`` global-state API (``np.random.rand``);
* **unseeded** ``np.random.default_rng()`` / ``random.Random()`` /
  ``np.random.SeedSequence()`` (argless = OS entropy);
* ``uuid.uuid1/uuid4``, ``os.urandom``, ``secrets.*``;
* ``sorted(..., key=id)`` / ``.sort(key=id)`` -- address-ordered output;
* iterating a bare ``set`` into order-sensitive output
  (``list(set(..))``, ``for x in set(..)``) without ``sorted``.

Set iteration *is* stable within one CPython process, which is exactly
why it passes tests and then breaks cross-run byte-identity once hash
randomization or content order differs; ``sorted`` costs one call.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.rules.base import Rule, register

STDLIB_RANDOM_PREFIX = "random."
NUMPY_GLOBAL_PREFIX = "numpy.random."
# numpy.random names that are *constructors of seeded machinery*, not
# draws from the legacy global RandomState.
NUMPY_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
    "numpy.random.BitGenerator",
})
# Argless construction of these draws a seed from OS entropy.
SEED_REQUIRED = frozenset({
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "random.Random",
})
ENTROPY_CALLS = frozenset({
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "os.getrandom",
})
SECRETS_PREFIX = "secrets."

SET_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter", "map",
                          "filter"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class NondeterminismRule(Rule):
    id = "RL002"
    name = "hidden-nondeterminism"
    summary = ("hidden entropy: stdlib random, legacy np.random globals, "
               "unseeded default_rng(), uuid4/urandom/secrets, id()-keyed "
               "sorts, unsorted set iteration")

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.call_qualname(node)
        if qual:
            self._check_qualname(node, qual)
        self._check_sort_key(node, qual)
        self._check_set_wrapper(node)
        self.generic_visit(node)

    def _check_qualname(self, node: ast.Call, qual: str) -> None:
        if qual in SEED_REQUIRED:
            if not node.args and not node.keywords:
                self.report(node, (
                    f"`{qual}()` with no seed draws OS entropy -- pass a "
                    "seed or use repro.util.rng.derive_rng"))
            return
        if qual in NUMPY_CONSTRUCTORS:
            return
        if qual.startswith(NUMPY_GLOBAL_PREFIX):
            self.report(node, (
                f"legacy numpy global-state RNG `{qual}` -- draw from a "
                "seeded Generator (repro.util.rng.derive_rng) instead"))
            return
        if qual.startswith(STDLIB_RANDOM_PREFIX) or qual == "random":
            self.report(node, (
                f"stdlib `{qual}` uses process-global RNG state -- draw "
                "from a seeded numpy Generator instead"))
            return
        if qual in ENTROPY_CALLS or qual.startswith(SECRETS_PREFIX):
            self.report(node, (
                f"`{qual}` is an OS entropy source; derive ids/tokens from "
                "the run seed so reruns are byte-identical"))

    def _check_sort_key(self, node: ast.Call, qual) -> None:
        is_sort = qual == "sorted" or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        if not is_sort:
            return
        for kw in node.keywords:
            if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                    and kw.value.id == "id":
                self.report(node, (
                    "sorting by `id()` orders by memory address, which "
                    "differs across runs -- sort by a stable key"))

    def _check_set_wrapper(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name)
                and node.func.id in SET_WRAPPERS and node.args):
            return
        if any(_is_set_expr(arg) for arg in node.args):
            self.report(node, (
                "materializing a set in hash order -- wrap in sorted(...) "
                "before it can reach persisted or journaled output"))

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.report(node, (
                "iterating a bare set in hash order -- iterate "
                "sorted(...) so downstream output is order-stable"))
        self.generic_visit(node)
