"""The reprolint rule registry.

Each rule is a small, independently testable :class:`~.base.Rule`
visitor registered under a stable ``RLxxx`` id.  Importing this package
loads every built-in rule module; third parties (or tests) can register
additional rules with :func:`register`.

Two families:

* **per-file rules** (:data:`RULES`, RL000--RL008) -- pure AST visitors
  over one module;
* **project rules** (:data:`PROJECT_RULES`, RL009--RL012) -- run once
  against the whole-program :class:`~..project.ProjectIndex` after
  every file is parsed.
"""

from __future__ import annotations

from repro.devtools.lint.rules.base import (
    PROJECT_RULES,
    RULES,
    ProjectRule,
    Rule,
    register,
    register_project,
)

# Import for side effect: each module registers its rule class.
from repro.devtools.lint.rules import (  # noqa: F401  (registration imports)
    rl000_pragma_reason,
    rl001_wallclock,
    rl002_nondeterminism,
    rl003_sleep,
    rl004_conditional_rng,
    rl005_journal_purity,
    rl006_broad_except,
    rl007_drop_causes,
    rl008_atomic_writes,
    rl009_event_schema,
    rl010_process_boundary,
    rl011_parent_durability,
    rl012_seed_provenance,
)

__all__ = ["PROJECT_RULES", "RULES", "ProjectRule", "Rule", "register",
           "register_project"]
