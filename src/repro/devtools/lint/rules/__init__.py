"""The reprolint rule registry.

Each rule is a small, independently testable :class:`~.base.Rule`
visitor registered under a stable ``RLxxx`` id.  Importing this package
loads every built-in rule module; third parties (or tests) can register
additional rules with :func:`register`.
"""

from __future__ import annotations

from repro.devtools.lint.rules.base import RULES, Rule, register

# Import for side effect: each module registers its rule class.
from repro.devtools.lint.rules import (  # noqa: F401  (registration imports)
    rl001_wallclock,
    rl002_nondeterminism,
    rl003_sleep,
    rl004_conditional_rng,
    rl005_journal_purity,
    rl006_broad_except,
    rl007_drop_causes,
    rl008_atomic_writes,
)

__all__ = ["RULES", "Rule", "register"]
