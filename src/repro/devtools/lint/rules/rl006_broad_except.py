"""RL006 -- broad exception swallowing.

Seed incident: ``SliceAllocator._place`` rolled back partial placements
under ``except Exception:`` -- correct cleanup, but the clause would
also have eaten a typo'd attribute error, and nothing reached the run
journal, so a "mysteriously empty slice" had no machine-readable cause
(fixed in this PR: narrowed to the concrete allocator errors and
journaled).

A broad handler (``except Exception`` / ``except BaseException`` /
bare ``except``) is allowed only when it visibly does one of:

* re-raise (a ``raise`` statement anywhere in the handler), or
* record the failure -- a call to ``journal.emit``/``.log``/
  ``logger.*``/``.exception``/``.error``/``.warning``/``._note`` inside
  the handler.

Otherwise the failure vanishes and the Fig 10-style outcome analysis
the journal exists for (paper Section 6.2.2, requirement R3) is blind
to it.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.rules.base import Rule, register

BROAD = frozenset({"Exception", "BaseException"})
RECORDERS = frozenset({
    "emit", "log", "debug", "info", "warning", "error", "exception",
    "critical", "_note", "note", "record_failure",
})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    for node in types:
        if isinstance(node, ast.Name) and node.id in BROAD:
            return True
        if isinstance(node, ast.Attribute) and node.attr in BROAD:
            return True
    return False


def _handles_visibly(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            tail = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            if tail in RECORDERS or "journal" in tail.lower():
                return True
    return False


@register
class BroadExceptRule(Rule):
    id = "RL006"
    name = "silent-broad-except"
    summary = ("`except Exception`/bare except that neither re-raises nor "
               "journals the swallowed failure")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _is_broad(node) and not _handles_visibly(node):
            what = "bare `except:`" if node.type is None \
                else "`except Exception`"
            self.report(node, (
                f"{what} swallows the failure invisibly -- narrow it to "
                "the concrete error types, re-raise, or journal it "
                "(journal.emit / logger) so the run record shows what "
                "happened"))
        self.generic_visit(node)
