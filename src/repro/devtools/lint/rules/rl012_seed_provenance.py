"""RL012: seed-provenance taint.

Byte-identical runs depend on every RNG in the system tracing back to
the one master seed through *named* derivation domains
(``derive_rng(seed, "site/lan0")``, ``SeedSequenceFactory.child``).  A
raw integer seed (``default_rng(42)``) silently forks the provenance
tree: the run still looks deterministic, but its streams no longer
re-derive from the campaign seed, so resume and shard-merge identity
quietly break.  Three checks over the project index:

* **raw integer seeds** -- any RNG construction outside ``util/rng.py``
  whose seed is an int literal (directly, or an int literal passed by a
  caller into a seed-typed parameter via the call graph);
* **numeric derivation labels** -- ``derive_rng``/``factory.rng``/
  ``factory.child`` called with a non-string label defeats the domain
  separation the label provides;
* **RNG objects at process boundaries** -- a ``Generator`` crossing a
  ``submit``/``iter_shard_results`` boundary ships generator *state*
  where a seed should travel; workers must re-derive locally.

Hash-of-string seeds (``zlib.crc32(f"...".encode())``) are accepted:
the string is the domain, same contract as ``derive_rng``.
"""

from __future__ import annotations

from typing import List

from repro.devtools.lint.rules.base import ProjectRule, register_project
from repro.devtools.lint.violations import Violation

#: The sanctioned derivation module: raw ints here are the master-seed
#: roots everything else derives from.
_RNG_MODULE = "util/rng.py"

#: Functions allowed to *receive* raw integer seeds: they are the
#: derivation entry points.
_SEED_SINKS = ("derive_rng", "SeedSequenceFactory")


@register_project
class SeedProvenanceRule(ProjectRule):
    id = "RL012"
    name = "seed-provenance"
    summary = ("RNG constructions must derive from derive_rng/"
               "SeedSequenceFactory with a string domain; no raw int "
               "seeds, no RNG objects across process boundaries")

    def run(self) -> List[Violation]:
        self._check_rng_sites()
        self._check_labels()
        self._check_seed_params()
        self._check_boundaries()
        return self.violations

    def _in_rng_module(self, rel_path: str) -> bool:
        return rel_path.replace("\\", "/").endswith(_RNG_MODULE)

    def _check_rng_sites(self) -> None:
        for site in self.index.rng_sites():
            if self._in_rng_module(site["path"]):
                continue
            if site["seed"] == "int-literal":
                self.report_at(
                    site["path"], site["line"], site["col"],
                    f"raw integer seed in `{site['ctor']}`; derive the "
                    f"stream instead: derive_rng(seed, \"<domain>\") or "
                    f"SeedSequenceFactory.child",
                    snippet=site["snippet"])

    def _check_labels(self) -> None:
        for rel_path in sorted(self.index.files):
            for call in self.index.files[rel_path]["derive_calls"]:
                if call["label"] != "nonstring":
                    continue
                self.report_at(
                    rel_path, call["line"], call["col"],
                    "derivation label must be a string domain "
                    "(\"site/component\"), not a number; numeric labels "
                    "defeat domain separation",
                    snippet=call["snippet"])

    def _check_seed_params(self) -> None:
        """Int literals flowing into seed-typed parameters via calls."""
        seed_params = {}
        for facts in self.index.files.values():
            for func, params in facts["seed_params"].items():
                seed_params[func] = set(params)
        if not seed_params:
            return
        param_order = {}
        for facts in self.index.files.values():
            for fn in facts["functions"]:
                param_order[fn["name"]] = fn["params"]
        for rel_path in sorted(self.index.files):
            for call in self.index.files[rel_path]["calls"]:
                callee = call["callee"]
                resolved = callee if callee in seed_params else None
                if resolved is None:
                    continue
                if any(part in callee for part in _SEED_SINKS):
                    continue  # derivation roots take the raw master seed
                params = param_order.get(resolved, [])
                flagged_positional = [
                    params[i] for i in call["int_args"]
                    if i < len(params) and params[i] in seed_params[resolved]]
                flagged_kw = [name for name in call["int_kwargs"]
                              if name in seed_params[resolved]]
                for param in flagged_positional + flagged_kw:
                    self.report_at(
                        rel_path, call["line"], call["col"],
                        f"int literal passed as seed parameter "
                        f"`{param}` of `{callee}`; thread a derived seed "
                        f"(derive_rng / SeedSequenceFactory.child) "
                        f"instead")

    def _check_boundaries(self) -> None:
        for boundary in self.index.boundaries():
            for taint in boundary["tainted"]:
                if taint["category"] != "rng":
                    continue
                self.report_at(
                    boundary["path"], taint["line"], taint["col"],
                    f"RNG object `{taint['expr']}` crosses the "
                    f"`{boundary['kind']}` process boundary in "
                    f"{boundary['func']}; ship the seed/domain and "
                    f"re-derive in the worker",
                    snippet=boundary["snippet"])
