"""RL005 -- journal purity: wall-derived values need ``volatile=``.

The :class:`~repro.obs.journal.RunJournal` is byte-identical across
seeded runs *only because* emitters route wall-time-derived values
(stage durations, throughput) through the ``volatile=`` mapping, which
a deterministic journal discards.  Passing such a value as a regular
event field bakes nondeterminism into the journal and breaks
``repro obs diff`` -- silently, because the event still renders fine.

The check is a function-local taint pass: names assigned from a
wall-clock read (``time.time``/``perf_counter``/...), or arithmetic
over one, taint any ``journal.emit(...)`` keyword they reach --
including an explicit ``t=``.  ``volatile={...}`` is the sanctioned
sink and is exempt.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.devtools.lint.context import names_in
from repro.devtools.lint.rules.base import Rule, register
from repro.devtools.lint.rules.rl001_wallclock import (ARGLESS_WALL_CALLS,
                                                       WALL_CALLS)

ALL_WALL = WALL_CALLS | ARGLESS_WALL_CALLS


@register
class JournalPurityRule(Rule):
    id = "RL005"
    name = "journal-wall-taint"
    summary = ("wall-time-derived value passed to RunJournal.emit outside "
               "volatile= (breaks byte-identical journals)")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._analyze(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._analyze(node)
        self.generic_visit(node)

    # -- taint machinery -------------------------------------------------

    def _wall_call_in(self, expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call) and \
                    self.ctx.call_qualname(sub) in ALL_WALL:
                return True
        return False

    def _tainted_names(self, fn: ast.AST) -> Set[str]:
        tainted: Set[str] = set()
        # Fixpoint over assignments (order-free; two passes suffice for
        # straight-line taint chains, loop until stable to be safe).
        assigns = [
            stmt for stmt in ast.walk(fn)
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign))
            and getattr(stmt, "value", None) is not None
        ]
        changed = True
        while changed:
            changed = False
            for stmt in assigns:
                value = stmt.value
                if not (self._wall_call_in(value)
                        or names_in(value) & tainted):
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name) \
                                and name.id not in tainted:
                            tainted.add(name.id)
                            changed = True
        return tainted

    # -- the check -------------------------------------------------------

    def _analyze(self, fn: ast.AST) -> None:
        tainted = self._tainted_names(fn)
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"):
                continue
            receiver_names = names_in(node.func.value)
            if not any("journal" in n.lower() for n in receiver_names):
                continue
            for kw in node.keywords:
                if kw.arg is None or kw.arg == "volatile":
                    continue
                if self._wall_call_in(kw.value) \
                        or names_in(kw.value) & tainted:
                    self.report(kw.value, (
                        f"journal event field `{kw.arg}=` carries a "
                        "wall-time-derived value -- pass it via "
                        "volatile={...} so deterministic journals drop it"))
