"""RL009: journal event-schema contract.

The canonical journal is the run's contract: `repro audit`, trace
reconstruction, and resume all read it back by event kind.  A typo'd
kind at an emit site (``emit("sheduled", ...)``) is invisible at
runtime -- the consumer's ``of_kind("scheduled")`` simply matches
nothing -- so the contract is enforced statically instead:

* **emitted-but-never-consumed** kinds are flagged (with a did-you-mean
  suggestion against the consumed vocabulary) unless declared in the
  ``observe_only`` option -- kinds written for dashboards and humans;
* **consumed-but-never-emitted** kinds are always flagged: a reader
  waiting on an event nobody writes is dead code or a typo;
* **key-set drift** between emit sites of the same kind is flagged,
  because schema drift between writers breaks byte-identical resume.
  Sites that splat a dynamic mapping (``**row``) contribute an open
  key set and only their *named* keys are compared.
"""

from __future__ import annotations

import difflib
from typing import List

from repro.devtools.lint.events import event_registry
from repro.devtools.lint.rules.base import ProjectRule, register_project
from repro.devtools.lint.violations import Violation


@register_project
class EventSchemaRule(ProjectRule):
    id = "RL009"
    name = "event-schema"
    summary = ("journal event kinds must be consumed (or observe-only) "
               "and keep one key set per kind")

    def _observe_only(self) -> set:
        declared = self.options.get("observe_only", [])
        if isinstance(declared, str):
            declared = [declared]
        return set(declared)

    def run(self) -> List[Violation]:
        registry = event_registry(self.index)
        observe_only = self._observe_only()
        emitted = {r["kind"] for r in registry if r["emit_sites"]}
        consumed = {r["kind"] for r in registry if r["consumers"]}
        vocabulary = sorted(consumed | observe_only)

        for record in registry:
            kind = record["kind"]
            if record["emit_sites"] and not record["consumers"] \
                    and kind not in observe_only:
                hint = ""
                close = difflib.get_close_matches(kind, vocabulary, n=1,
                                                  cutoff=0.75)
                if close:
                    hint = f" (did you mean `{close[0]}`?)"
                else:
                    hint = (" (add a consumer, or declare it in "
                            "[tool.reprolint.rules.RL009] observe_only)")
                for site in record["emit_sites"]:
                    self.report_at(
                        site["path"], site["line"], 0,
                        f"event kind `{kind}` is emitted but never "
                        f"consumed{hint}")
            if record["consumers"] and not record["emit_sites"]:
                close = difflib.get_close_matches(kind, sorted(emitted),
                                                  n=1, cutoff=0.75)
                hint = f" (did you mean `{close[0]}`?)" if close else ""
                for site in record["consumers"]:
                    self.report_at(
                        site["path"], site["line"], 0,
                        f"event kind `{kind}` is consumed but never "
                        f"emitted{hint}")
            self._check_key_drift(record)

        # Emit sites whose kind the index could not resolve to a string
        # are outside the contract -- flag them so the registry stays
        # total over the tree.
        for emit in self.index.emits():
            if emit["kind"] is None:
                self.report_at(
                    emit["path"], emit["line"], emit.get("col", 0),
                    "emit kind is not a resolvable string constant; the "
                    "event registry cannot cover it",
                    snippet=emit.get("snippet", ""))
        return self.violations

    def _check_key_drift(self, record) -> None:
        sites = [s for s in record["emit_sites"] if not s["open"]]
        if len(sites) < 2:
            return
        canonical = sites[0]
        canonical_keys = set(canonical["keys"])
        for site in sites[1:]:
            keys = set(site["keys"])
            if keys == canonical_keys:
                continue
            missing = sorted(canonical_keys - keys)
            extra = sorted(keys - canonical_keys)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"extra {extra}")
            self.report_at(
                site["path"], site["line"], 0,
                f"emit of `{record['kind']}` drifts from the key set at "
                f"{canonical['path']}:{canonical['line']} "
                f"({'; '.join(detail)}); same-kind events must share one "
                f"schema")
