"""Developer tooling that ships with the reproduction.

Nothing under ``repro.devtools`` is imported by the runtime packages
(``core``, ``capture``, ``analysis``, ...); it exists so the invariants
those packages rely on -- determinism under a fixed seed, sim-time
discipline, ledger hygiene -- can be checked mechanically at PR time
instead of rediscovered as flaky benchmarks.

* :mod:`repro.devtools.lint` -- "reprolint", the AST-based invariant
  checker behind ``repro lint``.
"""
