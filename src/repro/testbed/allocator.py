"""The slice allocator: admission control, placement, and latency.

This is the control-plane behaviour Patchwork works around in the paper:

* Admission is against the site's *current* free-resource vector; the
  first dimension that does not fit is reported (usually dedicated NICs,
  the scarce resource).
* Allocation takes time that grows super-linearly with sliver count --
  "FABRIC's slice allocator often struggled when handling large slices"
  (Section 8.3), which is why Patchwork "prefers smaller slices".
  Allocation time is charged to the simulation clock.
* Control-plane calls can fail transiently via the fault injector.
* A *dry-run* entry point (:meth:`simulate`) models Patchwork "carrying
  out its own allocation simulations to ensure that resource requests
  can always be satisfied" (Section 8.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.obs import get_obs
from repro.testbed.errors import (
    AllocationError,
    InsufficientResourcesError,
    SliceNotFoundError,
    TransientBackendError,
)
from repro.testbed.faults import FaultInjector
from repro.testbed.site import Site
from repro.testbed.slice_model import Slice, SliceRequest


class SliceAllocator:
    """Allocates slices on one federation's sites."""

    # Latency model: seconds = BASE + PER_SLIVER * slivers ** EXPONENT.
    # With the defaults, a 3-sliver Patchwork request costs ~40 s and a
    # 60-sliver all-experiment mega-slice costs ~20 minutes, matching the
    # paper's observation that big slices allocate disproportionately
    # slowly.
    BASE_LATENCY = 20.0
    PER_SLIVER_LATENCY = 6.0
    LATENCY_EXPONENT = 1.3
    # Histogram bounds (seconds) spanning a 1-sliver request (~26 s)
    # through a mega-slice (~20 min).
    LATENCY_BOUNDS = (30.0, 60.0, 120.0, 300.0, 600.0, 1200.0)

    def __init__(self, sim: Simulator, sites: Dict[str, Site],
                 faults: Optional[FaultInjector] = None):
        self.sim = sim
        self.sites = sites
        self.faults = faults or FaultInjector()
        self.slices: Dict[str, Slice] = {}
        self.allocations_attempted = 0
        self.allocations_succeeded = 0

    # -- public API ------------------------------------------------------

    def allocation_latency(self, request: SliceRequest) -> float:
        """Predicted control-plane latency for a request (seconds)."""
        slivers = request.sliver_count()
        return self.BASE_LATENCY + self.PER_SLIVER_LATENCY * slivers ** self.LATENCY_EXPONENT

    def simulate(self, request: SliceRequest) -> Optional[Tuple[str, float, float]]:
        """Dry-run admission: the first shortfall, or None if it fits.

        Does not consume resources, charge latency, or inject faults --
        this is Patchwork's client-side allocation simulation.
        """
        site = self._site(request.site)
        return request.resource_vector().first_shortfall(site.available_resources())

    def allocate(self, request: SliceRequest) -> Slice:
        """Allocate a slice, charging allocation latency to the clock.

        Raises :class:`TransientBackendError` on injected control-plane
        failures and :class:`InsufficientResourcesError` when the site
        cannot fit the request.
        """
        self.allocations_attempted += 1
        registry = get_obs().registry
        registry.counter("allocator.attempted",
                         help="slice allocations attempted").inc()
        site = self._site(request.site)
        reason = self.faults.failure_reason(self.sim.now, request.site)
        if reason is not None:
            # Failures are not free: the caller waited for the backend.
            self._charge(self.BASE_LATENCY)
            registry.counter("allocator.failed",
                             help="slice allocations that failed").inc()
            raise TransientBackendError(f"{request.site}: {reason}")
        shortfall = self.simulate(request)
        if shortfall is not None:
            self._charge(self.BASE_LATENCY)
            registry.counter("allocator.failed",
                             help="slice allocations that failed").inc()
            resource, requested, available = shortfall
            raise InsufficientResourcesError(request.site, resource, requested, available)
        latency = self.allocation_latency(request)
        self._charge(latency)
        live = self._place(site, request)
        self.slices[live.name] = live
        self.allocations_succeeded += 1
        registry.counter("allocator.succeeded",
                         help="slice allocations that succeeded").inc()
        # Sim-time latency is seed-deterministic, so the histogram is
        # journal-safe (not volatile).
        registry.histogram(
            "allocator.latency_seconds", buckets=self.LATENCY_BOUNDS,
            help="modelled slice-allocation latency").observe(latency)
        return live

    def delete(self, slice_name: str) -> None:
        """Release every sliver of a slice back to its site."""
        live = self.slices.get(slice_name)
        if live is None:
            raise SliceNotFoundError(slice_name)
        if live.deleted:
            return
        site = self._site(live.site_name)
        for session in list(live.mirror_sessions):
            if session.source_port_id in site.switch.mirrors:
                site.switch.delete_mirror(session.source_port_id)
        live.mirror_sessions.clear()
        for vm in list(live.vms.values()):
            # A VM may already be gone (mid-run VM-death fault).
            if vm.name in vm.worker.vms:
                vm.worker.destroy_vm(vm)
        live.vms.clear()
        for nic in live.dedicated_nics + live.fpga_nics:
            nic.release()
        live.dedicated_nics.clear()
        live.fpga_nics.clear()
        for shared in live.shared_vf_nics:
            shared.release_vf()
        live.shared_vf_nics.clear()
        live.deleted = True

    # -- internals ------------------------------------------------------

    def _site(self, name: str) -> Site:
        try:
            return self.sites[name]
        except KeyError:
            raise SliceNotFoundError(f"unknown site {name}") from None

    def _charge(self, seconds: float) -> None:
        """Advance simulated time (processing any dataplane events due)."""
        self.sim.run(until=self.sim.now + seconds)

    def _place(self, site: Site, request: SliceRequest) -> Slice:
        """Place every node; roll back on partial failure."""
        live = Slice(request, site.name, self.sim.now)
        created_vms = []
        allocated_nics = []
        allocated_vfs = []
        try:
            for node in request.nodes:
                worker = site.worker_for_vm(node.cores, node.ram_gb, node.disk_gb)
                if worker is None:
                    # Aggregate check passed but no single worker fits.
                    raise InsufficientResourcesError(
                        site.name, "cores(contiguous)", node.cores, 0
                    )
                vm = worker.create_vm(
                    f"{request.name}/{node.name}", node.cores, node.ram_gb,
                    node.disk_gb, request.name,
                )
                created_vms.append(vm)
                live.vms[node.name] = vm
                for _ in range(node.dedicated_nics):
                    free = site.free_dedicated_nics()
                    if not free:
                        raise InsufficientResourcesError(site.name, "dedicated_nics", 1, 0)
                    nic = free[0]
                    nic.allocate(request.name)
                    allocated_nics.append(nic)
                    live.dedicated_nics.append(nic)
                    for port in nic.ports:
                        vm.grant_port(port)
                for _ in range(node.fpga_nics):
                    free_fpga = site.free_fpga_nics()
                    if not free_fpga:
                        raise InsufficientResourcesError(site.name, "fpga_nics", 1, 0)
                    fpga = free_fpga[0]
                    fpga.allocate(request.name)
                    allocated_nics.append(fpga)
                    live.fpga_nics.append(fpga)
                    for port in fpga.ports:
                        vm.grant_port(port)
                for _ in range(node.shared_nic_ports):
                    shared = next(
                        (n for n in site.shared_nics if n.vfs_in_use < n.vf_slots), None
                    )
                    if shared is None:
                        raise InsufficientResourcesError(site.name, "shared_nic_slots", 1, 0)
                    shared.allocate_vf()
                    allocated_vfs.append(shared)
                    live.shared_vf_nics.append(shared)
                    vm.grant_port(shared.ports[0])
        except AllocationError as exc:
            # Roll back the partial placement.  Only admission failures
            # are expected here (the aggregate check can pass while no
            # single worker fits); anything else is a bug and must
            # propagate unhandled rather than be silently unwound.
            get_obs().journal.emit(
                "allocator-rollback", t=self.sim.now, site=site.name,
                slice=request.name, error=str(exc),
                vms_released=len(created_vms),
                nics_released=len(allocated_nics),
                vfs_released=len(allocated_vfs))
            for vm in created_vms:
                vm.worker.destroy_vm(vm)
            for nic in allocated_nics:
                nic.release()
            for shared in allocated_vfs:
                shared.release_vf()
            raise
        return live
