"""A FABRIC site: one rack embedded in an institution's network.

A :class:`Site` owns a ToR switch, a set of worker machines, and the
NICs installed in those workers.  Building a site wires every NIC port
to a switch downlink port; uplink ports are created by the federation
builder when it connects sites together.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.netsim.engine import Simulator
from repro.testbed.hosts import VM, Worker
from repro.testbed.nic import DedicatedNIC, FPGANic, Nic, NicPort, SharedNIC
from repro.testbed.resources import ResourceCapacity
from repro.testbed.switch import DOWNLINK, Switch, SwitchPort, UPLINK


class Site:
    """One site of the federation."""

    def __init__(self, sim: Simulator, name: str, default_rate_bps: float = 100e9):
        self.sim = sim
        self.name = name
        self.switch = Switch(sim, f"tor-{name}", default_rate_bps=default_rate_bps)
        self.workers: List[Worker] = []
        self.dedicated_nics: List[DedicatedNIC] = []
        self.shared_nics: List[SharedNIC] = []
        self.fpga_nics: List[FPGANic] = []
        self._port_counter = itertools.count(1)
        self._port_for_nic_port: Dict[str, str] = {}

    # -- construction -----------------------------------------------------

    def add_worker(self, worker: Worker) -> Worker:
        self.workers.append(worker)
        return worker

    def install_nic(self, worker: Worker, nic: Nic) -> Nic:
        """Install a NIC in a worker and cable its ports to the switch."""
        worker.add_nic(nic)
        if isinstance(nic, DedicatedNIC):
            self.dedicated_nics.append(nic)
        elif isinstance(nic, SharedNIC):
            self.shared_nics.append(nic)
        elif isinstance(nic, FPGANic):
            self.fpga_nics.append(nic)
        for port in nic.ports:
            port_id = f"p{next(self._port_counter)}"
            switch_port = self.switch.add_port(port_id, DOWNLINK, rate_bps=nic.rate_bps)
            switch_port.attached_to = port.name
            port.attach(switch_port.link, port_id)
            self._port_for_nic_port[port.name] = port_id
        return nic

    def add_uplink_port(self, rate_bps: Optional[float] = None) -> SwitchPort:
        """Create an uplink port (cabled to a peer by the federation)."""
        port_id = f"u{next(self._port_counter)}"
        return self.switch.add_port(port_id, UPLINK, rate_bps=rate_bps)

    # -- queries ------------------------------------------------------------

    def switch_port_for(self, nic_port: NicPort) -> str:
        """The switch port id a NIC port is cabled to."""
        return self._port_for_nic_port[nic_port.name]

    def free_dedicated_nics(self) -> List[DedicatedNIC]:
        """Dedicated NICs not currently allocated to any slice."""
        return [nic for nic in self.dedicated_nics if not nic.allocated]

    def free_fpga_nics(self) -> List[FPGANic]:
        """FPGA NICs not currently allocated to any slice."""
        return [nic for nic in self.fpga_nics if not nic.allocated]

    def available_resources(self) -> ResourceCapacity:
        """The site's current free-resource vector (one allocator view)."""
        total = ResourceCapacity()
        for worker in self.workers:
            total = total + worker.free
        shared_slots = sum(nic.vf_slots - nic.vfs_in_use for nic in self.shared_nics)
        return ResourceCapacity(
            cores=total.cores,
            ram_gb=total.ram_gb,
            disk_gb=total.disk_gb,
            dedicated_nics=len(self.free_dedicated_nics()),
            shared_nic_slots=shared_slots,
            fpga_nics=len(self.free_fpga_nics()),
        )

    def total_resources(self) -> ResourceCapacity:
        """The site's installed-capacity vector."""
        total = ResourceCapacity()
        for worker in self.workers:
            total = total + worker.capacity
        return ResourceCapacity(
            cores=total.cores,
            ram_gb=total.ram_gb,
            disk_gb=total.disk_gb,
            dedicated_nics=len(self.dedicated_nics),
            shared_nic_slots=sum(nic.vf_slots for nic in self.shared_nics),
            fpga_nics=len(self.fpga_nics),
        )

    def worker_for_vm(self, cores: int, ram_gb: float, disk_gb: float) -> Optional[Worker]:
        """First worker that can host a VM of the given shape."""
        for worker in self.workers:
            if worker.can_host(cores, ram_gb, disk_gb):
                return worker
        return None

    def __repr__(self) -> str:
        return (
            f"<Site {self.name} workers={len(self.workers)} "
            f"dedicated={len(self.dedicated_nics)} fpga={len(self.fpga_nics)} "
            f"uplinks={len(self.switch.uplinks())}>"
        )
