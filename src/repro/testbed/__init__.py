"""A model of the FABRIC federated testbed.

This package is the substrate that the paper's system runs on.  It
implements, in Python, the parts of FABRIC that Patchwork interacts
with:

* **Sites** (:mod:`repro.testbed.site`): a rack with a ToR switch,
  worker machines, shared/dedicated ConnectX NICs and Alveo FPGA NICs.
* **The switch dataplane** (:mod:`repro.testbed.switch`): MAC-table
  forwarding over :mod:`repro.netsim` channels, per-port counters, and
  the *port mirroring* primitive with its real overflow behaviour.
* **Slices and the allocator** (:mod:`repro.testbed.slice_model`,
  :mod:`repro.testbed.allocator`): admission control over per-site
  inventories, allocation-latency modelling (large slices are slow,
  which is why Patchwork prefers small slices), and transient back-end
  fault injection (the cause of the paper's "Failed" runs in Fig 10).
* **The information model** (:mod:`repro.testbed.information_model`): a
  queryable topology graph, like FABRIC's published information model,
  used by the Section-5 study to count uplinks/downlinks.
* **The federation builder** (:mod:`repro.testbed.federation`): builds a
  FABRIC-like deployment -- ~30 heterogeneous sites with realistic
  uplink degrees, NIC counts, and link speeds.

Everything Patchwork needs is reachable through the facade in
:mod:`repro.testbed.api`, mirroring how the real Patchwork only touches
FABRIC through its public APIs (requirement R2, "testbed service
overlay").
"""

from repro.testbed.resources import ResourceCapacity
from repro.testbed.errors import (
    AllocationError,
    InsufficientResourcesError,
    MirrorConflictError,
    TestbedError,
    TransientBackendError,
)
from repro.testbed.federation import Federation, FederationBuilder, SiteProfile
from repro.testbed.site import Site
from repro.testbed.switch import MirrorSession, Switch, SwitchPort
from repro.testbed.slice_model import NodeRequest, Slice, SliceRequest
from repro.testbed.allocator import SliceAllocator
from repro.testbed.information_model import InformationModel
from repro.testbed.api import TestbedAPI

__all__ = [
    "ResourceCapacity",
    "AllocationError",
    "InsufficientResourcesError",
    "MirrorConflictError",
    "TestbedError",
    "TransientBackendError",
    "Federation",
    "FederationBuilder",
    "SiteProfile",
    "Site",
    "MirrorSession",
    "Switch",
    "SwitchPort",
    "NodeRequest",
    "Slice",
    "SliceRequest",
    "SliceAllocator",
    "InformationModel",
    "TestbedAPI",
]
