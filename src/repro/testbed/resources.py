"""Resource accounting.

A :class:`ResourceCapacity` is a vector of the sliver-able resources at
a site (or requested by a slice): CPU cores, RAM, disk, dedicated NICs,
shared-NIC slots, and FPGA NICs.  The allocator does vector arithmetic
and comparisons on these.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, Optional, Tuple


@dataclass(frozen=True)
class ResourceCapacity:
    """An immutable resource vector.  All quantities are counts except
    ``ram_gb`` and ``disk_gb``.

    ``dedicated_nics`` are single-user dual-port ConnectX cards -- the
    paper calls these "the most scarce resource" (usually 2-6 per site).
    ``shared_nic_slots`` are virtual-function slots on the site's shared
    ConnectX card.  ``fpga_nics`` are Alveo cards usable for offload.
    """

    cores: int = 0
    ram_gb: float = 0.0
    disk_gb: float = 0.0
    dedicated_nics: int = 0
    shared_nic_slots: int = 0
    fpga_nics: int = 0

    def __add__(self, other: "ResourceCapacity") -> "ResourceCapacity":
        return ResourceCapacity(
            *(getattr(self, f.name) + getattr(other, f.name) for f in fields(self))
        )

    def __sub__(self, other: "ResourceCapacity") -> "ResourceCapacity":
        return ResourceCapacity(
            *(getattr(self, f.name) - getattr(other, f.name) for f in fields(self))
        )

    def __mul__(self, factor: int) -> "ResourceCapacity":
        return ResourceCapacity(
            *(getattr(self, f.name) * factor for f in fields(self))
        )

    def fits_within(self, available: "ResourceCapacity") -> bool:
        """True if every component of self is <= the available vector."""
        return all(
            getattr(self, f.name) <= getattr(available, f.name) for f in fields(self)
        )

    def first_shortfall(self, available: "ResourceCapacity") -> Optional[Tuple[str, float, float]]:
        """The first resource dimension that does not fit, if any.

        Returns ``(name, requested, available)`` or None.  Dimension
        order follows the dataclass field order, so error messages are
        stable.
        """
        for f in fields(self):
            requested = getattr(self, f.name)
            have = getattr(available, f.name)
            if requested > have:
                return f.name, requested, have
        return None

    def is_nonnegative(self) -> bool:
        """True when no component has gone below zero."""
        return all(getattr(self, f.name) >= 0 for f in fields(self))

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view, useful for logs and CSV rows."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def components(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(name, value)`` pairs in field order."""
        for f in fields(self):
            yield f.name, getattr(self, f.name)

    @staticmethod
    def zero() -> "ResourceCapacity":
        return ResourceCapacity()
