"""Slices and slivers.

Researchers "create a *slice* that reserves resources for their
experiments; reservable resources are called *slivers*" (paper Section
3).  A :class:`SliceRequest` describes what is wanted at one site; the
allocator turns it into a live :class:`Slice` holding VM and NIC slivers
plus any port-mirror sessions created under it.  Deleting the slice
returns everything to the site.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.testbed.hosts import VM
from repro.testbed.nic import DedicatedNIC, FPGANic
from repro.testbed.resources import ResourceCapacity
from repro.testbed.switch import MirrorSession

_slice_ids = itertools.count(1)


@dataclass
class NodeRequest:
    """One requested VM and the NICs it should own.

    The defaults are Patchwork's listening-node shape from Section 6.2.1:
    2 cores, 8 GB RAM, 100 GB storage, one dedicated dual-port NIC.
    """

    name: str
    cores: int = 2
    ram_gb: float = 8.0
    disk_gb: float = 100.0
    dedicated_nics: int = 1
    shared_nic_ports: int = 0
    fpga_nics: int = 0

    def resource_vector(self) -> ResourceCapacity:
        return ResourceCapacity(
            cores=self.cores,
            ram_gb=self.ram_gb,
            disk_gb=self.disk_gb,
            dedicated_nics=self.dedicated_nics,
            shared_nic_slots=self.shared_nic_ports,
            fpga_nics=self.fpga_nics,
        )


@dataclass
class SliceRequest:
    """A slice request scoped to a single site.

    (Multi-site experiments are expressed as one request per site, which
    matches how Patchwork decomposes: every site runs its own instance.)
    """

    site: str
    nodes: List[NodeRequest]
    name: str = ""
    lease_hours: float = 24.0

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"slice-{next(_slice_ids)}"
        if not self.nodes:
            raise ValueError("a slice request needs at least one node")

    def resource_vector(self) -> ResourceCapacity:
        """Total resources across all requested nodes."""
        total = ResourceCapacity()
        for node in self.nodes:
            total = total + node.resource_vector()
        return total

    def sliver_count(self) -> int:
        """Number of slivers (VMs + NICs); drives allocation latency."""
        return sum(
            1 + n.dedicated_nics + n.shared_nic_ports + n.fpga_nics for n in self.nodes
        )

    def scaled_down(self) -> Optional["SliceRequest"]:
        """One step of iterative back-off: drop the last node.

        Returns None when no smaller request exists.  This matches the
        paper: "at each back-off, a dedicated NIC (with 2 ports) is
        reduced from Patchwork's request" along with its VM.
        """
        if len(self.nodes) <= 1:
            return None
        return SliceRequest(
            site=self.site,
            nodes=self.nodes[:-1],
            name=f"{self.name}~{len(self.nodes) - 1}",
            lease_hours=self.lease_hours,
        )


class Slice:
    """A live slice: the slivers granted for one request."""

    def __init__(self, request: SliceRequest, site_name: str, created_at: float):
        self.request = request
        self.name = request.name
        self.site_name = site_name
        self.created_at = created_at
        self.lease_end = created_at + request.lease_hours * 3600.0
        self.vms: Dict[str, VM] = {}
        self.dedicated_nics: List[DedicatedNIC] = []
        self.fpga_nics: List[FPGANic] = []
        self.shared_vf_nics: List[object] = []  # SharedNICs we hold a VF on
        self.mirror_sessions: List[MirrorSession] = []
        self.deleted = False

    @property
    def active(self) -> bool:
        return not self.deleted

    def vm(self, name: str) -> VM:
        """Look up one of the slice's VMs by node name."""
        return self.vms[name]

    def __repr__(self) -> str:
        state = "deleted" if self.deleted else "active"
        return (
            f"<Slice {self.name}@{self.site_name} vms={len(self.vms)} "
            f"nics={len(self.dedicated_nics)} {state}>"
        )
