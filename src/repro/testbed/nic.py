"""NIC models.

Three kinds of NIC appear on FABRIC sites and in the paper:

* :class:`SharedNIC` -- a ConnectX card whose virtual functions are
  shared among many users (the paper's example site shares one card
  among 381 users).  Experiment VMs usually attach here.
* :class:`DedicatedNIC` -- a single-user, dual-port ConnectX card.
  Patchwork receives mirrored traffic on these; they are the scarce
  resource that drives back-off.
* :class:`FPGANic` -- an Alveo FPGA card.  In the real system a P4
  program on the card filters/truncates/samples at line rate before
  frames reach the DPDK writer; our capture model
  (:mod:`repro.capture.fpga`) attaches to one of these.

A NIC owns one or more :class:`NicPort` objects.  A port is the
device-side endpoint of a switch port's duplex link: ``send`` offers a
frame toward the switch, and receivers subscribe to frames the switch
transmits to the port.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from repro.netsim.frame import Frame
from repro.netsim.link import DuplexLink

Receiver = Callable[[Frame], None]

_nic_ids = itertools.count(1)


class NicPort:
    """One physical port of a NIC, attachable to a switch port."""

    def __init__(self, nic: "Nic", index: int):
        self.nic = nic
        self.index = index
        self.link: Optional[DuplexLink] = None
        self.switch_port_id: Optional[str] = None
        self._receivers: List[Receiver] = []

    @property
    def name(self) -> str:
        return f"{self.nic.name}.p{self.index}"

    def attach(self, link: DuplexLink, switch_port_id: str) -> None:
        """Wire this port to a switch port's link (done by the site)."""
        if self.link is not None:
            raise RuntimeError(f"{self.name} is already attached")
        self.link = link
        self.switch_port_id = switch_port_id
        link.tx.connect(self._deliver)

    def send(self, frame: Frame) -> bool:
        """Transmit a frame toward the switch.  False if dropped at the
        device-side queue."""
        if self.link is None:
            raise RuntimeError(f"{self.name} is not attached to a switch")
        return self.link.rx.offer(frame)

    def receive(self, receiver: Receiver) -> None:
        """Subscribe to frames arriving from the switch."""
        self._receivers.append(receiver)

    def stop_receiving(self, receiver: Receiver) -> None:
        """Unsubscribe a receiver."""
        self._receivers.remove(receiver)

    def _deliver(self, frame: Frame) -> None:
        if self._receivers:
            for receiver in tuple(self._receivers):
                receiver(frame)


class Nic:
    """Base NIC: a named card with ``port_count`` ports."""

    kind = "nic"

    def __init__(self, name: str = "", port_count: int = 1, rate_bps: float = 100e9):
        self.name = name or f"{self.kind}{next(_nic_ids)}"
        self.rate_bps = rate_bps
        self.ports = [NicPort(self, i) for i in range(port_count)]
        self.owner_slice: Optional[str] = None

    @property
    def allocated(self) -> bool:
        return self.owner_slice is not None

    def allocate(self, slice_name: str) -> None:
        if self.allocated:
            raise RuntimeError(f"{self.name} already allocated to {self.owner_slice}")
        self.owner_slice = slice_name

    def release(self) -> None:
        self.owner_slice = None

    def __repr__(self) -> str:
        owner = f" owner={self.owner_slice}" if self.owner_slice else ""
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}{owner}>"


class SharedNIC(Nic):
    """A ConnectX card shared among users via virtual functions."""

    kind = "shared-nic"

    def __init__(self, name: str = "", rate_bps: float = 100e9, vf_slots: int = 381):
        super().__init__(name, port_count=1, rate_bps=rate_bps)
        self.vf_slots = vf_slots
        self.vfs_in_use = 0

    def allocate_vf(self) -> None:
        if self.vfs_in_use >= self.vf_slots:
            raise RuntimeError(f"{self.name}: no free virtual functions")
        self.vfs_in_use += 1

    def release_vf(self) -> None:
        if self.vfs_in_use <= 0:
            raise RuntimeError(f"{self.name}: no VFs to release")
        self.vfs_in_use -= 1


class DedicatedNIC(Nic):
    """A single-user dual-port ConnectX card."""

    kind = "dedicated-nic"

    def __init__(self, name: str = "", rate_bps: float = 100e9):
        super().__init__(name, port_count=2, rate_bps=rate_bps)


class FPGANic(Nic):
    """An Alveo FPGA card programmable with a P4 bitstream."""

    kind = "fpga-nic"

    def __init__(self, name: str = "", rate_bps: float = 100e9):
        super().__init__(name, port_count=2, rate_bps=rate_bps)
        self.bitstream: Optional[str] = None

    def program(self, bitstream: str) -> None:
        """Load a named bitstream (the capture model checks for one)."""
        self.bitstream = bitstream
