"""Exceptions raised by the testbed model.

The hierarchy distinguishes the failure modes the paper's Fig 10
distinguishes: *transient back-end problems* (retryable; caused clusters
of "Failed" runs around 10-15 Sept in the paper) versus *insufficient
resources at a site* (triggers Patchwork's iterative back-off and, when
back-off bottoms out, a "Degraded" or "Failed" outcome).
"""

from __future__ import annotations


class TestbedError(Exception):
    """Base class for all testbed-side failures.

    ``retryable`` marks classes a client may reasonably retry later
    (the control plane refused for reasons unrelated to the request
    itself).  Recovery code should use :func:`is_retryable` rather than
    naming exception classes.
    """

    retryable = False


class AllocationError(TestbedError):
    """A slice request was rejected."""


class InsufficientResourcesError(AllocationError):
    """The site cannot satisfy the request's resource totals.

    Carries which resource ran out so back-off logic (and tests) can see
    why.  The real FABRIC API reports this in the slice's error state.
    """

    def __init__(self, site: str, resource: str, requested: float, available: float):
        self.site = site
        self.resource = resource
        self.requested = requested
        self.available = available
        super().__init__(
            f"site {site}: requested {requested:g} {resource} but only {available:g} available"
        )


class TransientBackendError(TestbedError):
    """The testbed control plane failed for reasons unrelated to capacity.

    Patchwork treats these as retryable-later and records the run as
    "Failed" if they persist.
    """

    retryable = True


class MirrorConflictError(TestbedError):
    """A port mirror could not be created.

    Only one mirror session may exist per source port ("only a single
    FABRIC user at a time can mirror a specific switch port" -- paper
    Section 6.3), and a mirror-destination port can serve one session.
    """


class SliceNotFoundError(TestbedError):
    """An operation referenced a slice the testbed does not know."""


def is_retryable(exc: BaseException) -> bool:
    """True if a failed control-plane call is worth retrying later."""
    return isinstance(exc, TestbedError) and exc.retryable
