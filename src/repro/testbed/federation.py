"""The federation: sites wired together into a testbed.

A :class:`Federation` owns the simulator, the sites, the inter-site
links, the fault injector, and the slice allocator.  The
:class:`FederationBuilder` constructs a FABRIC-like deployment: ~30
heterogeneous sites (universities, IXPs, international points of
presence) with realistic resource spreads -- every site has far more
downlinks than uplinks, uplink counts are similar across sites, and
dedicated NICs are scarce (2-6 per site), all matching the paper's
Section 5 study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.netsim.engine import Simulator
from repro.testbed.allocator import SliceAllocator
from repro.testbed.faults import FaultInjector
from repro.testbed.hosts import Worker
from repro.testbed.nic import DedicatedNIC, FPGANic, SharedNIC
from repro.testbed.site import Site
from repro.util.rng import SeedSequenceFactory

# Site codes used for the default FABRIC-like build.  These are
# pseudonyms in the spirit of the paper's anonymized S0-S29 labels, with
# a few recognizable FABRIC locations for readability of examples.
DEFAULT_SITE_NAMES = [
    "STAR", "MICH", "UTAH", "TACC", "NCSA", "WASH", "DALL", "SALT",
    "MASS", "MAXG", "UCSD", "CLEM", "GPNN", "INDI", "KANS", "LBNL",
    "RENC", "UKYT", "FIUM", "SRIC", "PSCA", "CERN", "AMST", "TOKY",
    "BRIS", "HAWI", "SEAT", "ATLA", "NEWY", "LOSA",
]


@dataclass
class SiteProfile:
    """Construction parameters for one site."""

    name: str
    workers: int = 4
    cores_per_worker: int = 64
    ram_gb_per_worker: float = 512.0
    disk_gb_per_worker: float = 10_000.0
    dedicated_nics: int = 4
    shared_nics: int = 2
    shared_vf_slots: int = 381
    fpga_nics: int = 1
    nic_rate_bps: float = 100e9

    def build(self, sim: Simulator) -> Site:
        """Materialize the site: workers, NICs, switch cabling."""
        site = Site(sim, self.name, default_rate_bps=self.nic_rate_bps)
        workers = [
            site.add_worker(
                Worker(
                    f"{self.name}-w{i}",
                    self.name,
                    cores=self.cores_per_worker,
                    ram_gb=self.ram_gb_per_worker,
                    disk_gb=self.disk_gb_per_worker,
                )
            )
            for i in range(self.workers)
        ]
        for i in range(self.dedicated_nics):
            site.install_nic(
                workers[i % len(workers)],
                DedicatedNIC(f"{self.name}-dn{i}", rate_bps=self.nic_rate_bps),
            )
        for i in range(self.shared_nics):
            site.install_nic(
                workers[i % len(workers)],
                SharedNIC(f"{self.name}-sn{i}", rate_bps=self.nic_rate_bps,
                          vf_slots=self.shared_vf_slots),
            )
        for i in range(self.fpga_nics):
            site.install_nic(
                workers[i % len(workers)],
                FPGANic(f"{self.name}-fpga{i}", rate_bps=self.nic_rate_bps),
            )
        return site


class Federation:
    """A running testbed: sites + inter-site links + control plane."""

    def __init__(self, sim: Optional[Simulator] = None,
                 faults: Optional[FaultInjector] = None):
        self.sim = sim or Simulator()
        self.sites: Dict[str, Site] = {}
        self.faults = faults or FaultInjector()
        self.allocator = SliceAllocator(self.sim, self.sites, self.faults)
        self.graph = nx.Graph()  # site-level topology
        self._edge_ports: Dict[Tuple[str, str], Tuple[str, str]] = {}

    # -- construction -----------------------------------------------------

    def add_site(self, site: Site) -> Site:
        if site.name in self.sites:
            raise ValueError(f"duplicate site {site.name}")
        self.sites[site.name] = site
        self.graph.add_node(site.name)
        return site

    def connect_sites(self, a: str, b: str, rate_bps: float = 100e9,
                      propagation_delay: float = 0.005) -> None:
        """Create an inter-site link: one uplink port on each ToR, cabled
        so each side's Tx feeds the other side's ingress."""
        site_a, site_b = self.sites[a], self.sites[b]
        port_a = site_a.add_uplink_port(rate_bps=rate_bps)
        port_b = site_b.add_uplink_port(rate_bps=rate_bps)
        port_a.attached_to = f"{b}:{port_b.port_id}"
        port_b.attached_to = f"{a}:{port_a.port_id}"
        port_a.link.tx.propagation_delay = propagation_delay
        port_b.link.tx.propagation_delay = propagation_delay
        port_a.link.tx.connect(port_b.link.rx.offer)
        port_b.link.tx.connect(port_a.link.rx.offer)
        self.graph.add_edge(a, b, rate_bps=rate_bps, delay=propagation_delay)
        self._edge_ports[(a, b)] = (port_a.port_id, port_b.port_id)
        self._edge_ports[(b, a)] = (port_b.port_id, port_a.port_id)

    # -- routing ------------------------------------------------------------

    def uplink_port_toward(self, from_site: str, to_site: str) -> str:
        """The uplink port id at ``from_site`` on the shortest path to
        ``to_site``."""
        path = nx.shortest_path(self.graph, from_site, to_site)
        if len(path) < 2:
            raise ValueError(f"{from_site} and {to_site} are the same site")
        next_hop = path[1]
        return self._edge_ports[(from_site, next_hop)][0]

    def register_endpoint(self, mac: bytes, site_name: str, switch_port_id: str) -> None:
        """Make ``mac`` reachable testbed-wide.

        Registers the local MAC-table entry and installs next-hop
        entries at every other site along shortest paths, modelling the
        underlay's learned/provisioned reachability.
        """
        self.sites[site_name].switch.register_mac(mac, switch_port_id)
        for other_name in self.sites:
            if other_name == site_name:
                continue
            if not nx.has_path(self.graph, other_name, site_name):
                continue
            uplink = self.uplink_port_toward(other_name, site_name)
            self.sites[other_name].switch.register_mac(mac, uplink)
        # Transit sites along paths also need the entry; shortest-path
        # next hops from every site already cover them because every
        # site got an entry above.

    # -- queries ------------------------------------------------------------

    def site(self, name: str) -> Site:
        return self.sites[name]

    def site_names(self) -> List[str]:
        return sorted(self.sites)

    def __repr__(self) -> str:
        return f"<Federation sites={len(self.sites)} links={self.graph.number_of_edges()}>"


class FederationBuilder:
    """Builds FABRIC-like federations.

    The default build produces 30 sites whose resource quantities vary
    (drawn reproducibly from the seed): 2-8 workers, 2-6 dedicated NICs,
    0-2 FPGA NICs.  The topology is a national-backbone ring over the
    first several sites with the remaining sites dual- or single-homed
    onto it, giving every site 1-3 uplinks -- the paper's Fig 2 shape
    (uplink counts similar across sites, downlinks dominating).
    """

    def __init__(self, seed: int = 42):
        self.seeds = SeedSequenceFactory(seed)

    def build(
        self,
        site_names: Optional[Iterable[str]] = None,
        sim: Optional[Simulator] = None,
        faults: Optional[FaultInjector] = None,
    ) -> Federation:
        names = list(site_names) if site_names is not None else list(DEFAULT_SITE_NAMES)
        if len(names) < 2:
            raise ValueError("a federation needs at least two sites")
        rng = self.seeds.rng("federation/build")
        federation = Federation(sim=sim, faults=faults)
        for profile in self._profiles(names, rng):
            federation.add_site(profile.build(federation.sim))
        self._wire_topology(federation, names, rng)
        return federation

    def _profiles(self, names, rng) -> List[SiteProfile]:
        """Draw per-site profiles.

        Backbone sites (the first several, which also aggregate leaf
        uplinks) are core PoPs with larger racks, so every site keeps
        more downlinks than uplinks -- the Fig 2 shape.
        """
        backbone_size = min(8, len(names))
        profiles = []
        for i, name in enumerate(names):
            if i < backbone_size:
                profiles.append(SiteProfile(
                    name=name,
                    workers=int(rng.integers(5, 9)),
                    dedicated_nics=int(rng.integers(4, 7)),
                    shared_nics=int(rng.integers(2, 4)),
                    fpga_nics=int(rng.integers(1, 3)),
                ))
            else:
                profiles.append(SiteProfile(
                    name=name,
                    workers=int(rng.integers(2, 7)),
                    dedicated_nics=int(rng.integers(2, 7)),
                    shared_nics=int(rng.integers(1, 4)),
                    fpga_nics=int(rng.integers(0, 3)),
                ))
        return profiles

    def profiles_only(self, site_names: Optional[Iterable[str]] = None) -> List[SiteProfile]:
        """The site profiles the default build would use (for the study)."""
        names = list(site_names) if site_names is not None else list(DEFAULT_SITE_NAMES)
        rng = self.seeds.rng("federation/build")
        return self._profiles(names, rng)

    def _wire_topology(self, federation: Federation, names: List[str],
                       rng) -> None:
        backbone_size = min(8, len(names))
        backbone = names[:backbone_size]
        # Ring over the backbone: every backbone site gets two uplinks.
        for i, name in enumerate(backbone):
            peer = backbone[(i + 1) % backbone_size]
            if not federation.graph.has_edge(name, peer):
                delay = float(rng.uniform(0.002, 0.04))
                federation.connect_sites(name, peer, rate_bps=100e9,
                                         propagation_delay=delay)
        # Remaining sites home onto one or two backbone sites.  Homes
        # rotate round-robin so no backbone site drowns in uplinks.
        rotation = 0
        for name in names[backbone_size:]:
            home_count = int(rng.integers(1, 3))
            for _ in range(home_count):
                home = backbone[rotation % backbone_size]
                rotation += 1
                if federation.graph.has_edge(name, home):
                    continue
                delay = float(rng.uniform(0.002, 0.06))
                federation.connect_sites(name, home, rate_bps=100e9,
                                         propagation_delay=delay)
