"""The top-of-rack switch: forwarding, counters, and port mirroring.

The switch is where the paper's key dataplane mechanics live:

* **Forwarding** is MAC-table based.  Endpoints are registered when NICs
  attach (and the table also learns from source addresses), so frames
  flow VM -> NIC -> switch -> NIC -> VM with real serialization delays
  and queueing from :mod:`repro.netsim`.
* **Counters** per port mirror SNMP interface MIB counters and are what
  the telemetry poller reads.
* **Port mirroring** clones the frames crossing a source port's Rx
  and/or Tx channels onto the *Tx channel of a destination port*.  The
  destination channel is a real rate-limited serializer, so when
  Mirrored(Tx) + Mirrored(Rx) exceeds its line rate the clone stream
  overflows the egress queue and frames are silently dropped at the
  switch -- exactly the incomplete-sample hazard of paper Section 6.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.netsim.link import DuplexLink
from repro.testbed.errors import MirrorConflictError

PortKind = str  # "downlink" | "uplink"

DOWNLINK = "downlink"
UPLINK = "uplink"

VALID_MIRROR_DIRECTIONS = frozenset({"rx", "tx"})


class SwitchPort:
    """One switch port and its duplex link to the attached device.

    Direction naming is from the switch's perspective: the ``tx``
    channel carries frames out of the switch, ``rx`` carries frames into
    it.  Devices (NICs, remote switches) offer frames to ``link.rx`` and
    subscribe to ``link.tx``.
    """

    def __init__(self, switch: "Switch", port_id: str, kind: PortKind, link: DuplexLink):
        self.switch = switch
        self.port_id = port_id
        self.kind = kind
        self.link = link
        self.attached_to: Optional[str] = None  # description of the device

    @property
    def rate_bps(self) -> float:
        return self.link.rate_bps

    def counters(self) -> Dict[str, int]:
        """SNMP-style cumulative counters for this port."""
        return {
            "tx_frames": self.link.tx.stats.tx_frames,
            "tx_bytes": self.link.tx.stats.tx_bytes,
            "tx_drops": self.link.tx.stats.dropped_frames,
            "tx_dropped_bytes": self.link.tx.stats.dropped_bytes,
            "rx_frames": self.link.rx.stats.tx_frames,
            "rx_bytes": self.link.rx.stats.tx_bytes,
            "rx_drops": self.link.rx.stats.dropped_frames,
            "rx_dropped_bytes": self.link.rx.stats.dropped_bytes,
            # End-to-end delivered counts (past propagation).  Not part
            # of the SNMP MIB the poller walks; the conservation ledger
            # uses them to account for frames still in flight.
            "tx_delivered": self.link.tx.stats.delivered_frames,
            "rx_delivered": self.link.rx.stats.delivered_frames,
        }

    def __repr__(self) -> str:
        return f"<SwitchPort {self.switch.name}:{self.port_id} {self.kind}>"


@dataclass
class MirrorSession:
    """An active port-mirroring session.

    ``directions`` is a subset of {"rx", "tx"}; both by default, which is
    the configuration that can overflow the destination port.
    """

    source_port_id: str
    dest_port_id: str
    directions: FrozenSet[str]
    owner_slice: str = ""

    def __post_init__(self) -> None:
        if not self.directions or not self.directions <= VALID_MIRROR_DIRECTIONS:
            raise ValueError(f"bad mirror directions: {self.directions}")


class Switch:
    """A ToR switch (Cisco 5700 / Ciena 8190 class in FABRIC racks)."""

    def __init__(self, sim: Simulator, name: str, default_rate_bps: float = 100e9,
                 queue_limit_bytes: int = 1 << 20):
        self.sim = sim
        self.name = name
        self.default_rate_bps = default_rate_bps
        self.queue_limit_bytes = queue_limit_bytes
        self.ports: Dict[str, SwitchPort] = {}
        self.mac_table: Dict[bytes, str] = {}
        self.mirrors: Dict[str, MirrorSession] = {}  # keyed by source port id
        self._mirror_taps: Dict[str, List] = {}
        self.unknown_dst_frames = 0
        # Optional INT-style stamper (repro.telemetry.query.inband): when
        # installed, mirrored clones get a telemetry shim recording the
        # egress queue state at clone time.  Duck-typed so the testbed
        # layer stays independent of the telemetry package.
        self.int_stamper = None

    # -- port management --------------------------------------------------

    def add_port(
        self,
        port_id: str,
        kind: PortKind = DOWNLINK,
        rate_bps: Optional[float] = None,
        propagation_delay: float = 0.0,
    ) -> SwitchPort:
        """Create a port with its duplex link and start forwarding on it."""
        if port_id in self.ports:
            raise ValueError(f"duplicate port id {port_id}")
        if kind not in (DOWNLINK, UPLINK):
            raise ValueError(f"bad port kind {kind!r}")
        link = DuplexLink(
            self.sim,
            rate_bps or self.default_rate_bps,
            queue_limit_bytes=self.queue_limit_bytes,
            propagation_delay=propagation_delay,
            name=f"{self.name}:{port_id}",
        )
        port = SwitchPort(self, port_id, kind, link)
        # Frames that make it through the rx channel enter the pipeline.
        link.rx.connect(lambda frame, pid=port_id: self._on_ingress(pid, frame))
        self.ports[port_id] = port
        return port

    def downlinks(self) -> List[SwitchPort]:
        """Ports facing servers at this site."""
        return [p for p in self.ports.values() if p.kind == DOWNLINK]

    def uplinks(self) -> List[SwitchPort]:
        """Ports facing other FABRIC sites."""
        return [p for p in self.ports.values() if p.kind == UPLINK]

    # -- forwarding --------------------------------------------------------

    def register_mac(self, mac: bytes, port_id: str) -> None:
        """Install a static MAC-table entry (endpoint registration)."""
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        if port_id not in self.ports:
            raise KeyError(f"unknown port {port_id}")
        self.mac_table[bytes(mac)] = port_id

    def _on_ingress(self, ingress_port_id: str, frame: Frame) -> None:
        if len(frame.head) < 12:
            self.unknown_dst_frames += 1
            return
        dst_mac = bytes(frame.head[0:6])
        src_mac = bytes(frame.head[6:12])
        # Source learning keeps the table warm for reply traffic.
        self.mac_table.setdefault(src_mac, ingress_port_id)
        out_port_id = self.mac_table.get(dst_mac)
        if out_port_id is None:
            self.unknown_dst_frames += 1
            return
        # out == ingress is legitimate hairpin traffic: two virtual
        # functions on the same shared NIC talking through the ToR.
        self.ports[out_port_id].link.tx.offer(frame)

    # -- port mirroring ------------------------------------------------------

    def create_mirror(
        self,
        source_port_id: str,
        dest_port_id: str,
        directions: FrozenSet[str] = frozenset({"rx", "tx"}),
        owner_slice: str = "",
    ) -> MirrorSession:
        """Start mirroring ``source_port_id`` onto ``dest_port_id``.

        Clones of the selected direction(s) are offered to the
        destination port's Tx channel.  Raises
        :class:`MirrorConflictError` if the source is already mirrored or
        the destination already serves a session.
        """
        if source_port_id not in self.ports:
            raise KeyError(f"unknown source port {source_port_id}")
        if dest_port_id not in self.ports:
            raise KeyError(f"unknown destination port {dest_port_id}")
        if source_port_id == dest_port_id:
            raise MirrorConflictError("cannot mirror a port onto itself")
        if source_port_id in self.mirrors:
            raise MirrorConflictError(f"port {source_port_id} is already mirrored")
        if any(s.dest_port_id == dest_port_id for s in self.mirrors.values()):
            raise MirrorConflictError(f"port {dest_port_id} already receives a mirror")
        session = MirrorSession(source_port_id, dest_port_id, frozenset(directions), owner_slice)
        source = self.ports[source_port_id]
        dest = self.ports[dest_port_id]
        taps = []
        if "rx" in session.directions:
            tap = lambda frame: self._offer_mirror_clone(frame, dest)
            source.link.rx.add_tap(tap)
            taps.append(("rx", tap))
        if "tx" in session.directions:
            tap = lambda frame: self._offer_mirror_clone(frame, dest)
            source.link.tx.add_tap(tap)
            taps.append(("tx", tap))
        self.mirrors[source_port_id] = session
        self._mirror_taps[source_port_id] = taps
        return session

    def _offer_mirror_clone(self, frame: Frame, dest: SwitchPort) -> None:
        """Clone a mirrored frame onto the destination Tx channel.

        When an INT stamper is installed, the clone is stamped with the
        egress queue state *before* it is enqueued -- the depth the clone
        itself experiences, matching what a dataplane shim would record.
        """
        clone = frame.clone()
        stamper = self.int_stamper
        if stamper is not None:
            channel = dest.link.tx
            clone = stamper.stamp(clone, dest.port_id, self.sim.now,
                                  channel.queue_depth_bytes,
                                  channel.queue_limit_bytes)
        dest.link.tx.offer(clone)

    def delete_mirror(self, source_port_id: str) -> None:
        """Tear down the mirror session on ``source_port_id``."""
        session = self.mirrors.pop(source_port_id, None)
        if session is None:
            raise KeyError(f"no mirror on port {source_port_id}")
        source = self.ports[source_port_id]
        for direction, tap in self._mirror_taps.pop(source_port_id):
            if direction == "rx":
                source.link.rx.remove_tap(tap)
            else:
                source.link.tx.remove_tap(tap)

    def retarget_mirror(self, source_port_id: str, new_source_port_id: str) -> MirrorSession:
        """Move a mirror session to a new source port (port cycling).

        This is the primitive Patchwork's port cycling uses: the
        destination port, NIC, and VM stay fixed while the mirrored port
        changes.
        """
        session = self.mirrors.get(source_port_id)
        if session is None:
            raise KeyError(f"no mirror on port {source_port_id}")
        dest = session.dest_port_id
        directions = session.directions
        owner = session.owner_slice
        self.delete_mirror(source_port_id)
        return self.create_mirror(new_source_port_id, dest, directions, owner)

    def port_counters(self) -> Dict[str, Dict[str, int]]:
        """Counters for every port, keyed by port id (one SNMP walk)."""
        return {port_id: port.counters() for port_id, port in self.ports.items()}

    def __repr__(self) -> str:
        return f"<Switch {self.name} ports={len(self.ports)} mirrors={len(self.mirrors)}>"
