"""A queryable model of the testbed's structure.

FABRIC publishes an *information model* encoding the testbed network's
topology (paper Section 5, citing Google's MALT as the analogous
system).  Patchwork's study analyzed it to count ports at each site and
produce Fig 2.  This module provides the same queries over a built
:class:`~repro.testbed.federation.Federation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from repro.testbed.federation import Federation


@dataclass(frozen=True)
class SitePortCount:
    """Port counts for one site (the Fig 2 data)."""

    site: str
    downlinks: int
    uplinks: int

    @property
    def total(self) -> int:
        return self.downlinks + self.uplinks


class InformationModel:
    """Structural queries over a federation."""

    def __init__(self, federation: Federation):
        self.federation = federation

    def port_distribution(self) -> List[SitePortCount]:
        """Downlink/uplink counts per site, sorted by site name."""
        result = []
        for name in self.federation.site_names():
            switch = self.federation.site(name).switch
            result.append(
                SitePortCount(
                    site=name,
                    downlinks=len(switch.downlinks()),
                    uplinks=len(switch.uplinks()),
                )
            )
        return result

    def uplink_downlink_ratio(self) -> float:
        """Testbed-wide uplinks / downlinks ratio (<< 1 on FABRIC)."""
        counts = self.port_distribution()
        downlinks = sum(c.downlinks for c in counts)
        uplinks = sum(c.uplinks for c in counts)
        if downlinks == 0:
            raise ValueError("federation has no downlinks")
        return uplinks / downlinks

    def site_resources(self) -> Dict[str, Dict[str, float]]:
        """Installed capacity per site, as plain dictionaries."""
        return {
            name: self.federation.site(name).total_resources().as_dict()
            for name in self.federation.site_names()
        }

    def topology(self) -> nx.Graph:
        """A copy of the site-level topology graph."""
        return self.federation.graph.copy()

    def diameter(self) -> int:
        """Site-hop diameter of the federation."""
        return nx.diameter(self.federation.graph)

    def inter_site_capacity_bps(self) -> float:
        """Sum of inter-site link capacities (one direction)."""
        return sum(
            data.get("rate_bps", 0.0)
            for _a, _b, data in self.federation.graph.edges(data=True)
        )
