"""Worker machines and virtual machines.

Each FABRIC rack contains worker machines; each worker hosts VMs and is
equipped with NICs (paper Section 3).  Workers expose a capacity vector
and VMs consume from it.  A VM is where user code "runs": in the
reproduction, capture models and traffic generators register as frame
receivers/senders on the NIC ports their VM was granted.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from repro.testbed.errors import InsufficientResourcesError
from repro.testbed.nic import Nic, NicPort
from repro.testbed.resources import ResourceCapacity

_vm_ids = itertools.count(1)


class VM:
    """A virtual machine belonging to a slice.

    ``cores``/``ram_gb``/``disk_gb`` were debited from the hosting
    worker at creation and are credited back by :meth:`Worker.destroy_vm`.
    """

    def __init__(
        self,
        name: str,
        worker: "Worker",
        cores: int,
        ram_gb: float,
        disk_gb: float,
        slice_name: str,
    ):
        self.name = name
        self.worker = worker
        self.cores = cores
        self.ram_gb = ram_gb
        self.disk_gb = disk_gb
        self.slice_name = slice_name
        self.nic_ports: List[NicPort] = []

    @property
    def site_name(self) -> str:
        return self.worker.site_name

    def grant_port(self, port: NicPort) -> None:
        """Give the VM access to a NIC port (wired by the allocator)."""
        self.nic_ports.append(port)

    def __repr__(self) -> str:
        return f"<VM {self.name} on {self.worker.name} ({self.cores}c/{self.ram_gb}GB)>"


class Worker:
    """A physical worker machine in a rack."""

    def __init__(
        self,
        name: str,
        site_name: str,
        cores: int = 64,
        ram_gb: float = 512.0,
        disk_gb: float = 10_000.0,
    ):
        self.name = name
        self.site_name = site_name
        self.capacity = ResourceCapacity(cores=cores, ram_gb=ram_gb, disk_gb=disk_gb)
        self.free = ResourceCapacity(cores=cores, ram_gb=ram_gb, disk_gb=disk_gb)
        self.nics: List[Nic] = []
        self.vms: Dict[str, VM] = {}

    def add_nic(self, nic: Nic) -> None:
        """Install a NIC in this worker."""
        self.nics.append(nic)

    def can_host(self, cores: int, ram_gb: float, disk_gb: float) -> bool:
        """True if a VM of the given shape fits right now."""
        need = ResourceCapacity(cores=cores, ram_gb=ram_gb, disk_gb=disk_gb)
        return need.fits_within(self.free)

    def create_vm(self, name: str, cores: int, ram_gb: float, disk_gb: float, slice_name: str) -> VM:
        """Reserve capacity and return a new VM."""
        need = ResourceCapacity(cores=cores, ram_gb=ram_gb, disk_gb=disk_gb)
        shortfall = need.first_shortfall(self.free)
        if shortfall is not None:
            resource, requested, available = shortfall
            raise InsufficientResourcesError(self.site_name, resource, requested, available)
        self.free = self.free - need
        vm = VM(name, self, cores, ram_gb, disk_gb, slice_name)
        self.vms[name] = vm
        return vm

    def destroy_vm(self, vm: VM) -> None:
        """Release a VM's capacity back to the worker."""
        if vm.name not in self.vms:
            raise KeyError(f"{vm.name} is not hosted on {self.name}")
        del self.vms[vm.name]
        self.free = self.free + ResourceCapacity(
            cores=vm.cores, ram_gb=vm.ram_gb, disk_gb=vm.disk_gb
        )

    def __repr__(self) -> str:
        return (
            f"<Worker {self.name} free={self.free.cores}c/"
            f"{self.free.ram_gb:g}GB/{self.free.disk_gb:g}GB vms={len(self.vms)}>"
        )
