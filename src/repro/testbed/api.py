"""The testbed's user-facing API.

Patchwork "is completely encapsulated by FABRIC's management interfaces"
(requirement R2) -- it acquires resources, sets up port mirrors, and
reads telemetry only through published APIs.  :class:`TestbedAPI` is
that boundary in the reproduction: the Patchwork code in
:mod:`repro.core` holds a ``TestbedAPI`` (and an MFlib client), never a
raw :class:`~repro.testbed.federation.Federation`.

Keeping the boundary explicit is also the paper's portability story:
porting Patchwork to another testbed means re-implementing this facade.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.testbed.errors import TransientBackendError
from repro.testbed.federation import Federation
from repro.testbed.nic import NicPort
from repro.testbed.resources import ResourceCapacity
from repro.testbed.slice_model import Slice, SliceRequest
from repro.testbed.switch import MirrorSession


class TestbedAPI:
    """Facade over a federation's control plane."""

    __test__ = False  # starts with "Test" but is not a test class

    def __init__(self, federation: Federation):
        self._federation = federation

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current testbed time (seconds)."""
        return self._federation.sim.now

    def wait(self, seconds: float) -> None:
        """Let testbed time pass (runs the dataplane meanwhile)."""
        if seconds < 0:
            raise ValueError("cannot wait a negative duration")
        sim = self._federation.sim
        sim.run(until=sim.now + seconds)

    # -- discovery ------------------------------------------------------------

    def list_sites(self) -> List[str]:
        """All site names, sorted."""
        return self._federation.site_names()

    def available_resources(self, site: str) -> ResourceCapacity:
        """The site's current free-resource vector."""
        return self._federation.site(site).available_resources()

    def list_switch_ports(self, site: str) -> List[Tuple[str, str]]:
        """(port_id, kind) for every switch port at a site."""
        switch = self._federation.site(site).switch
        return [(p.port_id, p.kind) for p in switch.ports.values()]

    def switch_port_for_nic_port(self, site: str, nic_port: NicPort) -> str:
        """Which switch port a granted NIC port is cabled to."""
        return self._federation.site(site).switch_port_for(nic_port)

    def port_rate_bps(self, site: str, port_id: str) -> float:
        """Line rate of a switch port."""
        return self._federation.site(site).switch.ports[port_id].rate_bps

    # -- slices ------------------------------------------------------------

    def simulate_allocation(self, request: SliceRequest) -> Optional[Tuple[str, float, float]]:
        """Client-side dry run; the first shortfall or None."""
        return self._federation.allocator.simulate(request)

    def create_slice(self, request: SliceRequest) -> Slice:
        """Allocate a slice (may raise allocation errors).

        The allocator consults the fault injector itself, so create is
        not double-checked here.
        """
        return self._federation.allocator.allocate(request)

    def delete_slice(self, slice_name: str) -> None:
        """Release a slice's resources.

        Idempotent: deleting an already-deleted slice is a no-op, so a
        retry after a partial teardown failure is always safe.  Like
        every control-plane mutation, the call can fail transiently.
        """
        live = self._federation.allocator.slices.get(slice_name)
        if live is not None and live.deleted:
            return
        self._check_faults(live.site_name if live is not None else slice_name)
        self._federation.allocator.delete(slice_name)

    # -- port mirroring ------------------------------------------------------

    def create_port_mirror(
        self,
        live_slice: Slice,
        source_port_id: str,
        dest_port_id: str,
        directions: FrozenSet[str] = frozenset({"rx", "tx"}),
    ) -> MirrorSession:
        """Mirror a switch port into one of the slice's ports.

        All-experiment mode mirrors ports carrying *other* users'
        traffic; access control for that is the testbed operator's
        discretionary permission (paper Appendix A), which the model
        grants implicitly.
        """
        site = self._federation.site(live_slice.site_name)
        self._check_faults(live_slice.site_name)
        session = site.switch.create_mirror(
            source_port_id, dest_port_id, directions, owner_slice=live_slice.name
        )
        live_slice.mirror_sessions.append(session)
        return session

    def retarget_port_mirror(
        self, live_slice: Slice, session: MirrorSession, new_source_port_id: str
    ) -> MirrorSession:
        """Move a mirror to a new source port (the port-cycling step).

        If the session vanished out from under its owner (a mid-run
        mirror drop), the retarget degenerates to recreating the mirror
        on the new source -- same end state, so recovery code need not
        distinguish the two.
        """
        site = self._federation.site(live_slice.site_name)
        self._check_faults(live_slice.site_name)
        if site.switch.mirrors.get(session.source_port_id) is session:
            new_session = site.switch.retarget_mirror(
                session.source_port_id, new_source_port_id)
        else:
            new_session = site.switch.create_mirror(
                new_source_port_id, session.dest_port_id,
                session.directions, owner_slice=live_slice.name)
        if session in live_slice.mirror_sessions:
            live_slice.mirror_sessions.remove(session)
        live_slice.mirror_sessions.append(new_session)
        return new_session

    def delete_port_mirror(self, live_slice: Slice, session: MirrorSession) -> None:
        """Tear down a mirror session.

        Idempotent: deleting a session that is already gone is a no-op,
        which makes retry-after-partial-failure safe.
        """
        site = self._federation.site(live_slice.site_name)
        self._check_faults(live_slice.site_name)
        if site.switch.mirrors.get(session.source_port_id) is session:
            site.switch.delete_mirror(session.source_port_id)
        if session in live_slice.mirror_sessions:
            live_slice.mirror_sessions.remove(session)

    def _check_faults(self, site_name: str) -> None:
        """Every control-plane mutation consults the fault injector."""
        reason = self._federation.faults.failure_reason(self.now, site_name)
        if reason is not None:
            raise TransientBackendError(f"{site_name}: {reason}")

    # -- escape hatch for tests/examples ------------------------------------

    @property
    def federation(self) -> Federation:
        """The underlying federation (not used by Patchwork itself)."""
        return self._federation
