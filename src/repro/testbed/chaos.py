"""Chaos harness: crash-fuzz the campaign commit protocol, then resume.

The durable-campaign design (:mod:`repro.core.campaign`) claims that a
process killed at *any* instant can resume to an end state
byte-identical to never having crashed.  This module earns that claim
empirically instead of by argument:

1. run an uninterrupted **reference** campaign with the plain
   :class:`repro.util.atomio.FileIO` seam and record its total IO op
   count plus the SHA-256 of every final artifact;
2. for each trial, pick a fuzzed crash point -- an op index in
   ``[1, total_ops]`` -- and re-run the same campaign under
   :class:`CrashingIO`, which dies *mid-write* (partial bytes on disk),
   *mid-fsync*, or *mid-rename* (before or after the ``os.replace``)
   when the counter hits the chosen op;
3. resume with ``CampaignRunner.run(resume=True)`` and check three
   oracles:

   * **audit** -- the frame-conservation audit of the final journal is
     clean;
   * **bytes** -- final ``journal.jsonl`` and ``records.json`` hash
     identical to the reference run's;
   * **samples** -- the set of sample keys (ledger pcap names) equals
     the reference set, with no duplicates (nothing double-counted or
     lost).

Crashes are raised as :class:`SimulatedCrash`, a ``BaseException`` no
recovery handler can swallow -- the closest a test can get to SIGKILL.
"""

from __future__ import annotations

import os
import shutil
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional, Tuple, Union

from repro.core.campaign import CampaignManifest, CampaignRunner
from repro.core.checkpoint import sha256_file
from repro.util.atomio import FileIO, SimulatedCrash
from repro.util.rng import derive_rng


class CrashingIO(FileIO):
    """A :class:`FileIO` that dies at a chosen op, mid-operation.

    ``crash_at_op`` is 1-based: the N-th IO operation raises
    :class:`SimulatedCrash` after doing *partial* damage chosen by
    ``rng`` -- a truncated write, a skipped fsync, a rename that did or
    did not land.  ``mode`` pins the rename coin for targeted edge
    tests (``"pre-replace"`` / ``"post-replace"``).
    """

    def __init__(self, crash_at_op: int, rng,
                 mode: Optional[str] = None) -> None:
        super().__init__()
        self.crash_at_op = crash_at_op
        self.rng = rng
        self.mode = mode
        self.crashed = False

    def _tripped(self) -> bool:
        return not self.crashed and self.ops >= self.crash_at_op

    def write(self, handle: BinaryIO, data: bytes) -> int:
        self.ops += 1
        if self._tripped():
            self.crashed = True
            cut = int(self.rng.integers(0, len(data))) if data else 0
            handle.write(data[:cut])
            handle.flush()
            raise SimulatedCrash(f"mid-write at op {self.ops} "
                                 f"({cut}/{len(data)} bytes landed)")
        return handle.write(data)

    def fsync(self, handle: BinaryIO) -> None:
        self.ops += 1
        if self._tripped():
            self.crashed = True
            handle.flush()
            raise SimulatedCrash(f"mid-fsync at op {self.ops}")
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: Union[str, Path], dst: Union[str, Path]) -> None:
        self.ops += 1
        if self._tripped():
            self.crashed = True
            post = (self.mode == "post-replace" or
                    (self.mode is None and bool(self.rng.integers(0, 2))))
            if post:
                os.replace(src, dst)
            raise SimulatedCrash(
                f"mid-rename at op {self.ops} "
                f"({'after' if post else 'before'} the replace landed)")
        os.replace(src, dst)

    def fsync_dir(self, path: Union[str, Path]) -> None:
        self.ops += 1
        if self._tripped():
            self.crashed = True
            raise SimulatedCrash(f"mid-dir-fsync at op {self.ops}")
        super_io = FileIO()
        super_io.fsync_dir(path)


def default_manifest(seed: int = 1,
                     sharded: bool = False) -> CampaignManifest:
    """The smallest campaign that still exercises every crash window:
    two occasions (cross-occasion sequence chaining + skip-on-resume),
    two sites (a federation's minimum), one sample per occasion.
    ``sharded=True`` switches on per-site shard worlds, adding the
    shard-commit records and the deterministic merge to the fuzzed
    surface."""
    return CampaignManifest(
        seed=seed, sites=("STAR", "MICH"), occasions=2, traffic_scale=0.005,
        sample_duration=2.0, sample_interval=10.0, samples_per_run=1,
        runs_per_cycle=1, cycles=1, desired_instances=1, traffic_span=120.0,
        sharded=sharded)


@dataclass
class ChaosReport:
    """Outcome of one chaos batch."""

    trials: int = 0
    passed: int = 0
    reference: Dict[str, Any] = field(default_factory=dict)
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.trials > 0 and not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {"trials": self.trials, "passed": self.passed,
                "ok": self.ok, "reference": self.reference,
                "failures": self.failures}

    def render(self) -> str:
        lines = [f"chaos: {self.passed}/{self.trials} trials passed "
                 f"({self.reference.get('total_ops', '?')} fuzzable IO ops)"]
        for failure in self.failures:
            lines.append(f"  FAIL trial {failure['trial']} "
                         f"crash_at={failure['crash_at']}: "
                         f"{'; '.join(failure['oracles'])}")
        return "\n".join(lines)


def sample_keys(journal_path: Union[str, Path]) -> List[str]:
    """Every sample's identity (its ledger's pcap key) in journal order."""
    from repro.obs.journal import RunJournal

    journal = RunJournal.read(journal_path)
    return [str(event.data.get("pcap"))
            for event in journal.of_kind("ledger")]


def run_reference(manifest: CampaignManifest,
                  out_dir: Union[str, Path]) -> Dict[str, Any]:
    """The uninterrupted run: ground truth for every oracle."""
    out_dir = Path(out_dir)
    shutil.rmtree(out_dir, ignore_errors=True)
    io = FileIO()
    runner = CampaignRunner(out_dir, manifest=manifest, io=io)
    summary = runner.run()
    keys = sample_keys(runner.journal_path)
    if len(keys) != len(set(keys)):
        raise RuntimeError("reference run produced duplicate sample keys")
    return {
        "total_ops": io.ops,
        "journal_sha256": summary.journal_sha256,
        "records_sha256": summary.records_sha256,
        "sample_keys": sorted(keys),
        "success_rate": summary.success_rate,
        "audit_ok": summary.audit_ok,
    }


def run_trial(manifest: CampaignManifest, trial_dir: Union[str, Path],
              crash_at: int, rng, reference: Dict[str, Any],
              mode: Optional[str] = None,
              salvage: bool = False) -> Dict[str, Any]:
    """One crash/resume cycle; returns the oracle verdicts."""
    trial_dir = Path(trial_dir)
    shutil.rmtree(trial_dir, ignore_errors=True)
    io = CrashingIO(crash_at, rng, mode=mode)
    crashed = False
    try:
        CampaignRunner(trial_dir, manifest=manifest, io=io).run()
    except SimulatedCrash as exc:
        crashed = True
        crash_detail = str(exc)
    else:
        crash_detail = "campaign finished before the crash point"
    resumed = CampaignRunner(trial_dir, manifest=manifest).run(
        resume=True, salvage=salvage)
    oracles: List[str] = []
    if not resumed.audit_ok:
        oracles.append("audit: conservation audit failed after resume")
    journal_path = Path(trial_dir) / "journal.jsonl"
    if not journal_path.exists():
        oracles.append("bytes: no final journal was written")
    elif not salvage:
        if sha256_file(journal_path) != reference["journal_sha256"]:
            oracles.append("bytes: resumed journal differs from the "
                           "uninterrupted run")
        if resumed.records_sha256 != reference["records_sha256"]:
            oracles.append("bytes: resumed records.json differs from the "
                           "uninterrupted run")
    if journal_path.exists():
        keys = sample_keys(journal_path)
        if len(keys) != len(set(keys)):
            oracles.append("samples: a sample was double-counted")
        if not salvage and sorted(keys) != reference["sample_keys"]:
            oracles.append("samples: sample set differs from the "
                           "uninterrupted run")
        if not salvage:
            # A clean (strict) resume re-runs any interrupted occasion
            # from scratch, so the final journal must contain no span
            # that was opened but never closed -- dangling spans are
            # the signature of adopted partial work.
            from repro.obs.journal import RunJournal
            from repro.obs.trace import TraceTree

            tree = TraceTree.from_journal(RunJournal.read(journal_path))
            dangling = tree.dangling()
            if dangling:
                oracles.append(
                    f"spans: {len(dangling)} dangling span(s) after clean "
                    f"resume (first: {dangling[0].name} "
                    f"[{dangling[0].span_id}])")
    return {
        "crash_at": crash_at,
        "crashed": crashed,
        "crash_detail": crash_detail,
        "oracles": oracles,
        "ok": not oracles,
    }


def _trial_task(task: Tuple) -> Tuple[int, Dict[str, Any]]:
    """Process-pool worker: one fully independent crash/resume trial.

    Module-level (picklable); the trial's damage RNG is re-derived from
    ``(seed, trial)`` so the batch is deterministic regardless of worker
    count or completion order.
    """
    manifest, trial_dir, trial, crash_at, seed, reference = task
    rng = derive_rng(seed, f"chaos/trial{trial}")
    return trial, run_trial(manifest, trial_dir, crash_at, rng, reference)


def run_chaos(out_dir: Union[str, Path], trials: int = 50, seed: int = 1,
              manifest: Optional[CampaignManifest] = None,
              keep_passing: bool = False, workers: int = 0,
              sharded: bool = False) -> ChaosReport:
    """Run a full chaos batch: reference + ``trials`` fuzzed crashes.

    Trials are independent (own run directory, own derived RNG), so
    they fan out over ``workers`` processes (0 = one per CPU).  Passing
    trial directories are deleted (disk stays bounded); failing ones
    are kept for post-mortem.  The reference run is kept either way.
    ``sharded`` fuzzes the sharded campaign path instead (shard worlds
    run serially in-process, so the parent's IO op sequence -- the
    fuzzed crash surface -- stays deterministic).
    """
    out_dir = Path(out_dir)
    manifest = manifest if manifest is not None \
        else default_manifest(seed, sharded=sharded)
    report = ChaosReport()
    report.reference = run_reference(manifest, out_dir / "reference")
    rng = derive_rng(seed, "chaos")
    total_ops = int(report.reference["total_ops"])
    tasks = [(manifest, out_dir / f"trial{trial:03d}", trial,
              int(rng.integers(1, total_ops + 1)), seed, report.reference)
             for trial in range(trials)]
    workers = workers if workers > 0 else (os.cpu_count() or 1)
    workers = max(1, min(workers, trials))
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_trial_task, tasks))
    else:
        results = [_trial_task(task) for task in tasks]
    for trial, outcome in results:
        report.trials += 1
        if outcome["ok"]:
            report.passed += 1
            if not keep_passing:
                shutil.rmtree(out_dir / f"trial{trial:03d}",
                              ignore_errors=True)
        else:
            report.failures.append({"trial": trial, **outcome})
    return report
