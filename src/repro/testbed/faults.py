"""Control-plane fault injection.

The paper's Fig 10 shows three failure classes over four months of runs:
transient back-end errors (clustered -- e.g. the 10-15 Sept incidents),
sites lacking resources, and Patchwork's own (since-fixed) crash bug.
The first class is injected here; the second emerges naturally from the
allocator's inventory; the third is injected by the Patchwork test
harness itself.

A :class:`FaultInjector` combines (a) scheduled *outage windows* during
which every control-plane call at the affected sites fails, and (b) a
small independent per-call failure probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np


@dataclass
class OutageWindow:
    """A back-end incident: all control calls fail in [start, end).

    ``sites`` limits the outage to specific sites; empty means global
    (FABRIC's central control framework being down).
    """

    start: float
    end: float
    reason: str = "backend incident"
    sites: Set[str] = field(default_factory=set)

    def covers(self, time: float, site: str) -> bool:
        if not self.start <= time < self.end:
            return False
        return not self.sites or site in self.sites


class FaultInjector:
    """Decides whether a control-plane call fails transiently."""

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 base_failure_rate: float = 0.0):
        if not 0.0 <= base_failure_rate < 1.0:
            raise ValueError("base_failure_rate must be in [0, 1)")
        self.rng = rng or np.random.default_rng(0)
        self.base_failure_rate = base_failure_rate
        self.windows: List[OutageWindow] = []
        self.injected_failures = 0

    def add_outage(self, start: float, end: float, reason: str = "backend incident",
                   sites: Optional[Set[str]] = None) -> OutageWindow:
        """Schedule a back-end incident."""
        if end <= start:
            raise ValueError("outage end must follow start")
        window = OutageWindow(start, end, reason, set(sites or ()))
        self.windows.append(window)
        return window

    def failure_reason(self, time: float, site: str) -> Optional[str]:
        """Reason this call should fail, or None to let it proceed."""
        for window in self.windows:
            if window.covers(time, site):
                self.injected_failures += 1
                return window.reason
        if self.base_failure_rate > 0 and self.rng.random() < self.base_failure_rate:
            self.injected_failures += 1
            return "transient backend error"
        return None
