"""Control-plane fault injection.

The paper's Fig 10 shows three failure classes over four months of runs:
transient back-end errors (clustered -- e.g. the 10-15 Sept incidents),
sites lacking resources, and Patchwork's own (since-fixed) crash bug.
The first class is injected here; the second emerges naturally from the
allocator's inventory; the third is injected by the Patchwork test
harness itself.

A :class:`FaultInjector` combines (a) scheduled *outage windows* during
which every control-plane call at the affected sites fails, (b) a
small independent per-call failure probability, and (c) scheduled
*mid-run* faults -- state-destroying events injected through the
simulator rather than at call time: a VM dying under a live slice, a
mirror session dropped out from under its owner, a telemetry-poller
outage.  Mid-run faults are what the recovery layer in
:mod:`repro.core` exists to survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

import numpy as np

from repro.obs import get_obs
from repro.util.rng import derive_rng


@dataclass
class OutageWindow:
    """A back-end incident: all control calls fail in [start, end).

    ``sites`` limits the outage to specific sites; empty means global
    (FABRIC's central control framework being down).
    """

    start: float
    end: float
    reason: str = "backend incident"
    sites: Set[str] = field(default_factory=set)

    def covers(self, time: float, site: str) -> bool:
        if not self.start <= time < self.end:
            return False
        return not self.sites or site in self.sites


@dataclass
class ScheduledFault:
    """One scheduled mid-run fault and what happened when it fired."""

    time: float
    kind: str   # "vm-death" | "mirror-drop" | "poller-outage"
    site: str
    detail: str = ""
    fired: bool = False
    outcome: str = ""


class FaultInjector:
    """Decides whether a control-plane call fails transiently, and
    injects scheduled mid-run faults via the simulator."""

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 base_failure_rate: float = 0.0):
        if not 0.0 <= base_failure_rate < 1.0:
            raise ValueError("base_failure_rate must be in [0, 1)")
        self.rng = rng if rng is not None \
            else derive_rng(0, "faults/default")
        self.base_failure_rate = base_failure_rate
        self.windows: List[OutageWindow] = []
        self.injected_failures = 0
        self.scheduled: List[ScheduledFault] = []
        self.mid_run_faults_fired = 0

    def add_outage(self, start: float, end: float, reason: str = "backend incident",
                   sites: Optional[Set[str]] = None) -> OutageWindow:
        """Schedule a back-end incident."""
        if end <= start:
            raise ValueError("outage end must follow start")
        window = OutageWindow(start, end, reason, set(sites or ()))
        self.windows.append(window)
        return window

    def failure_reason(self, time: float, site: str) -> Optional[str]:
        """Reason this call should fail, or None to let it proceed."""
        for window in self.windows:
            if window.covers(time, site):
                self.injected_failures += 1
                self._record_injection(time, site, "outage", window.reason)
                return window.reason
        if self.base_failure_rate > 0 and self.rng.random() < self.base_failure_rate:
            self.injected_failures += 1
            self._record_injection(time, site, "random",
                                   "transient backend error")
            return "transient backend error"
        return None

    def _record_injection(self, time: float, site: str, source: str,
                          reason: str) -> None:
        obs = get_obs()
        obs.registry.counter(
            "faults.injected_failures",
            help="control-plane calls failed by injection").inc()
        obs.journal.emit("fault", t=time, event="call-failure", site=site,
                         source=source, reason=reason)

    # -- scheduled mid-run faults -----------------------------------------
    #
    # These fire through the simulator, destroying state out from under
    # a running Patchwork instance -- not merely failing its next call.
    # Targets are passed as objects (switch, slice, poller) so this
    # module stays import-free of the layers it sabotages.

    def _arm(self, sim, fault: ScheduledFault,
             action: Callable[[ScheduledFault], None]) -> ScheduledFault:
        if fault.time < sim.now:
            raise ValueError("cannot schedule a fault in the past")
        self.scheduled.append(fault)

        def fire() -> None:
            fault.fired = True
            action(fault)
            if fault.outcome != "no-op":
                self.mid_run_faults_fired += 1

        sim.schedule_at(fault.time, fire)
        return fault

    def schedule_vm_death(self, sim, live_slice, time: float,
                          vm_name: Optional[str] = None) -> ScheduledFault:
        """Kill one of a live slice's VMs at ``time``.

        The VM vanishes from its worker (capacity is freed -- the host
        rebooted) but stays listed in the slice, so the owner only
        notices through a liveness check.  No-op if the slice was
        deleted, or the VM is already gone, before the fault fires.
        """
        fault = ScheduledFault(time, "vm-death", live_slice.site_name,
                               detail=vm_name or "")

        def action(f: ScheduledFault) -> None:
            if live_slice.deleted:
                f.outcome = "no-op"
                return
            candidates = [vm for name, vm in sorted(live_slice.vms.items())
                          if vm_name is None or name == vm_name]
            victim = next((vm for vm in candidates
                           if vm.name in vm.worker.vms), None)
            if victim is None:
                f.outcome = "no-op"
                return
            victim.worker.destroy_vm(victim)
            f.outcome = f"killed {victim.name}"

        return self._arm(sim, fault, action)

    def schedule_mirror_drop(self, sim, site_name: str, switch, time: float,
                             source_port_id: Optional[str] = None) -> ScheduledFault:
        """Drop a mirror session on ``switch`` at ``time``.

        With no ``source_port_id``, the first active session (sorted by
        source port) is dropped.  No-op if nothing is mirrored.
        """
        fault = ScheduledFault(time, "mirror-drop", site_name,
                               detail=source_port_id or "")

        def action(f: ScheduledFault) -> None:
            target = source_port_id
            if target is None:
                active = sorted(switch.mirrors)
                target = active[0] if active else None
            if target is None or target not in switch.mirrors:
                f.outcome = "no-op"
                return
            switch.delete_mirror(target)
            f.outcome = f"dropped mirror on {target}"

        return self._arm(sim, fault, action)

    def schedule_poller_outage(self, sim, poller, start: float,
                               duration: float) -> ScheduledFault:
        """Silence the telemetry poller for ``[start, start + duration)``.

        Congestion checks and busiest-port rankings go stale meanwhile,
        which is exactly the telemetry blind spot a real SNMP collector
        outage causes.
        """
        if duration <= 0:
            raise ValueError("poller outage duration must be positive")
        fault = ScheduledFault(start, "poller-outage", "",
                               detail=f"{duration:g}s")

        def action(f: ScheduledFault) -> None:
            if poller.running:
                poller.stop()
                f.outcome = f"poller silenced for {duration:g}s"
            else:
                f.outcome = "no-op"

            def restore() -> None:
                if not poller.running:
                    poller.start()

            sim.schedule(duration, restore)

        return self._arm(sim, fault, action)
