"""Wire-format header definitions.

Each header class knows how to *pack* itself around an inner payload
(used by the traffic generators) and how to *parse* itself from raw bytes
(used by the analysis dissectors).  Packing composes inside-out: the
innermost payload is produced first and each enclosing header's
``pack(inner)`` wraps it.

Only the fields the paper's analysis cares about are modelled faithfully
(types, lengths, tags, addresses, ports, TCP flags); option fields are
omitted for clarity.  All multi-byte fields are network byte order.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Tuple

from repro.packets.checksum import (
    internet_checksum,
    pseudo_header_v4,
    pseudo_header_v6,
    transport_checksum,
)


class EtherType(IntEnum):
    """EtherType values used on FABRIC traffic."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD
    MPLS_UNICAST = 0x8847


class IPProto(IntEnum):
    """IP protocol numbers used in the reproduction."""

    ICMP = 1
    TCP = 6
    UDP = 17
    ICMPV6 = 58


# Well-known ports used by the dissectors to classify application payloads,
# mirroring how tshark's heuristics label the layer above TCP/UDP.
PORT_SSH = 22
PORT_DNS = 53
PORT_HTTP = 80
PORT_NTP = 123
PORT_HTTPS = 443
PORT_IPERF = 5201


# Precompiled structs for the hot parse paths (one parse per captured
# frame per layer; Struct objects skip the format-string cache lookup).
_U16 = struct.Struct("!H")
_VLAN_TAG = struct.Struct("!HH")
_MPLS_ENTRY = struct.Struct("!I")
_IPV4_FIXED = struct.Struct("!BBHHHBBH")
_IPV6_FIXED = struct.Struct("!IHBB")
_TCP_FIXED = struct.Struct("!HHIIBBH")
_UDP_FIXED = struct.Struct("!HHHH")


def mac_bytes(mac: str) -> bytes:
    """Convert ``aa:bb:cc:dd:ee:ff`` notation to 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address: {mac!r}")
    return bytes(int(p, 16) for p in parts)


def mac_str(raw: bytes) -> str:
    """Render 6 raw bytes as colon-separated hex."""
    return bytes(raw).hex(":")


def ipv4_bytes(addr: str) -> bytes:
    """Convert dotted-quad notation to 4 raw bytes."""
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address: {addr!r}")
    return bytes(int(p) for p in parts)


def ipv4_str(raw: bytes) -> str:
    """Render 4 raw bytes as dotted-quad."""
    return "%d.%d.%d.%d" % (raw[0], raw[1], raw[2], raw[3])


def ipv6_bytes(addr: str) -> bytes:
    """Convert (possibly ``::``-compressed) IPv6 notation to 16 raw bytes."""
    if "::" in addr:
        head, _, tail = addr.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 0:
            raise ValueError(f"bad IPv6 address: {addr!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = addr.split(":")
    if len(groups) != 8:
        raise ValueError(f"bad IPv6 address: {addr!r}")
    return b"".join(struct.pack("!H", int(g or "0", 16)) for g in groups)


_IPV6_WORDS = struct.Struct("!8H")


def ipv6_str(raw: bytes) -> str:
    """Render 16 raw bytes as full (uncompressed) IPv6 notation."""
    return ":".join("%x" % word for word in _IPV6_WORDS.unpack(raw))


@dataclass
class Ethernet:
    """Ethernet II frame header (no FCS)."""

    src: str
    dst: str
    ethertype: int = EtherType.IPV4

    name = "eth"
    header_len = 14

    def pack(self, inner: bytes) -> bytes:
        return mac_bytes(self.dst) + mac_bytes(self.src) + struct.pack("!H", self.ethertype) + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, int]:
        if len(data) < 14:
            raise ValueError("truncated Ethernet header")
        dst, src = bytes(data[0:6]), bytes(data[6:12])
        (ethertype,) = _U16.unpack_from(data, 12)
        fields = {"dst": mac_str(dst), "src": mac_str(src), "ethertype": ethertype}
        return fields, 14, ethertype


@dataclass
class VLAN:
    """802.1Q VLAN tag (follows an Ethernet header)."""

    vid: int
    pcp: int = 0
    ethertype: int = EtherType.IPV4

    name = "vlan"
    header_len = 4

    def pack(self, inner: bytes) -> bytes:
        if not 0 <= self.vid < 4096:
            raise ValueError(f"VLAN ID out of range: {self.vid}")
        tci = (self.pcp & 0x7) << 13 | (self.vid & 0xFFF)
        return struct.pack("!HH", tci, self.ethertype) + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, int]:
        if len(data) < 4:
            raise ValueError("truncated VLAN tag")
        tci, ethertype = _VLAN_TAG.unpack_from(data)
        fields = {"vid": tci & 0xFFF, "pcp": tci >> 13, "ethertype": ethertype}
        return fields, 4, ethertype


@dataclass
class MPLS:
    """One MPLS label-stack entry.

    ``bottom`` marks the S bit; stacked labels are packed by wrapping one
    MPLS header around another.
    """

    label: int
    tc: int = 0
    bottom: bool = True
    ttl: int = 64

    name = "mpls"
    header_len = 4

    def pack(self, inner: bytes) -> bytes:
        if not 0 <= self.label < (1 << 20):
            raise ValueError(f"MPLS label out of range: {self.label}")
        entry = (self.label << 12) | ((self.tc & 0x7) << 9) | (int(self.bottom) << 8) | (self.ttl & 0xFF)
        return struct.pack("!I", entry) + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, bool]:
        if len(data) < 4:
            raise ValueError("truncated MPLS entry")
        (entry,) = _MPLS_ENTRY.unpack_from(data)
        fields = {
            "label": entry >> 12,
            "tc": (entry >> 9) & 0x7,
            "bottom": bool((entry >> 8) & 0x1),
            "ttl": entry & 0xFF,
        }
        return fields, 4, fields["bottom"]


@dataclass
class PseudoWireControlWord:
    """Ethernet-over-MPLS pseudowire control word (RFC 4448).

    The first nibble is zero, which is how a parser below the bottom MPLS
    label distinguishes a control word from an IP payload (whose first
    nibble is the IP version, 4 or 6).
    """

    sequence: int = 0

    name = "pw"
    header_len = 4

    def pack(self, inner: bytes) -> bytes:
        return struct.pack("!I", self.sequence & 0xFFFF) + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        if len(data) < 4:
            raise ValueError("truncated PW control word")
        (word,) = struct.unpack_from("!I", data, 0)
        if word >> 28 != 0:
            raise ValueError("first nibble of a PW control word must be 0")
        return {"sequence": word & 0xFFFF}, 4, None


@dataclass
class IPv4:
    """IPv4 header (no options); total length and checksum are computed."""

    src: str
    dst: str
    proto: int = IPProto.TCP
    ttl: int = 64
    dscp: int = 0
    ident: int = 0
    flags_df: bool = True

    name = "ipv4"
    header_len = 20

    def pack(self, inner: bytes) -> bytes:
        total_len = 20 + len(inner)
        if total_len > 0xFFFF:
            raise ValueError("IPv4 datagram too large")
        flags_frag = (0x4000 if self.flags_df else 0x0000)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,
            self.dscp << 2,
            total_len,
            self.ident & 0xFFFF,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            ipv4_bytes(self.src),
            ipv4_bytes(self.dst),
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        return header + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, int]:
        if len(data) < 20:
            raise ValueError("truncated IPv4 header")
        (ver_ihl, tos, total_len, ident, flags_frag, ttl, proto,
         checksum) = _IPV4_FIXED.unpack_from(data)
        version, ihl = ver_ihl >> 4, (ver_ihl & 0xF) * 4
        if version != 4:
            raise ValueError(f"not IPv4 (version={version})")
        if ihl < 20 or len(data) < ihl:
            raise ValueError("bad IPv4 IHL")
        fields = {
            "src": ipv4_str(bytes(data[12:16])),
            "dst": ipv4_str(bytes(data[16:20])),
            "proto": proto,
            "ttl": ttl,
            "total_len": total_len,
            "ident": ident,
            "df": bool(flags_frag & 0x4000),
        }
        return fields, ihl, proto


@dataclass
class IPv6:
    """IPv6 fixed header; payload length computed on pack."""

    src: str
    dst: str
    next_header: int = IPProto.TCP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    name = "ipv6"
    header_len = 40

    def pack(self, inner: bytes) -> bytes:
        if len(inner) > 0xFFFF:
            raise ValueError("IPv6 payload too large")
        word0 = (6 << 28) | ((self.traffic_class & 0xFF) << 20) | (self.flow_label & 0xFFFFF)
        header = struct.pack(
            "!IHBB16s16s",
            word0,
            len(inner),
            self.next_header,
            self.hop_limit,
            ipv6_bytes(self.src),
            ipv6_bytes(self.dst),
        )
        return header + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, int]:
        if len(data) < 40:
            raise ValueError("truncated IPv6 header")
        word0, payload_len, next_header, hop_limit = _IPV6_FIXED.unpack_from(data)
        if word0 >> 28 != 6:
            raise ValueError("not IPv6")
        fields = {
            "src": ipv6_str(bytes(data[8:24])),
            "dst": ipv6_str(bytes(data[24:40])),
            "next_header": next_header,
            "hop_limit": hop_limit,
            "payload_len": payload_len,
        }
        return fields, 40, next_header


# TCP flag bits.
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


@dataclass
class TCP:
    """TCP header (no options); checksum needs the enclosing IP addresses."""

    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = TCP_ACK
    window: int = 65535

    name = "tcp"
    header_len = 20

    def pack(self, inner: bytes, ip_src: bytes = b"", ip_dst: bytes = b"") -> bytes:
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport,
            self.dport,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            5 << 4,
            self.flags,
            self.window,
            0,
            0,
        )
        segment = header + inner
        if ip_src and ip_dst:
            if len(ip_src) == 4:
                pseudo = pseudo_header_v4(ip_src, ip_dst, IPProto.TCP, len(segment))
            else:
                pseudo = pseudo_header_v6(ip_src, ip_dst, IPProto.TCP, len(segment))
            checksum = transport_checksum(pseudo, segment, IPProto.TCP)
            segment = segment[:16] + struct.pack("!H", checksum) + segment[18:]
        return segment

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, Tuple[int, int]]:
        if len(data) < 20:
            raise ValueError("truncated TCP header")
        sport, dport, seq, ack, offset_byte, flags, window = _TCP_FIXED.unpack_from(data)
        data_offset = (offset_byte >> 4) * 4
        if data_offset < 20:
            raise ValueError("bad TCP data offset")
        consumed = min(data_offset, len(data))
        fields = {
            "sport": sport,
            "dport": dport,
            "seq": seq,
            "ack": ack,
            "flags": flags,
            "window": window,
            "syn": bool(flags & TCP_SYN),
            "fin": bool(flags & TCP_FIN),
            "rst": bool(flags & TCP_RST),
        }
        return fields, consumed, (sport, dport)


@dataclass
class UDP:
    """UDP header; length and checksum computed on pack."""

    sport: int
    dport: int

    name = "udp"
    header_len = 8

    def pack(self, inner: bytes, ip_src: bytes = b"", ip_dst: bytes = b"") -> bytes:
        length = 8 + len(inner)
        header = struct.pack("!HHHH", self.sport, self.dport, length, 0)
        datagram = header + inner
        if ip_src and ip_dst:
            if len(ip_src) == 4:
                pseudo = pseudo_header_v4(ip_src, ip_dst, IPProto.UDP, length)
            else:
                pseudo = pseudo_header_v6(ip_src, ip_dst, IPProto.UDP, length)
            checksum = transport_checksum(pseudo, datagram, IPProto.UDP)
            datagram = datagram[:6] + struct.pack("!H", checksum)[:2] + datagram[8:]
        return datagram

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, Tuple[int, int]]:
        if len(data) < 8:
            raise ValueError("truncated UDP header")
        sport, dport, length, _checksum = _UDP_FIXED.unpack_from(data)
        return {"sport": sport, "dport": dport, "length": length}, 8, (sport, dport)


@dataclass
class ICMP:
    """ICMP header (echo request/reply by default)."""

    icmp_type: int = 8
    code: int = 0
    ident: int = 0
    sequence: int = 0

    name = "icmp"
    header_len = 8

    def pack(self, inner: bytes) -> bytes:
        header = struct.pack("!BBHHH", self.icmp_type, self.code, 0, self.ident, self.sequence)
        message = header + inner
        checksum = internet_checksum(message)
        return message[:2] + struct.pack("!H", checksum) + message[4:]

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        if len(data) < 8:
            raise ValueError("truncated ICMP header")
        icmp_type, code = struct.unpack_from("!BB", data, 0)
        return {"type": icmp_type, "code": code}, 8, None


@dataclass
class ARP:
    """ARP request/reply for IPv4 over Ethernet."""

    sender_mac: str
    sender_ip: str
    target_mac: str = "00:00:00:00:00:00"
    target_ip: str = "0.0.0.0"
    opcode: int = 1  # 1 = request, 2 = reply

    name = "arp"
    header_len = 28

    def pack(self, inner: bytes = b"") -> bytes:
        return (
            struct.pack("!HHBBH", 1, EtherType.IPV4, 6, 4, self.opcode)
            + mac_bytes(self.sender_mac)
            + ipv4_bytes(self.sender_ip)
            + mac_bytes(self.target_mac)
            + ipv4_bytes(self.target_ip)
            + inner
        )

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        if len(data) < 28:
            raise ValueError("truncated ARP")
        _htype, _ptype, _hlen, _plen, opcode = struct.unpack_from("!HHBBH", data, 0)
        fields = {
            "opcode": opcode,
            "sender_mac": mac_str(bytes(data[8:14])),
            "sender_ip": ipv4_str(bytes(data[14:18])),
            "target_mac": mac_str(bytes(data[18:24])),
            "target_ip": ipv4_str(bytes(data[24:28])),
        }
        return fields, 28, None


@dataclass
class TLSRecord:
    """TLS record header followed by opaque ciphertext."""

    content_type: int = 23  # application_data
    version: int = 0x0303  # TLS 1.2 record version
    body_len: int = 0

    name = "tls"
    header_len = 5

    def pack(self, inner: bytes) -> bytes:
        return struct.pack("!BHH", self.content_type, self.version, len(inner)) + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        if len(data) < 5:
            raise ValueError("truncated TLS record")
        content_type, version, length = struct.unpack_from("!BHH", data, 0)
        if content_type not in (20, 21, 22, 23) or version >> 8 != 3:
            raise ValueError("not a TLS record")
        return {"content_type": content_type, "version": version, "length": length}, 5, None


@dataclass
class SSHBanner:
    """SSH identification string / opaque encrypted packet."""

    software: str = "OpenSSH_8.9"

    name = "ssh"
    header_len = 0

    def pack(self, inner: bytes = b"") -> bytes:
        return f"SSH-2.0-{self.software}\r\n".encode("ascii") + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        raw = bytes(data[:255])
        if not raw.startswith(b"SSH-"):
            raise ValueError("not an SSH banner")
        line, _, _rest = raw.partition(b"\r\n")
        return {"banner": line.decode("ascii", "replace")}, len(line) + 2, None


@dataclass
class DNSHeader:
    """DNS header plus a single encoded question."""

    ident: int = 0
    response: bool = False
    qname: str = "example.org"
    qtype: int = 1  # A

    name = "dns"
    header_len = 12

    def pack(self, inner: bytes = b"") -> bytes:
        flags = 0x8180 if self.response else 0x0100
        header = struct.pack("!HHHHHH", self.ident, flags, 1, 1 if self.response else 0, 0, 0)
        question = b"".join(
            bytes([len(label)]) + label.encode("ascii") for label in self.qname.split(".")
        ) + b"\x00" + struct.pack("!HH", self.qtype, 1)
        return header + question + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        if len(data) < 12:
            raise ValueError("truncated DNS header")
        ident, flags, qdcount, ancount, _ns, _ar = struct.unpack_from("!HHHHHH", data, 0)
        fields = {
            "ident": ident,
            "response": bool(flags & 0x8000),
            "qdcount": qdcount,
            "ancount": ancount,
        }
        return fields, 12, None


@dataclass
class HTTPPayload:
    """Plain-text HTTP/1.1 request or response head."""

    method: str = "GET"
    path: str = "/"
    host: str = "example.org"
    response: bool = False
    status: int = 200

    name = "http"
    header_len = 0

    def pack(self, inner: bytes = b"") -> bytes:
        if self.response:
            head = f"HTTP/1.1 {self.status} OK\r\nContent-Type: application/octet-stream\r\n\r\n"
        else:
            head = f"{self.method} {self.path} HTTP/1.1\r\nHost: {self.host}\r\n\r\n"
        return head.encode("ascii") + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        raw = bytes(data[:512])
        line, _, _rest = raw.partition(b"\r\n")
        text = line.decode("ascii", "replace")
        if text.startswith("HTTP/1."):
            parts = text.split(" ", 2)
            status = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 0
            return {"response": True, "status": status}, len(raw), None
        method = text.split(" ", 1)[0]
        if method not in ("GET", "POST", "PUT", "HEAD", "DELETE", "OPTIONS", "PATCH"):
            raise ValueError("not HTTP")
        return {"response": False, "method": method}, len(raw), None


@dataclass
class NTPPayload:
    """NTPv4 client/server packet (48 bytes, fixed fields only)."""

    mode: int = 3  # client
    stratum: int = 0

    name = "ntp"
    header_len = 48

    def pack(self, inner: bytes = b"") -> bytes:
        first = (0 << 6) | (4 << 3) | (self.mode & 0x7)
        return struct.pack("!BBBB", first, self.stratum, 6, 0xEC) + b"\x00" * 44 + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        if len(data) < 48:
            raise ValueError("truncated NTP")
        (first,) = struct.unpack_from("!B", data, 0)
        version, mode = (first >> 3) & 0x7, first & 0x7
        if version not in (3, 4) or mode == 0:
            raise ValueError("not NTP")
        return {"version": version, "mode": mode}, 48, None


@dataclass
class Payload:
    """Opaque application payload of a given size.

    ``fill`` controls the repeated byte; generators keep it cheap by
    multiplying a single byte rather than generating random content.
    """

    size: int
    fill: int = 0x5A

    name = "data"
    header_len = 0

    def pack(self, inner: bytes = b"") -> bytes:
        return bytes([self.fill]) * self.size + inner

    @staticmethod
    def parse(data: memoryview) -> Tuple[Dict[str, object], int, None]:
        return {"size": len(data)}, len(data), None
