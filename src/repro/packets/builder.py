"""Frame composition.

The traffic generators describe a frame as an outside-in sequence of
header objects (:class:`FrameSpec`).  The builder then:

* fixes the *chaining* fields so the stack is self-consistent — the
  EtherType of an Ethernet/VLAN header must announce what follows, MPLS
  stack entries must carry the S bit only on the bottom entry, and the
  IPv4 ``proto`` / IPv6 ``next_header`` must match the transport header;
* threads the IP source/destination into the TCP/UDP checksum;
* sizes the innermost opaque payload so the finished frame hits an exact
  target length (how the generators realize a frame-size distribution).

This mirrors how the paper's captures look on the wire: e.g.
``Ethernet / VLAN / MPLS / MPLS / PseudoWire / Ethernet / IPv4 / TCP / TLS``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.packets import headers as hdr
from repro.packets.headers import (
    ARP,
    EtherType,
    Ethernet,
    ICMP,
    IPProto,
    IPv4,
    IPv6,
    MPLS,
    Payload,
    TCP,
    UDP,
    VLAN,
)

# Minimum Ethernet frame size excluding the 4-byte FCS (which pcap
# captures also exclude).
MIN_FRAME_SIZE = 60


@dataclass
class FrameSpec:
    """An outside-in header stack plus an optional target frame size.

    ``stack`` must start with an :class:`Ethernet` header.  If
    ``target_size`` is set and the stack's innermost element is a
    :class:`Payload`, the payload is resized so the full frame is exactly
    ``target_size`` bytes (never below the protocol minimum).
    """

    stack: List[object]
    target_size: Optional[int] = None

    def header_overhead(self) -> int:
        """Total bytes of all non-payload headers in the stack."""
        total = 0
        for header in self.stack:
            if isinstance(header, Payload):
                continue
            if isinstance(header, hdr.SSHBanner):
                total += len(header.pack())
            elif isinstance(header, hdr.HTTPPayload):
                total += len(header.pack())
            elif isinstance(header, hdr.DNSHeader):
                total += len(header.pack())
            else:
                total += header.header_len
        return total


class FrameBuilder:
    """Builds wire-format frames from :class:`FrameSpec` descriptions."""

    def build(self, spec: FrameSpec) -> bytes:
        """Return the serialized frame for ``spec``.

        The spec is not mutated; chaining fixes are applied to copies.
        """
        if not spec.stack:
            raise ValueError("empty header stack")
        if not isinstance(spec.stack[0], Ethernet):
            raise ValueError("frame stack must start with an Ethernet header")
        stack = [copy.copy(header) for header in spec.stack]
        self._fix_chaining(stack)
        if spec.target_size is not None:
            self._fit_payload(stack, spec.target_size)
        return self._pack(stack)

    # -- internals ------------------------------------------------------

    def _fix_chaining(self, stack: Sequence[object]) -> None:
        """Make every header correctly announce its successor."""
        for i, header in enumerate(stack):
            nxt = stack[i + 1] if i + 1 < len(stack) else None
            if isinstance(header, (Ethernet, VLAN)):
                header.ethertype = self._ethertype_for(nxt)
            elif isinstance(header, MPLS):
                header.bottom = not isinstance(nxt, MPLS)
            elif isinstance(header, IPv4):
                header.proto = self._ip_proto_for(nxt, header.proto)
            elif isinstance(header, IPv6):
                header.next_header = self._ip_proto_for(nxt, header.next_header)

    @staticmethod
    def _ethertype_for(nxt: Optional[object]) -> int:
        if isinstance(nxt, VLAN):
            return EtherType.VLAN
        if isinstance(nxt, MPLS):
            return EtherType.MPLS_UNICAST
        if isinstance(nxt, IPv6):
            return EtherType.IPV6
        if isinstance(nxt, ARP):
            return EtherType.ARP
        return EtherType.IPV4

    @staticmethod
    def _ip_proto_for(nxt: Optional[object], default: int) -> int:
        if isinstance(nxt, TCP):
            return IPProto.TCP
        if isinstance(nxt, UDP):
            return IPProto.UDP
        if isinstance(nxt, ICMP):
            return IPProto.ICMP
        return default

    def _fit_payload(self, stack: List[object], target_size: int) -> None:
        payload = stack[-1] if stack and isinstance(stack[-1], Payload) else None
        if payload is None:
            return
        overhead = len(self._pack(stack[:-1]))
        payload.size = max(0, target_size - overhead)

    def _pack(self, stack: Sequence[object]) -> bytes:
        """Pack the stack inside-out, threading IP addresses to transports."""
        inner = b""
        enclosing_ip: Optional[object] = None
        # Find, for each transport header, the nearest enclosing IP header.
        ip_for_index = {}
        current_ip = None
        for i, header in enumerate(stack):
            if isinstance(header, (IPv4, IPv6)):
                current_ip = header
            elif isinstance(header, (TCP, UDP)):
                ip_for_index[i] = current_ip
        for i in range(len(stack) - 1, -1, -1):
            header = stack[i]
            if isinstance(header, (TCP, UDP)):
                enclosing_ip = ip_for_index.get(i)
                if isinstance(enclosing_ip, IPv4):
                    src = hdr.ipv4_bytes(enclosing_ip.src)
                    dst = hdr.ipv4_bytes(enclosing_ip.dst)
                elif isinstance(enclosing_ip, IPv6):
                    src = hdr.ipv6_bytes(enclosing_ip.src)
                    dst = hdr.ipv6_bytes(enclosing_ip.dst)
                else:
                    src = dst = b""
                inner = header.pack(inner, src, dst)
            else:
                inner = header.pack(inner)
        if len(inner) < MIN_FRAME_SIZE:
            inner = inner + b"\x00" * (MIN_FRAME_SIZE - len(inner))
        return inner
