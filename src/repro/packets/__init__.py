"""Packet construction and pcap I/O.

This package implements the wire formats the reproduction needs end to
end: frames are *built* here by the traffic generators
(:mod:`repro.traffic`), written to real libpcap-format files by the
capture models (:mod:`repro.capture`), and parsed back by the analysis
dissectors (:mod:`repro.analysis.dissect`).

The protocols implemented cover every header the paper reports seeing on
FABRIC: Ethernet, 802.1Q VLAN, MPLS (stacked), PseudoWire (Ethernet over
MPLS with control word), IPv4, IPv6, TCP, UDP, ICMP, ARP, and the
port-classified application layers (TLS, SSH, DNS, HTTP, NTP, iperf).
"""

from repro.packets.headers import (
    ARP,
    DNSHeader,
    Ethernet,
    HTTPPayload,
    ICMP,
    IPv4,
    IPv6,
    MPLS,
    NTPPayload,
    Payload,
    PseudoWireControlWord,
    SSHBanner,
    TCP,
    TLSRecord,
    UDP,
    VLAN,
    EtherType,
    IPProto,
)
from repro.packets.builder import FrameBuilder, FrameSpec
from repro.packets.pcap import PcapReader, PcapWriter, PcapRecord

__all__ = [
    "ARP",
    "DNSHeader",
    "Ethernet",
    "HTTPPayload",
    "ICMP",
    "IPv4",
    "IPv6",
    "MPLS",
    "NTPPayload",
    "Payload",
    "PseudoWireControlWord",
    "SSHBanner",
    "TCP",
    "TLSRecord",
    "UDP",
    "VLAN",
    "EtherType",
    "IPProto",
    "FrameBuilder",
    "FrameSpec",
    "PcapReader",
    "PcapWriter",
    "PcapRecord",
]
