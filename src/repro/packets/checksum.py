"""Internet checksum (RFC 1071) and helpers.

IPv4 headers, and TCP/UDP/ICMP segments, carry the one's-complement
checksum.  The traffic generators fill real checksums so the captures are
well-formed, and the dissectors can optionally validate them.
"""

from __future__ import annotations

import struct


def ones_complement_sum(data: bytes) -> int:
    """Return the 16-bit one's-complement sum over ``data``.

    Odd-length input is zero-padded on the right, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def internet_checksum(data: bytes) -> int:
    """Return the Internet checksum of ``data`` (RFC 1071)."""
    return (~ones_complement_sum(data)) & 0xFFFF


def pseudo_header_v4(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """IPv4 pseudo-header used by the TCP/UDP checksum."""
    return src + dst + struct.pack("!BBH", 0, proto, length)


def pseudo_header_v6(src: bytes, dst: bytes, proto: int, length: int) -> bytes:
    """IPv6 pseudo-header used by the TCP/UDP checksum (RFC 8200 §8.1)."""
    return src + dst + struct.pack("!IHBB", length, 0, 0, proto)


# IP protocol numbers, duplicated here (headers.py imports this module).
PROTO_TCP = 6
PROTO_UDP = 17


def transport_checksum(pseudo: bytes, segment: bytes, proto: int) -> int:
    """Checksum of a transport segment under the given pseudo-header.

    ``proto`` selects protocol-specific encoding rules: a UDP checksum
    of zero means "no checksum present" (RFC 768), so a *computed* zero
    is transmitted as 0xFFFF.  TCP has no such escape -- 0x0000 is a
    perfectly legal TCP checksum and must be emitted as-is.
    """
    checksum = internet_checksum(pseudo + segment)
    if proto == PROTO_UDP and checksum == 0:
        return 0xFFFF
    return checksum
