"""Classic libpcap file format reader/writer.

All three of the paper's capture methods "produce pcap files", and the
offline analysis pipeline consumes them.  We implement the classic
``.pcap`` container (magic ``0xa1b2c3d4``, microsecond timestamps,
LINKTYPE_ETHERNET) so files written here are readable by tcpdump and
Wireshark, and vice versa.

Truncation ("snaplen") is a first-class concept: the paper captures the
first 64/200 bytes of each frame, so a record's ``incl_len`` (captured
bytes) can be smaller than its ``orig_len`` (bytes on the wire).

A capture process killed mid-write (the crash the campaign layer
recovers from) leaves a pcap whose *final record* is cut short.  By
default the reader surfaces that as a flagged short read -- iteration
stops cleanly and :attr:`PcapReader.short_read` is set -- so analysis
can quarantine the file instead of dying in ``struct``; ``strict=True``
restores the old raise-on-truncation behaviour.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator, List, Optional, Union

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("!IHHiIII")
_GLOBAL_HEADER_LE = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("!IIII")
_RECORD_HEADER_LE = struct.Struct("<IIII")


@dataclass
class PcapRecord:
    """One captured frame.

    ``timestamp`` is seconds since the epoch (float, microsecond
    resolution survives a round trip); ``orig_len`` is the frame's length
    on the wire, which exceeds ``len(data)`` when the capture truncated.
    """

    timestamp: float
    data: bytes
    orig_len: Optional[int] = None

    def __post_init__(self) -> None:
        if self.orig_len is None:
            self.orig_len = len(self.data)
        if self.orig_len < len(self.data):
            raise ValueError("orig_len cannot be smaller than captured data")

    @property
    def truncated(self) -> bool:
        """True when the record captured fewer bytes than were on the wire."""
        return self.orig_len > len(self.data)


class PcapWriter:
    """Writes classic pcap files (big-endian, microsecond timestamps).

    Can be used as a context manager:

    >>> with PcapWriter("/tmp/sample.pcap", snaplen=200) as w:  # doctest: +SKIP
    ...     w.write(PcapRecord(0.0, frame_bytes))
    """

    def __init__(self, path: Union[str, Path, BinaryIO], snaplen: int = 65535):
        if snaplen <= 0:
            raise ValueError("snaplen must be positive")
        self.snaplen = snaplen
        self.records_written = 0
        self.bytes_written = 0
        self._closed = False
        if hasattr(path, "write"):
            self._handle: BinaryIO = path  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(path, "wb")
            self._owns_handle = True
        self._write_global_header()

    def _write_global_header(self) -> None:
        header = _GLOBAL_HEADER.pack(
            PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1], 0, 0, self.snaplen, LINKTYPE_ETHERNET
        )
        self._handle.write(header)
        self.bytes_written += len(header)

    def write(self, record: PcapRecord) -> None:
        """Write one record, truncating its data to the file's snaplen."""
        data = record.data[: self.snaplen]
        ts_sec = int(record.timestamp)
        ts_usec = int(round((record.timestamp - ts_sec) * 1_000_000))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        header = _RECORD_HEADER.pack(ts_sec, ts_usec, len(data), record.orig_len)
        self._handle.write(header)
        self._handle.write(data)
        self.records_written += 1
        self.bytes_written += len(header) + len(data)

    def flush(self) -> None:
        """Push buffered records down to the underlying handle."""
        self._handle.flush()

    def close(self) -> None:
        """Flush unconditionally; close the handle only if we opened it.

        A caller-owned handle stays open (the caller may keep writing to
        it), but its buffered records are flushed so readers never
        observe a truncated pcap after ``close()`` returns.
        """
        if self._closed:
            return
        self._closed = True
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PcapReader:
    """Reads classic pcap files in either byte order.

    Iterating yields :class:`PcapRecord` objects:

    >>> for record in PcapReader("/tmp/sample.pcap"):  # doctest: +SKIP
    ...     dissect(record.data)
    """

    def __init__(self, path: Union[str, Path, BinaryIO],
                 strict: bool = False):
        self.strict = strict
        # Set when a truncated final record was dropped (non-strict
        # mode): the signature of a capture killed mid-write.
        self.short_read = False
        if hasattr(path, "read"):
            self._handle: BinaryIO = path  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(path, "rb")
            self._owns_handle = True
        raw = self._handle.read(_GLOBAL_HEADER.size)
        if len(raw) < _GLOBAL_HEADER.size:
            raise ValueError("not a pcap file: truncated global header")
        (magic,) = struct.unpack("!I", raw[:4])
        if magic == PCAP_MAGIC:
            self._record_struct = _RECORD_HEADER
            fields = _GLOBAL_HEADER.unpack(raw)
        elif magic == PCAP_MAGIC_SWAPPED:
            self._record_struct = _RECORD_HEADER_LE
            fields = _GLOBAL_HEADER_LE.unpack(raw)
        else:
            raise ValueError(f"not a pcap file: bad magic 0x{magic:08x}")
        _, _vmaj, _vmin, _tz, _sig, self.snaplen, self.linktype = fields
        # Hot-path bindings: __next__ runs once per captured frame, so
        # avoid re-resolving these attributes on every record.
        self._read = self._handle.read
        self._rec_size = self._record_struct.size
        self._rec_unpack = self._record_struct.unpack

    def __iter__(self) -> Iterator[PcapRecord]:
        return self

    def __next__(self) -> PcapRecord:
        raw = self._read(self._rec_size)
        if not raw:
            raise StopIteration
        if len(raw) < self._rec_size:
            if self.strict:
                raise ValueError("truncated pcap record header")
            self.short_read = True
            raise StopIteration
        ts_sec, ts_usec, incl_len, orig_len = self._rec_unpack(raw)
        data = self._read(incl_len)
        if len(data) < incl_len:
            if self.strict:
                raise ValueError("truncated pcap record body")
            self.short_read = True
            raise StopIteration
        return PcapRecord(ts_sec + ts_usec / 1_000_000, data, orig_len)

    def iter_raw(self) -> Iterator[tuple]:
        """Yield ``(timestamp, data, orig_len)`` tuples without building
        :class:`PcapRecord` objects -- the Digest hot path's iterator.
        """
        read = self._read
        rec_size = self._rec_size
        unpack = self._rec_unpack
        while True:
            raw = read(rec_size)
            if not raw:
                return
            if len(raw) < rec_size:
                if self.strict:
                    raise ValueError("truncated pcap record header")
                self.short_read = True
                return
            ts_sec, ts_usec, incl_len, orig_len = unpack(raw)
            data = read(incl_len)
            if len(data) < incl_len:
                if self.strict:
                    raise ValueError("truncated pcap record body")
                self.short_read = True
                return
            yield ts_sec + ts_usec / 1_000_000, data, orig_len

    def read_all(self) -> List[PcapRecord]:
        """Read every remaining record into a list."""
        return list(self)

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
