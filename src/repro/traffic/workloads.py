"""Site workload personalities and the traffic orchestrator.

FABRIC sites have "diverse traffic characteristics, suggesting diverse
yet persistent workloads in those sites" (finding B1).  We model that
with per-site :class:`WorkloadProfile` personalities:

* ``bulk``        -- throughput experiments: standard-MTU iperf-style
                     TCP, few protocols, high per-flow rates.
* ``jumbo-bulk``  -- the same but with jumbo frames (the sites that give
                     FABRIC its unusual jumbo prevalence, finding B5).
* ``mixed``       -- application experiments: TLS/HTTP/SSH/DNS/NTP/ICMP
                     variety, deeper encapsulation, many small flows.
* ``chatty``      -- measurement/scan-style experiments: storms of tiny
                     flows (the source of Fig 13's >20 000-flow samples).
* ``quiet``       -- mostly idle sites.

Flow arrivals are Poisson with a per-window log-normal intensity
multiplier, which reproduces the paper's finding that background
activity is highly variable (B3): most windows are calm, some spike.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.testbed.federation import Federation
from repro.traffic.distributions import flow_size_sampler, poisson_arrival_times
from repro.traffic.encapsulation import EncapKind
from repro.traffic.endpoints import EndpointRegistry, TrafficEndpoint
from repro.traffic.flows import AppSpec, Flow, STANDARD_APPS
from repro.util.rng import SeedSequenceFactory

_flow_ids = itertools.count(1)


def _stable_hash(text: str) -> int:
    """Process-independent string hash (``hash()`` is salted)."""
    return zlib.crc32(text.encode("utf-8"))


@dataclass(frozen=True)
class WorkloadProfile:
    """One site personality."""

    name: str
    app_weights: Dict[str, float]
    flow_rate_per_s: float = 5.0
    rate_sigma: float = 0.8           # log-normal volatility of intensity
    remote_fraction: float = 0.3      # flows whose peer is at another site
    ipv6_fraction: float = 0.0
    encap_weights: Dict[EncapKind, float] = field(
        default_factory=lambda: {EncapKind.VLAN_MPLS: 0.8, EncapKind.VLAN_MPLS_PW: 0.2}
    )
    endpoints: int = 4
    slices: int = 3
    # Flow-size distribution (bytes): log-normal body + Pareto tail.
    flow_body_median: float = 3e4
    flow_body_sigma: float = 1.3
    flow_tail_probability: float = 0.03
    flow_tail_minimum: float = 2e6
    flow_tail_alpha: float = 1.1
    flow_size_cap: float = 1e8

    def pick_app(self, rng: np.random.Generator) -> AppSpec:
        names = list(self.app_weights)
        weights = np.array([self.app_weights[n] for n in names], dtype=float)
        weights /= weights.sum()
        return STANDARD_APPS[str(rng.choice(names, p=weights))]

    def pick_encap(self, rng: np.random.Generator) -> EncapKind:
        kinds = list(self.encap_weights)
        weights = np.array([self.encap_weights[k] for k in kinds], dtype=float)
        weights /= weights.sum()
        return kinds[int(rng.choice(len(kinds), p=weights))]


WORKLOAD_PROFILES: Dict[str, WorkloadProfile] = {
    "bulk": WorkloadProfile(
        name="bulk",
        app_weights={"iperf-tcp": 0.9, "dns": 0.05, "icmp": 0.05},
        flow_rate_per_s=2.0,
        rate_sigma=1.0,
        remote_fraction=0.45,
        ipv6_fraction=0.012,
        flow_body_median=1.5e6,
        flow_body_sigma=1.4,
        flow_tail_probability=0.12,
        flow_tail_minimum=2e7,
        flow_size_cap=3e8,
    ),
    "jumbo-bulk": WorkloadProfile(
        name="jumbo-bulk",
        app_weights={"iperf-jumbo": 0.82, "iperf-tcp": 0.12, "dns": 0.06},
        flow_rate_per_s=1.5,
        rate_sigma=1.0,
        remote_fraction=0.5,
        ipv6_fraction=0.012,
        flow_body_median=4e6,
        flow_body_sigma=1.4,
        flow_tail_probability=0.15,
        flow_tail_minimum=4e7,
        flow_size_cap=5e8,
    ),
    "mixed": WorkloadProfile(
        name="mixed",
        app_weights={
            "tls-web": 0.22, "http": 0.14, "ssh": 0.10, "dns": 0.22,
            "ntp": 0.10, "icmp": 0.08, "iperf-tcp": 0.14,
        },
        flow_rate_per_s=12.0,
        rate_sigma=1.2,
        remote_fraction=0.35,
        ipv6_fraction=0.04,
        encap_weights={
            EncapKind.VLAN: 0.2, EncapKind.VLAN_MPLS: 0.45,
            EncapKind.VLAN_MPLS_PW: 0.35,
        },
        endpoints=6,
        slices=6,
        flow_body_median=6e4,
        flow_body_sigma=1.6,
        flow_tail_probability=0.04,
        flow_tail_minimum=5e6,
    ),
    "chatty": WorkloadProfile(
        name="chatty",
        app_weights={"dns": 0.55, "ntp": 0.18, "icmp": 0.12, "tls-web": 0.15},
        flow_rate_per_s=180.0,
        rate_sigma=1.6,
        remote_fraction=0.2,
        ipv6_fraction=0.03,
        endpoints=8,
        slices=8,
        flow_body_median=400.0,
        flow_body_sigma=0.9,
        flow_tail_probability=0.005,
    ),
    "quiet": WorkloadProfile(
        name="quiet",
        app_weights={"ssh": 0.5, "dns": 0.3, "icmp": 0.2},
        flow_rate_per_s=0.15,
        rate_sigma=0.6,
        remote_fraction=0.2,
        endpoints=2,
        slices=1,
        flow_body_median=2e3,
        flow_body_sigma=1.0,
        flow_tail_probability=0.01,
    ),
}

# Mix used when assigning personalities to a federation, chosen so the
# aggregate frame-size and protocol profile lands near the paper's.
_PROFILE_MIX = (
    ("bulk", 0.46),
    ("jumbo-bulk", 0.08),
    ("mixed", 0.26),
    ("chatty", 0.08),
    ("quiet", 0.12),
)


def assign_site_profiles(
    site_names: Sequence[str], seed: int = 7
) -> Dict[str, WorkloadProfile]:
    """Deterministically assign a personality to every site."""
    rng = SeedSequenceFactory(seed).rng("traffic/site-profiles")
    names = [name for name, _w in _PROFILE_MIX]
    weights = np.array([w for _n, w in _PROFILE_MIX])
    weights = weights / weights.sum()
    return {
        site: WORKLOAD_PROFILES[str(rng.choice(names, p=weights))]
        for site in site_names
    }


class SiteTrafficGenerator:
    """Generates one site's traffic according to its personality."""

    def __init__(
        self,
        federation: Federation,
        registry: EndpointRegistry,
        site: str,
        profile: WorkloadProfile,
        rng: np.random.Generator,
        scale: float = 1.0,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.federation = federation
        self.registry = registry
        self.site = site
        self.profile = profile
        self.rng = rng
        self.scale = scale
        self.endpoints: List[TrafficEndpoint] = []
        self.remote_peers: List[TrafficEndpoint] = []
        self.flows: List[Flow] = []
        self._size_sampler = flow_size_sampler(
            body_median=profile.flow_body_median,
            body_sigma=profile.flow_body_sigma,
            tail_probability=profile.flow_tail_probability,
            tail_minimum=profile.flow_tail_minimum,
            tail_alpha=profile.flow_tail_alpha,
            cap=profile.flow_size_cap,
        )

    def setup(self) -> None:
        """Create this site's endpoints (one synthetic slice each)."""
        for i in range(self.profile.endpoints):
            slice_name = f"{self.site}-exp{i % self.profile.slices}"
            self.endpoints.append(self.registry.create(self.site, slice_name))

    def set_remote_peers(self, peers: Sequence[TrafficEndpoint]) -> None:
        """Provide the remote endpoints cross-site flows may target."""
        self.remote_peers = [p for p in peers if p.site != self.site]

    def generate_window(self, start: float, duration: float) -> List[Flow]:
        """Schedule this site's flows for one time window.

        Returns the flows created (already armed on the simulator).
        """
        intensity = float(self.rng.lognormal(0.0, self.profile.rate_sigma))
        arrivals = poisson_arrival_times(
            self.rng, self.profile.flow_rate_per_s * intensity, duration, start
        )
        created = []
        for at in arrivals:
            flow = self._make_flow(float(at), stop_time=start + duration)
            if flow is not None:
                flow.start()
                created.append(flow)
        self.flows.extend(created)
        return created

    # -- internals ------------------------------------------------------

    def _make_flow(self, at: float, stop_time: float) -> Optional[Flow]:
        if len(self.endpoints) < 2:
            return None
        app = self.profile.pick_app(self.rng)
        encap = self.profile.pick_encap(self.rng)
        src = self.endpoints[int(self.rng.integers(0, len(self.endpoints)))]
        go_remote = self.remote_peers and self.rng.random() < self.profile.remote_fraction
        if go_remote:
            dst = self.remote_peers[int(self.rng.integers(0, len(self.remote_peers)))]
        else:
            others = [e for e in self.endpoints if e is not src]
            dst = others[int(self.rng.integers(0, len(others)))]
        slice_index = int(self.rng.integers(0, self.profile.slices))
        flow_id = next(_flow_ids)
        return Flow(
            sim=self.federation.sim,
            flow_id=flow_id,
            src=src,
            dst=dst,
            app=app,
            total_bytes=max(1, int(min(self._size_sampler(self.rng),
                                       app.flow_bytes_cap) * self.scale)),
            rng=self.rng,
            rate_scale=self.scale,
            encap=encap,
            vlan_id=100 + (_stable_hash(f"{self.site}/{slice_index}") % 3000),
            mpls_label=16000 + (_stable_hash(f"{self.site}/{slice_index}/mpls") % 4000),
            use_ipv6=self.rng.random() < self.profile.ipv6_fraction,
            start_time=at,
            stop_time=stop_time,
        )


class TrafficOrchestrator:
    """Builds and drives every site's generator."""

    def __init__(
        self,
        federation: Federation,
        profiles: Optional[Dict[str, WorkloadProfile]] = None,
        seed: int = 7,
        scale: float = 1.0,
    ):
        self.federation = federation
        self.registry = EndpointRegistry(federation)
        self.profiles = profiles or assign_site_profiles(federation.site_names(), seed)
        seeds = SeedSequenceFactory(seed)
        self.generators: Dict[str, SiteTrafficGenerator] = {
            site: SiteTrafficGenerator(
                federation, self.registry, site, profile,
                seeds.rng(f"traffic/{site}"), scale=scale,
            )
            for site, profile in self.profiles.items()
        }
        self._setup_done = False

    def setup(self) -> None:
        """Create all endpoints and cross-wire remote peers.

        A multi-site slice runs *one* experiment, so a site's cross-site
        flows target endpoints at sites running the same kind of
        workload -- this is what keeps per-site traffic personalities
        distinct (the paper's finding B1) even though flows cross the
        federation.
        """
        if self._setup_done:
            return
        for generator in self.generators.values():
            generator.setup()
        by_profile: Dict[str, List[TrafficEndpoint]] = {}
        for site, generator in self.generators.items():
            by_profile.setdefault(generator.profile.name, []).extend(
                generator.endpoints)
        everyone = list(self.registry.endpoints)
        for site, generator in self.generators.items():
            kin = [e for e in by_profile.get(generator.profile.name, [])
                   if e.site != site]
            generator.set_remote_peers(kin if kin else everyone)
        self._setup_done = True

    def generate_window(self, start: float, duration: float,
                        sites: Optional[Sequence[str]] = None) -> List[Flow]:
        """Schedule traffic for one window at selected (default all) sites."""
        self.setup()
        flows = []
        for site, generator in self.generators.items():
            if sites is not None and site not in sites:
                continue
            flows.extend(generator.generate_window(start, duration))
        return flows
