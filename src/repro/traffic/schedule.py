"""Slice arrival, duration, and spread modelling.

The Section-5 study's slice statistics (Figs 3-5) came from anonymized
slice-creation records shared by the FABRIC operator.  We cannot have
those records, so this module generates a statistically-matched
synthetic history:

* **Spread** (Fig 3): 66.5 % of slices use a single site; the rest
  spread over a geometric number of sites.
* **Duration** (Fig 4): ~75 % of slices last <= 24 h (log-normal with a
  long tail out to weeks).
* **Concurrency** (Fig 5): mean ~85 simultaneous slices, sigma ~52,
  max ~272 -- produced by a *non-homogeneous* Poisson arrival process
  whose weekly intensity follows the research-deadline calendar (the
  ramp-ups into April and November, peaking the week before SC'24,
  that dominate Fig 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.rng import SeedSequenceFactory

HOURS = 3600.0
DAYS = 24 * HOURS
WEEKS = 7 * DAYS


def deadline_intensity(week: float) -> float:
    """Relative testbed-activity multiplier for a week of the year.

    Encodes the paper's observation that activity "ramps up" into key
    deadlines: a spring peak around late April and the dominant peak the
    week before Supercomputing in mid-November (week ~46), with troughs
    over summer and the new year.
    """
    base = 0.55
    spring = 1.6 * np.exp(-0.5 * ((week - 17.0) / 3.5) ** 2)
    autumn = 3.2 * np.exp(-0.5 * ((week - 46.0) / 2.2) ** 2)
    summer_dip = -0.25 * np.exp(-0.5 * ((week - 30.0) / 4.0) ** 2)
    return max(0.05, base + spring + autumn + summer_dip)


@dataclass(frozen=True)
class SliceRecord:
    """One slice's lifetime, as the operator's records would show it."""

    slice_id: int
    start: float            # seconds since epoch of the history
    duration: float         # seconds
    sites: Tuple[str, ...]  # sites the slice reserved resources in

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def site_count(self) -> int:
        return len(self.sites)


@dataclass
class SliceSchedule:
    """A generated slice history plus the analyses the study needs."""

    records: List[SliceRecord]
    horizon: float

    def concurrency_series(self, step: float = 6 * HOURS) -> Tuple[np.ndarray, np.ndarray]:
        """(times, active-slice counts) sampled every ``step`` seconds."""
        times = np.arange(0.0, self.horizon, step)
        starts = np.array([r.start for r in self.records])
        ends = np.array([r.end for r in self.records])
        counts = np.array([
            int(np.count_nonzero((starts <= t) & (ends > t))) for t in times
        ])
        return times, counts

    def duration_cdf(self, probe_hours: Sequence[float]) -> List[float]:
        """P(duration <= h) for each probe point in hours."""
        durations = np.array([r.duration for r in self.records]) / HOURS
        return [float(np.mean(durations <= h)) for h in probe_hours]

    def spread_histogram(self) -> Dict[int, float]:
        """Fraction of slices using exactly k sites."""
        counts: Dict[int, int] = {}
        for record in self.records:
            counts[record.site_count] = counts.get(record.site_count, 0) + 1
        total = len(self.records)
        return {k: v / total for k, v in sorted(counts.items())}

    def single_site_fraction(self) -> float:
        """Fraction of slices confined to one site (paper: 66.5 %)."""
        return self.spread_histogram().get(1, 0.0)


class SliceScheduleModel:
    """Generates slice histories with the paper's statistics."""

    def __init__(
        self,
        site_names: Sequence[str],
        seed: int = 11,
        single_site_fraction: float = 0.665,
        spread_geometric_p: float = 0.55,
        duration_median_hours: float = 6.0,
        duration_sigma: float = 1.9,
        base_arrivals_per_hour: float = 2.4,
    ):
        if not site_names:
            raise ValueError("need at least one site")
        self.site_names = list(site_names)
        self.seeds = SeedSequenceFactory(seed)
        self.single_site_fraction = single_site_fraction
        self.spread_geometric_p = spread_geometric_p
        self.duration_median_hours = duration_median_hours
        self.duration_sigma = duration_sigma
        self.base_arrivals_per_hour = base_arrivals_per_hour

    def generate(self, weeks: int = 52) -> SliceSchedule:
        """Generate ``weeks`` of slice history."""
        rng = self.seeds.rng("slices/history")
        horizon = weeks * WEEKS
        records: List[SliceRecord] = []
        slice_id = 0
        # Arrivals are generated hour by hour so the weekly deadline
        # profile modulates intensity smoothly.
        for hour in range(int(weeks * 7 * 24)):
            week = hour / (7 * 24)
            lam = self.base_arrivals_per_hour * deadline_intensity(week)
            for _ in range(rng.poisson(lam)):
                slice_id += 1
                start = hour * HOURS + rng.uniform(0.0, HOURS)
                records.append(
                    SliceRecord(
                        slice_id=slice_id,
                        start=start,
                        duration=self._sample_duration(rng),
                        sites=self._sample_sites(rng),
                    )
                )
        return SliceSchedule(records=records, horizon=horizon)

    # -- samplers ------------------------------------------------------

    def _sample_duration(self, rng: np.random.Generator) -> float:
        mu = np.log(self.duration_median_hours)
        hours = rng.lognormal(mu, self.duration_sigma)
        # Clamp to the range the operator's records span: minutes to months.
        return float(np.clip(hours, 0.05, 90 * 24)) * HOURS

    def _sample_sites(self, rng: np.random.Generator) -> Tuple[str, ...]:
        if rng.random() < self.single_site_fraction:
            count = 1
        else:
            count = 2 + rng.geometric(self.spread_geometric_p) - 1
            count = int(min(count, len(self.site_names)))
        picked = rng.choice(len(self.site_names), size=count, replace=False)
        return tuple(self.site_names[i] for i in picked)
