"""Workload and traffic generation.

This package plays the role of FABRIC's *researchers*: it creates
experiment endpoints on sites, assigns each site a workload personality,
and schedules flows whose frames traverse the simulated dataplane where
Patchwork's mirrors can see them.

The generators are calibrated against the paper's published profile:

* The FABRIC underlay tags traffic with VLAN and MPLS labels, and some
  paths use Ethernet-over-MPLS pseudowires, so an inner 1514-byte frame
  leaves the site as ~1540-1560 bytes on the wire -- this is why the
  paper's dominant frame-size bin is 1519-2047 B (74.7 %).
* Payload-free TCP ACKs land in the 65-127 B bin (14.15 %).
* IPv6 is rare (1.93 % of frames).
* Sites differ: some run simple throughput experiments (few protocols,
  jumbo frames), others run protocol-diverse application experiments
  (many distinct headers) -- the paper's Fig 11/15 spread.
"""

from repro.traffic.distributions import (
    FrameSizeBins,
    PAPER_FRAME_BINS,
    flow_size_sampler,
    lognormal_sampler,
    pareto_sampler,
)
from repro.traffic.encapsulation import EncapKind, underlay_stack
from repro.traffic.endpoints import EndpointRegistry, TrafficEndpoint
from repro.traffic.flows import AppSpec, Flow, STANDARD_APPS
from repro.traffic.workloads import (
    SiteTrafficGenerator,
    WorkloadProfile,
    WORKLOAD_PROFILES,
    assign_site_profiles,
)
from repro.traffic.schedule import SliceSchedule, SliceScheduleModel

__all__ = [
    "FrameSizeBins",
    "PAPER_FRAME_BINS",
    "flow_size_sampler",
    "lognormal_sampler",
    "pareto_sampler",
    "EncapKind",
    "underlay_stack",
    "EndpointRegistry",
    "TrafficEndpoint",
    "AppSpec",
    "Flow",
    "STANDARD_APPS",
    "SiteTrafficGenerator",
    "WorkloadProfile",
    "WORKLOAD_PROFILES",
    "assign_site_profiles",
    "SliceSchedule",
    "SliceScheduleModel",
]
