"""Flow-level traffic generation.

A :class:`Flow` is one application conversation between two endpoints.
It is generated open-loop: data frames leave the source at the flow's
rate, and every ``ack_every`` data frames the destination emits a
payload-free ACK in the reverse direction (the paper: "minimum-size
frames consist of payload-free ACKs in a TCP stream").  TCP flows open
with a SYN and close with a FIN (occasionally RST, which the paper calls
out as important control information).

Frames are built once as byte templates and then re-stamped per
transmission, so generating a large flow costs one frame construction
plus cheap per-frame events.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.netsim.engine import Simulator
from repro.netsim.frame import DEFAULT_HEAD_BYTES, Frame
from repro.packets.builder import FrameBuilder, FrameSpec, MIN_FRAME_SIZE
from repro.packets.headers import (
    DNSHeader,
    HTTPPayload,
    ICMP,
    IPv4,
    IPv6,
    NTPPayload,
    Payload,
    SSHBanner,
    TCP,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TLSRecord,
    UDP,
)
from repro.traffic.encapsulation import EncapKind, underlay_stack
from repro.traffic.endpoints import TrafficEndpoint

AppHeaderFactory = Callable[[np.random.Generator], Optional[object]]


@dataclass(frozen=True)
class AppSpec:
    """The shape of one application protocol's flows.

    ``inner_frame_size`` is the size of a full data frame *before* the
    underlay encapsulation (1514 for standard-MTU bulk transfer, ~9000
    for jumbo experiments).  ``rate_bps`` is the per-flow sending rate
    at simulation scale.
    """

    name: str
    transport: str  # "tcp" | "udp" | "icmp"
    dport: int
    inner_frame_size: int = 1514
    rate_bps: float = 20e6
    ack_every: int = 4
    request_response: bool = False
    app_header: Optional[AppHeaderFactory] = None
    rst_probability: float = 0.01
    # Per-app ceiling on flow bytes: a DNS exchange is a few frames no
    # matter how bulk-heavy the site's flow-size distribution is.
    flow_bytes_cap: float = float("inf")

    def __post_init__(self) -> None:
        if self.transport not in ("tcp", "udp", "icmp"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.inner_frame_size < MIN_FRAME_SIZE:
            raise ValueError("inner frame size below Ethernet minimum")


STANDARD_APPS: Dict[str, AppSpec] = {
    "iperf-tcp": AppSpec("iperf-tcp", "tcp", 5201, inner_frame_size=1514,
                         rate_bps=40e6, ack_every=6),
    "iperf-jumbo": AppSpec("iperf-jumbo", "tcp", 5201, inner_frame_size=8986,
                           rate_bps=80e6, ack_every=6),
    "tls-web": AppSpec("tls-web", "tcp", 443, inner_frame_size=1514,
                       rate_bps=10e6, ack_every=3, flow_bytes_cap=8e5,
                       app_header=lambda rng: TLSRecord()),
    "http": AppSpec("http", "tcp", 80, inner_frame_size=1514,
                    rate_bps=8e6, ack_every=3, flow_bytes_cap=5e5,
                    app_header=lambda rng: HTTPPayload(response=False)),
    "ssh": AppSpec("ssh", "tcp", 22, inner_frame_size=576,
                   rate_bps=1e6, ack_every=2, flow_bytes_cap=3e4,
                   app_header=lambda rng: SSHBanner()),
    "dns": AppSpec("dns", "udp", 53, inner_frame_size=220, rate_bps=1e6,
                   request_response=True, flow_bytes_cap=600,
                   app_header=lambda rng: DNSHeader(ident=int(rng.integers(0, 65536)))),
    "ntp": AppSpec("ntp", "udp", 123, inner_frame_size=110, rate_bps=1e6,
                   request_response=True, flow_bytes_cap=300,
                   app_header=lambda rng: NTPPayload()),
    "icmp": AppSpec("icmp", "icmp", 0, inner_frame_size=98, rate_bps=1e6,
                    request_response=True, flow_bytes_cap=500),
}


def _incremental_checksum_patch(data: bytearray, field_offset: int,
                                new_value: int, checksum_offset: int) -> None:
    """Replace a 16-bit field and fix the checksum incrementally.

    RFC 1624: HC' = ~(~HC + ~m + m').  A stored checksum of zero means
    "not checksummed" (UDP) and is left alone.
    """
    old = (data[field_offset] << 8) | data[field_offset + 1]
    checksum = (data[checksum_offset] << 8) | data[checksum_offset + 1]
    if checksum != 0:
        total = ((~checksum) & 0xFFFF) + ((~old) & 0xFFFF) + new_value
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        checksum = (~total) & 0xFFFF
        data[checksum_offset] = checksum >> 8
        data[checksum_offset + 1] = checksum & 0xFF
    data[field_offset] = new_value >> 8
    data[field_offset + 1] = new_value & 0xFF


class Flow:
    """One generated conversation.

    The flow schedules itself on the simulator: :meth:`start` arms the
    SYN (for TCP) and the first data frame; each data-frame event chains
    the next, so memory stays bounded for huge flows.  The flow stops at
    ``total_bytes`` sent or at ``stop_time``, whichever comes first.

    Frame templates are cached per (app, encapsulation, addressing)
    shape and per-flow port numbers are patched in with an incremental
    checksum update, so creating tens of thousands of small flows stays
    cheap while every flow keeps a distinct, valid five-tuple.
    """

    _builder = FrameBuilder()
    _template_cache: Dict[tuple, Frame] = {}
    _TEMPLATE_SPORT = 40000  # placeholder patched per flow

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        src: TrafficEndpoint,
        dst: TrafficEndpoint,
        app: AppSpec,
        total_bytes: int,
        rng: np.random.Generator,
        encap: EncapKind = EncapKind.VLAN_MPLS,
        vlan_id: int = 100,
        mpls_label: int = 16000,
        use_ipv6: bool = False,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        rtt: float = 0.004,
        rate_scale: float = 1.0,
    ):
        if total_bytes <= 0:
            raise ValueError("flow must carry at least one byte")
        self.sim = sim
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.app = app
        self.total_bytes = total_bytes
        self.rng = rng
        self.encap = encap
        self.vlan_id = vlan_id
        self.mpls_label = mpls_label
        self.use_ipv6 = use_ipv6
        self.start_time = start_time
        self.stop_time = stop_time
        self.rtt = rtt
        self.sport = int(rng.integers(32768, 61000))
        self.bytes_sent = 0
        self.frames_sent = 0
        self.finished = False
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        self.rate_scale = rate_scale
        self._data_template = self._build_frame(forward=True, kind="data")
        self._ack_template = self._build_frame(forward=False, kind="ack")
        self._data_interval = self._data_template.wire_len * 8.0 / (app.rate_bps * rate_scale)
        self._payload_per_frame = max(1, self._payload_bytes_per_data_frame())

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Arm the flow on the simulator."""
        at = max(self.start_time, self.sim.now)
        if self.app.transport == "tcp":
            syn = self._build_frame(forward=True, kind="syn")
            self.sim.schedule_at(at, self._send, self.src, syn)
            first_data = at + self.rtt  # handshake turnaround
        else:
            first_data = at
        self.sim.schedule_at(first_data, self._send_data)

    @property
    def expected_data_frames(self) -> int:
        """How many data frames the flow would need for its size."""
        return -(-self.total_bytes // self._payload_per_frame)

    # -- event handlers ------------------------------------------------------

    def _send_data(self) -> None:
        if self.finished:
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            self.finished = True
            return
        frame = self._stamp(self._data_template)
        self.src.send(frame)
        self.frames_sent += 1
        self.bytes_sent += self._payload_per_frame
        if self.app.request_response:
            # Request/response apps: each request earns one reply.
            self.sim.schedule(self.rtt / 2, self._send, self.dst, self._stamp(self._ack_template))
        elif self.app.ack_every > 0 and self.frames_sent % self.app.ack_every == 0:
            self.sim.schedule(self.rtt / 2, self._send, self.dst, self._stamp(self._ack_template))
        if self.bytes_sent >= self.total_bytes:
            self._finish()
            return
        self.sim.schedule(self._data_interval, self._send_data)

    def _finish(self) -> None:
        self.finished = True
        if self.app.transport == "tcp":
            kind = "rst" if self.rng.random() < self.app.rst_probability else "fin"
            closing = self._build_frame(forward=True, kind=kind)
            self.sim.schedule(self._data_interval, self._send, self.src, closing)

    def _send(self, endpoint: TrafficEndpoint, frame: Frame) -> None:
        endpoint.send(self._stamp(frame))

    def _stamp(self, template: Frame) -> Frame:
        """A per-transmission copy of a template frame."""
        return Frame(
            wire_len=template.wire_len,
            head=template.head,
            created_at=self.sim.now,
            flow_id=self.flow_id,
            slice_id=template.slice_id,
            site=template.site,
        )

    # -- frame construction ------------------------------------------------

    def _payload_bytes_per_data_frame(self) -> int:
        overhead = self._data_template.wire_len - self.app.inner_frame_size
        ip_tcp = 40 if not self.use_ipv6 else 60
        return max(1, self.app.inner_frame_size - 14 - ip_tcp)

    def _transport_offset(self) -> int:
        """Byte offset of the transport header in this flow's frames."""
        return 14 + _outer_overhead(self.encap) + (40 if self.use_ipv6 else 20)

    def _build_frame(self, forward: bool, kind: str) -> Frame:
        """A frame of one kind ('data'/'ack'/'syn'/'fin'/'rst'),
        fetched from the shape cache and patched with this flow's port."""
        src, dst = (self.src, self.dst) if forward else (self.dst, self.src)
        key = (self.app.name, self.encap, self.vlan_id, self.mpls_label,
               src.mac, dst.mac, self.use_ipv6, kind)
        template = self._template_cache.get(key)
        if template is None:
            template = self._build_template(src, dst, forward, kind)
            self._template_cache[key] = template
        head = bytearray(template.head)
        offset = self._transport_offset()
        if self.app.transport == "icmp":
            # Flow identity lives in the echo identifier.
            _incremental_checksum_patch(head, offset + 4,
                                        self.flow_id & 0xFFFF, offset + 2)
        else:
            field = offset if forward else offset + 2
            checksum = offset + (16 if self.app.transport == "tcp" else 6)
            _incremental_checksum_patch(head, field, self.sport, checksum)
        return Frame(
            wire_len=template.wire_len,
            head=bytes(head),
            created_at=self.sim.now,
            flow_id=self.flow_id,
            slice_id=src.slice_name,
            site=src.site,
        )

    def _build_template(self, src: TrafficEndpoint, dst: TrafficEndpoint,
                        forward: bool, kind: str) -> Frame:
        """Build the cacheable template for one frame shape."""
        stack: List[object] = underlay_stack(
            self.encap, src.mac, dst.mac, self.vlan_id, self.mpls_label,
            inner_src_mac=src.mac, inner_dst_mac=dst.mac,
        )
        if self.use_ipv6:
            stack.append(IPv6(src=src.ipv6, dst=dst.ipv6))
        else:
            stack.append(IPv4(src=src.ipv4, dst=dst.ipv4))
        sport = self._TEMPLATE_SPORT if forward else self.app.dport
        dport = self.app.dport if forward else self._TEMPLATE_SPORT
        is_data = kind == "data"
        if self.app.transport == "tcp":
            flags = {
                "data": TCP_ACK | TCP_PSH,
                "ack": TCP_ACK,
                "syn": TCP_SYN,
                "fin": TCP_FIN | TCP_ACK,
                "rst": TCP_RST,
            }[kind]
            stack.append(TCP(sport=sport, dport=dport, flags=flags))
        elif self.app.transport == "udp":
            stack.append(UDP(sport=sport, dport=dport))
        else:
            stack.append(ICMP(icmp_type=8 if forward else 0, ident=0))
        if is_data and self.app.app_header is not None:
            # Templates are cached process-wide, so building one must
            # not consume the flow's shared RNG stream: a later run in
            # the same process would hit the cache, skip the draw, and
            # desynchronize otherwise-identical seeded traffic.  The
            # header RNG is derived from the template shape instead.
            header_rng = np.random.default_rng(
                zlib.crc32(f"{self.app.name}/{kind}/{self.vlan_id}".encode()))
            app_header = self.app.app_header(header_rng)
            if app_header is not None:
                stack.append(app_header)
        if is_data or self.app.request_response:
            inner_size = self.app.inner_frame_size if is_data else max(
                MIN_FRAME_SIZE, self.app.inner_frame_size // 2
            )
        else:
            inner_size = MIN_FRAME_SIZE + 4  # payload-free ACK / control
        stack.append(Payload(0))
        target = inner_size + _outer_overhead(self.encap)
        data = self._builder.build(FrameSpec(stack, target_size=target))
        return Frame(
            wire_len=len(data),
            head=bytes(data[:DEFAULT_HEAD_BYTES]),
            created_at=self.sim.now,
            flow_id=self.flow_id,
            slice_id=src.slice_name,
            site=src.site,
        )


def _outer_overhead(kind: EncapKind) -> int:
    """Wire bytes the underlay adds on top of an inner frame."""
    return {
        EncapKind.PLAIN: 0,
        EncapKind.VLAN: 4,
        EncapKind.VLAN_MPLS: 8,
        EncapKind.VLAN_MPLS_PW: 30,  # VLAN + 2xMPLS + PW + second Ethernet
    }[kind]
