"""Statistical distributions used by the workload models.

Two families matter for reproducing the paper's profile:

* **Frame sizes** are analyzed in power-of-two-aligned bins; the bin
  edges here match the paper's reporting (64, 65-127, 128-255, ...,
  1519-2047, ..., >= 9000 treated as jumbo).
* **Flow sizes** are heavy-tailed: "most flows are short -- less than
  10^2 B -- but some flows were around 100 GB" (Section 8.2).  A
  mixture of a log-normal body and a Pareto tail reproduces that span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

# Upper edges of the paper's frame-size bins (inclusive).  1518 is the
# largest standard Ethernet frame; anything above is jumbo-class.
PAPER_BIN_EDGES = (64, 127, 255, 511, 1023, 1518, 2047, 4095, 8191, 16000)

JUMBO_THRESHOLD = 1519  # first byte count the paper counts as jumbo


@dataclass(frozen=True)
class FrameSizeBins:
    """Histogram bins over frame sizes.

    ``edges`` are inclusive upper bounds; a final implicit bin catches
    anything larger than the last edge.
    """

    edges: Tuple[int, ...] = PAPER_BIN_EDGES

    def labels(self) -> List[str]:
        """Human-readable labels, e.g. '1519-2047'."""
        labels = []
        lower = 0
        for edge in self.edges:
            labels.append(f"{lower}-{edge}" if lower < edge else str(edge))
            lower = edge + 1
        labels.append(f">{self.edges[-1]}")
        return labels

    def index_for(self, size: int) -> int:
        """Index of the bin containing ``size``."""
        return int(np.searchsorted(np.asarray(self.edges), size, side="left"))

    def label_for(self, size: int) -> str:
        return self.labels()[self.index_for(size)]

    def histogram(self, sizes: Sequence[int]) -> np.ndarray:
        """Counts per bin (length ``len(edges) + 1``)."""
        counts = np.zeros(len(self.edges) + 1, dtype=np.int64)
        if len(sizes) == 0:
            return counts
        indices = np.searchsorted(np.asarray(self.edges), np.asarray(sizes), side="left")
        np.add.at(counts, indices, 1)
        return counts

    def shares(self, sizes: Sequence[int]) -> np.ndarray:
        """Fraction of frames per bin."""
        counts = self.histogram(sizes)
        total = counts.sum()
        return counts / total if total else counts.astype(float)


PAPER_FRAME_BINS = FrameSizeBins()


def lognormal_sampler(median: float, sigma: float) -> Callable[[np.random.Generator], float]:
    """A sampler for log-normal values with the given median."""
    if median <= 0:
        raise ValueError("median must be positive")
    mu = float(np.log(median))

    def sample(rng: np.random.Generator) -> float:
        return float(rng.lognormal(mu, sigma))

    return sample


def pareto_sampler(minimum: float, alpha: float) -> Callable[[np.random.Generator], float]:
    """A sampler for Pareto(α) values with the given minimum."""
    if minimum <= 0 or alpha <= 0:
        raise ValueError("minimum and alpha must be positive")

    def sample(rng: np.random.Generator) -> float:
        return float(minimum * (1.0 + rng.pareto(alpha)))

    return sample


def flow_size_sampler(
    body_median: float = 80.0,
    body_sigma: float = 1.2,
    tail_minimum: float = 1e6,
    tail_alpha: float = 0.9,
    tail_probability: float = 0.03,
    cap: float = 100e9,
) -> Callable[[np.random.Generator], int]:
    """The paper-calibrated flow-size distribution (bytes).

    With the defaults, the median flow is under 100 B (short control
    exchanges) while roughly 3 % of flows are bulk transfers whose sizes
    follow a Pareto tail capped at 100 GB -- spanning the range the
    paper reports.
    """
    if not 0 <= tail_probability <= 1:
        raise ValueError("tail_probability must be a probability")
    body = lognormal_sampler(body_median, body_sigma)
    tail = pareto_sampler(tail_minimum, tail_alpha)

    def sample(rng: np.random.Generator) -> int:
        value = tail(rng) if rng.random() < tail_probability else body(rng)
        return int(min(max(1.0, value), cap))

    return sample


def poisson_arrival_times(
    rng: np.random.Generator, rate_per_second: float, duration: float, start: float = 0.0
) -> np.ndarray:
    """Arrival instants of a Poisson process over [start, start+duration)."""
    if rate_per_second < 0 or duration < 0:
        raise ValueError("rate and duration must be non-negative")
    expected = rate_per_second * duration
    count = rng.poisson(expected)
    if count == 0:
        return np.empty(0)
    return start + np.sort(rng.uniform(0.0, duration, size=count))
