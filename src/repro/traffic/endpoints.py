"""Traffic endpoints: addressable VM attachment points.

An endpoint is a (site, NIC port, MAC, IPv4, IPv6) tuple representing a
researcher VM's virtual function on a shared NIC.  The registry hands
out unique addresses and registers each endpoint's MAC with the
federation so the switches can forward to it from anywhere.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.packets.headers import mac_bytes
from repro.testbed.federation import Federation
from repro.testbed.nic import NicPort, SharedNIC


@dataclass
class TrafficEndpoint:
    """One experiment VM's network identity."""

    site: str
    nic_port: NicPort
    mac: str
    ipv4: str
    ipv6: str
    slice_name: str = ""

    def send(self, frame) -> bool:
        """Offer a frame to the testbed through this endpoint's port."""
        return self.nic_port.send(frame)


class EndpointRegistry:
    """Creates endpoints with unique addresses and testbed-wide routes.

    Addressing scheme: MACs are ``02:e0:xx:xx:xx:xx`` (locally
    administered), IPv4 addresses come from 10/8 (slices reuse private
    space, per the paper), IPv6 from a ULA prefix.
    """

    def __init__(self, federation: Federation):
        self.federation = federation
        self.endpoints: List[TrafficEndpoint] = []
        self._counter = itertools.count(1)
        self._by_site: Dict[str, List[TrafficEndpoint]] = {}

    def create(self, site_name: str, slice_name: str = "",
               nic_port: Optional[NicPort] = None) -> TrafficEndpoint:
        """Create an endpoint at a site (on its first shared NIC unless a
        port is given) and make it reachable federation-wide."""
        site = self.federation.site(site_name)
        if nic_port is None:
            if not site.shared_nics:
                raise RuntimeError(f"site {site_name} has no shared NICs")
            # Spread endpoints across the site's shared NICs round-robin.
            index = len(self._by_site.get(site_name, []))
            shared: SharedNIC = site.shared_nics[index % len(site.shared_nics)]
            shared.allocate_vf()
            nic_port = shared.ports[0]
        n = next(self._counter)
        mac = f"02:e0:{(n >> 24) & 0xFF:02x}:{(n >> 16) & 0xFF:02x}:{(n >> 8) & 0xFF:02x}:{n & 0xFF:02x}"
        ipv4 = f"10.{(n >> 16) & 0xFF}.{(n >> 8) & 0xFF}.{n & 0xFF}"
        ipv6 = f"fd00::{n:x}"
        endpoint = TrafficEndpoint(site_name, nic_port, mac, ipv4, ipv6, slice_name)
        switch_port = site.switch_port_for(nic_port)
        self.federation.register_endpoint(mac_bytes(mac), site_name, switch_port)
        self.endpoints.append(endpoint)
        self._by_site.setdefault(site_name, []).append(endpoint)
        return endpoint

    def at_site(self, site_name: str) -> List[TrafficEndpoint]:
        """All endpoints at a site."""
        return list(self._by_site.get(site_name, []))

    def __len__(self) -> int:
        return len(self.endpoints)
