"""FABRIC underlay encapsulation profiles.

The testbed isolates researchers' traffic with virtualization tags:
frames observed by Patchwork carry stacks like
``Ethernet / VLAN / MPLS / MPLS / PseudoWire / Ethernet / IPv4 / TCP``
(paper Section 8.2).  This module builds the *outer* portion of a frame
stack for a chosen encapsulation kind; the flow layer appends the inner
IP/transport/application headers.

The outer Ethernet addresses are the communicating endpoints' MACs so
the simulated switches can forward on them; VLAN IDs and MPLS labels are
per-slice, which is also what makes flows from different slices
distinguishable even when they reuse the same 10/8 addresses (the
paper's flow-classification rule).
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from repro.packets.headers import MPLS, PseudoWireControlWord, Ethernet, VLAN


class EncapKind(Enum):
    """How deeply the underlay wraps a slice's traffic."""

    PLAIN = "plain"                    # Ethernet only (intra-site, untagged)
    VLAN = "vlan"                      # Ethernet / VLAN
    VLAN_MPLS = "vlan-mpls"            # Ethernet / VLAN / MPLS
    VLAN_MPLS_PW = "vlan-mpls-pw"      # Eth / VLAN / MPLS / MPLS / PW / Eth

    @property
    def overhead_bytes(self) -> int:
        """Bytes the underlay adds on top of the inner frame."""
        return {
            EncapKind.PLAIN: 0,
            EncapKind.VLAN: 4,
            EncapKind.VLAN_MPLS: 8,
            EncapKind.VLAN_MPLS_PW: 34,  # VLAN4 + MPLS4*2 + PW4 + inner Eth 14 + outer/inner diff
        }[self]

    @property
    def header_depth(self) -> int:
        """Number of headers the kind contributes before the network layer."""
        return {
            EncapKind.PLAIN: 1,
            EncapKind.VLAN: 2,
            EncapKind.VLAN_MPLS: 3,
            EncapKind.VLAN_MPLS_PW: 6,
        }[self]


def underlay_stack(
    kind: EncapKind,
    src_mac: str,
    dst_mac: str,
    vlan_id: int = 100,
    mpls_label: int = 16000,
    inner_src_mac: Optional[str] = None,
    inner_dst_mac: Optional[str] = None,
) -> List[object]:
    """Build the outer header list for one encapsulation kind.

    For :attr:`EncapKind.VLAN_MPLS_PW` the returned stack ends with the
    *inner* Ethernet header (pseudowire payload); other kinds end just
    before the network layer.
    """
    if kind is EncapKind.PLAIN:
        return [Ethernet(src=src_mac, dst=dst_mac)]
    if kind is EncapKind.VLAN:
        return [Ethernet(src=src_mac, dst=dst_mac), VLAN(vlan_id)]
    if kind is EncapKind.VLAN_MPLS:
        return [Ethernet(src=src_mac, dst=dst_mac), VLAN(vlan_id), MPLS(mpls_label)]
    if kind is EncapKind.VLAN_MPLS_PW:
        return [
            Ethernet(src=src_mac, dst=dst_mac),
            VLAN(vlan_id),
            MPLS(mpls_label),
            MPLS(mpls_label + 1),
            PseudoWireControlWord(),
            Ethernet(src=inner_src_mac or src_mac, dst=inner_dst_mac or dst_mac),
        ]
    raise ValueError(f"unknown encapsulation kind {kind!r}")
