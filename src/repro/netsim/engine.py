"""The discrete-event engine.

A minimal, fast event loop: events are ``(time, sequence, callback)``
triples in a binary heap.  The sequence number breaks ties so that events
scheduled at the same instant fire in scheduling order, which keeps runs
deterministic (a requirement for reproducible experiments).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancellation is lazy: :meth:`cancel` marks the event and the loop
    skips it when popped, which is O(1) instead of O(n) heap surgery.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple,
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} #{self.seq}{state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self.events_processed = 0
        self._live = 0  # pending non-cancelled events (O(1) `pending`)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} (now is {self.now})")
        event = Event(time, next(self._counter), callback, args, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run one event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fired = True
            self._live -= 1
            event.callback(*event.args)
            self.events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have fired.

        The two limits compose: whichever is hit first stops the run.
        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end -- even if the queue drained earlier, and
        also when ``max_events`` stopped the run with no remaining work
        at or before ``until`` -- so periodic processes can be re-armed
        from a known time.  If the event cap left unfired events at or
        before ``until``, the clock stays at the last fired event (it
        never jumps over pending work).
        """
        fired = 0
        while self._heap:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if until is not None and self.now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self.now = until

    @property
    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live
