"""Channels and links.

A :class:`Channel` is one unidirectional transmission path: a serializer
of fixed ``rate_bps`` preceded by a finite FIFO queue, followed by a
fixed propagation delay.  A :class:`DuplexLink` is the Tx/Rx channel pair
that every FABRIC link consists of ("All links consist of two
uni-directional channels", paper Section 3).

Channels keep cumulative byte/frame counters for both delivered and
dropped traffic.  The telemetry layer (:mod:`repro.telemetry`) polls
these counters exactly as FABRIC's SNMP collector polls switch interface
counters, so rate estimation and congestion detection work from the same
signal the paper uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List

from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame

Sink = Callable[[Frame], None]


@dataclass
class ChannelStats:
    """Cumulative counters, in the style of SNMP interface MIB counters."""

    tx_frames: int = 0
    tx_bytes: int = 0
    dropped_frames: int = 0
    dropped_bytes: int = 0
    offered_frames: int = 0
    offered_bytes: int = 0
    # Frames handed to the channel's sinks, i.e. past serialization AND
    # propagation.  offered - dropped - delivered = frames in flight.
    delivered_frames: int = 0
    delivered_bytes: int = 0

    def copy(self) -> "ChannelStats":
        return ChannelStats(
            self.tx_frames,
            self.tx_bytes,
            self.dropped_frames,
            self.dropped_bytes,
            self.offered_frames,
            self.offered_bytes,
            self.delivered_frames,
            self.delivered_bytes,
        )


class Channel:
    """A unidirectional, rate-limited, store-and-forward channel.

    Frames offered while the queue holds ``queue_limit_bytes`` are
    dropped (tail drop) and counted -- this is the mechanism behind the
    paper's mirroring-overflow hazard.
    """

    # FABRIC configures jumbo frames throughout its network (paper
    # Section 8.2); the default MTU accommodates 9000-byte payloads
    # plus encapsulation overhead.
    DEFAULT_MTU = 9216

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        queue_limit_bytes: int = 512 * 1024,
        propagation_delay: float = 0.0,
        name: str = "",
        mtu: int = DEFAULT_MTU,
    ):
        if rate_bps <= 0:
            raise ValueError("channel rate must be positive")
        if queue_limit_bytes <= 0:
            raise ValueError("queue limit must be positive")
        if mtu < 64:
            raise ValueError("MTU below the Ethernet minimum")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self.queue_limit_bytes = int(queue_limit_bytes)
        self.propagation_delay = float(propagation_delay)
        self.name = name
        self.mtu = int(mtu)
        self.oversize_drops = 0
        self.stats = ChannelStats()
        self._sinks: List[Sink] = []
        self._taps: List[Sink] = []
        self._queue: Deque[Frame] = deque()
        self._queued_bytes = 0
        self._busy = False

    # -- wiring ---------------------------------------------------------

    def connect(self, sink: Sink) -> None:
        """Deliver transmitted frames to ``sink`` (multiple allowed)."""
        self._sinks.append(sink)

    def disconnect(self, sink: Sink) -> None:
        """Stop delivering to ``sink``."""
        self._sinks.remove(sink)

    def add_tap(self, tap: Sink) -> None:
        """Observe every frame *offered* to this channel (pre-queue).

        Taps are how port mirroring is implemented: the switch taps the
        mirrored port's channels and re-offers clones to the mirror
        port's Tx channel.  A tap sees frames that may later be dropped,
        just like a span port configured upstream of an egress queue.
        """
        self._taps.append(tap)

    def remove_tap(self, tap: Sink) -> None:
        """Remove a previously-added tap."""
        self._taps.remove(tap)

    # -- dataplane ------------------------------------------------------

    def offer(self, frame: Frame) -> bool:
        """Submit a frame for transmission.

        Returns True if it was queued, False if tail-dropped.
        """
        stats = self.stats
        stats.offered_frames += 1
        stats.offered_bytes += frame.wire_len
        if frame.wire_len > self.mtu:
            self.oversize_drops += 1
            stats.dropped_frames += 1
            stats.dropped_bytes += frame.wire_len
            return False
        if self._taps:
            for tap in tuple(self._taps):
                tap(frame)
        if self._queued_bytes + frame.wire_len > self.queue_limit_bytes:
            stats.dropped_frames += 1
            stats.dropped_bytes += frame.wire_len
            return False
        self._queue.append(frame)
        self._queued_bytes += frame.wire_len
        if not self._busy:
            self._start_next()
        return True

    @property
    def queue_depth_bytes(self) -> int:
        """Bytes currently waiting (excluding the frame in serialization)."""
        return self._queued_bytes

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        frame = self._queue.popleft()
        self._queued_bytes -= frame.wire_len
        serialization = frame.wire_len * 8.0 / self.rate_bps
        self.sim.schedule(serialization, self._finish_transmit, frame)

    def _finish_transmit(self, frame: Frame) -> None:
        self.stats.tx_frames += 1
        self.stats.tx_bytes += frame.wire_len
        if self.propagation_delay > 0:
            self.sim.schedule(self.propagation_delay, self._deliver, frame)
        else:
            self._deliver(frame)
        self._start_next()

    def _deliver(self, frame: Frame) -> None:
        self.stats.delivered_frames += 1
        self.stats.delivered_bytes += frame.wire_len
        # Sinks are wired at construction time and (rarely) changed from
        # control-plane code, never from inside a delivery -- safe to
        # iterate without copying on this per-frame hot path.
        for sink in self._sinks:
            sink(frame)

    @property
    def in_flight_frames(self) -> int:
        """Frames accepted but not yet delivered (queued, serializing,
        or propagating)."""
        s = self.stats
        return s.offered_frames - s.dropped_frames - s.delivered_frames

    def utilization(self, since_stats: ChannelStats, interval: float) -> float:
        """Fraction of capacity used since a previous stats snapshot."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        sent_bits = (self.stats.tx_bytes - since_stats.tx_bytes) * 8.0
        return sent_bits / (self.rate_bps * interval)

    def __repr__(self) -> str:
        return f"<Channel {self.name or id(self)} {self.rate_bps:.3g}bps>"


class DuplexLink:
    """A full-duplex link: two independent channels, one per direction.

    By FABRIC convention we name the directions from the switch's point
    of view: ``tx`` carries frames *out of* the switch port, ``rx``
    carries frames *into* it.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        queue_limit_bytes: int = 512 * 1024,
        propagation_delay: float = 0.0,
        name: str = "",
    ):
        self.name = name
        self.tx = Channel(sim, rate_bps, queue_limit_bytes, propagation_delay, f"{name}/tx")
        self.rx = Channel(sim, rate_bps, queue_limit_bytes, propagation_delay, f"{name}/rx")

    @property
    def rate_bps(self) -> float:
        return self.tx.rate_bps

    def __repr__(self) -> str:
        return f"<DuplexLink {self.name} {self.rate_bps:.3g}bps>"
