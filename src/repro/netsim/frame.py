"""The unit of dataplane traffic.

A :class:`Frame` carries its full on-the-wire length plus only the *head*
bytes of the serialized frame.  This mirrors what the reproduction needs:
the paper's captures truncate every frame to its first 200 bytes anyway,
so simulating megabytes of opaque payload content would buy nothing.  The
head always contains the complete header stack (built by
:mod:`repro.packets.builder`), so the analysis dissectors see real bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_frame_ids = itertools.count(1)

# How many leading bytes of each frame the generators serialize.  This
# comfortably exceeds the deepest encapsulation stack the paper reports
# (12 headers) plus the paper's largest truncation length (200 B).
DEFAULT_HEAD_BYTES = 256


@dataclass
class Frame:
    """One Ethernet frame in flight.

    ``wire_len`` is the frame's size on the wire excluding FCS (matching
    pcap's ``orig_len``).  ``head`` holds at least the header stack.  The
    metadata fields (``flow_id``, ``slice_id``, ``site``) exist for
    bookkeeping and validation in tests -- the capture and analysis code
    never reads them, it works from the bytes like the real system.
    """

    wire_len: int
    head: bytes
    created_at: float = 0.0
    flow_id: int = 0
    slice_id: str = ""
    site: str = ""
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.wire_len <= 0:
            raise ValueError("frame must have positive wire length")
        if len(self.head) > self.wire_len:
            raise ValueError("head cannot exceed wire length")

    def captured_bytes(self, snaplen: int) -> bytes:
        """The bytes a capture with the given snap length would record.

        If the requested snaplen exceeds the serialized head, the head is
        zero-padded -- payload bytes are opaque filler by construction.
        """
        if snaplen <= len(self.head):
            return self.head[:snaplen]
        want = min(snaplen, self.wire_len)
        return self.head + b"\x00" * (want - len(self.head))

    def clone(self) -> "Frame":
        """A copy with its own frame id (used by port mirroring)."""
        return Frame(
            wire_len=self.wire_len,
            head=self.head,
            created_at=self.created_at,
            flow_id=self.flow_id,
            slice_id=self.slice_id,
            site=self.site,
        )
