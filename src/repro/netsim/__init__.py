"""Discrete-event dataplane simulation.

This is the substrate that stands in for FABRIC's physical network: a
frame-granularity discrete-event simulator with unidirectional channels
(rate + propagation delay + finite egress queue), duplex links built from
channel pairs, and byte/frame counters that the telemetry layer polls the
way FABRIC's SNMP collector polls switch counters.

The crucial behaviour preserved from the paper: a channel is a
fixed-capacity serializer, so when port mirroring copies both the Rx and
Tx of a mirrored port onto a single egress channel, frames are dropped at
the switch whenever Mirrored(Tx) + Mirrored(Rx) exceeds the line rate
(Section 6.2.2 of the paper).
"""

from repro.netsim.engine import Event, Simulator
from repro.netsim.frame import Frame
from repro.netsim.link import Channel, ChannelStats, DuplexLink

__all__ = [
    "Event",
    "Simulator",
    "Frame",
    "Channel",
    "ChannelStats",
    "DuplexLink",
]
