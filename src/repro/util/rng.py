"""Deterministic randomness plumbing.

Every stochastic component in the reproduction (traffic generators, the
fault injector, the slice-arrival process, ...) draws from a
:class:`numpy.random.Generator` handed to it by its owner.  To keep whole
experiments reproducible from one integer seed while still giving each
component an independent stream, seeds are derived by hashing a *label*
path into a :class:`numpy.random.SeedSequence` -- the same scheme NumPy
recommends for parallel streams.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

#: The canonical seed domain: every master seed is reduced into this
#: mask before it touches a SeedSequence, and every derived child seed
#: already lives inside it.  One shared domain keeps derivation *closed
#: under composition*: ``derive_rng(factory.child(a).seed, b)`` sees
#: exactly the integer ``child`` produced, never a value that a wider
#: mask in one code path and a narrower mask in another would split
#: into two different streams (the shard-seeding drift bug).
SEED_DOMAIN = (1 << 63) - 1


def _label_entropy(label: str) -> int:
    """Map an arbitrary string label to a stable 128-bit integer."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Return an independent generator for ``label`` under master ``seed``.

    The same ``(seed, label)`` pair always yields the same stream, and
    distinct labels yield statistically independent streams.
    """
    sequence = np.random.SeedSequence([seed & SEED_DOMAIN, _label_entropy(label)])
    return np.random.Generator(np.random.PCG64(sequence))


class SeedSequenceFactory:
    """Hands out labelled, reproducible generators from one master seed.

    A factory is created once per experiment and threaded through the
    components that need randomness:

    >>> factory = SeedSequenceFactory(seed=7)
    >>> rng_a = factory.rng("traffic/site-STAR")
    >>> rng_b = factory.rng("faults/allocator")

    Requesting the same label twice returns a *fresh* generator with the
    same stream, so components never accidentally share draw positions.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def rng(self, label: str) -> np.random.Generator:
        """Return the generator associated with ``label``."""
        return derive_rng(self.seed, label)

    def child(self, label: str) -> "SeedSequenceFactory":
        """Return a factory namespaced under ``label``.

        Useful when a subsystem wants to hand out its own sub-streams
        without knowing the labels its parent used.
        """
        child_seed = _label_entropy(f"{self.seed}/{label}") & SEED_DOMAIN
        return SeedSequenceFactory(child_seed)

    def integer(self, label: str, low: int, high: Optional[int] = None) -> int:
        """Draw a single reproducible integer for ``label``."""
        return int(self.rng(label).integers(low, high))
