"""CSV and ASCII-table emission.

The paper's analysis ``Process`` step "produces CSV files that describe
different aspects of the profile".  This module provides the small amount
of structure we need for that: a :class:`Table` that can be built row by
row, written to CSV, and rendered as an aligned ASCII table for terminal
output (the benchmark harnesses print the same rows the paper's tables
report).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Iterable, List, Sequence


class Table:
    """An ordered collection of rows under a fixed header.

    >>> t = Table(["Frame Size (B)", "Rate (Gbps)", "Cores", "Loss (%)"])
    >>> t.add_row([1514, 100, 5, 0.67])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str = ""):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns: List[str] = list(columns)
        self.rows: List[List[Any]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        """Append one row; its length must match the header."""
        values = list(row)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def sort_by(self, column: str, reverse: bool = False) -> None:
        """Sort rows in place by the named column."""
        index = self.columns.index(column)
        self.rows.sort(key=lambda row: row[index], reverse=reverse)

    def column(self, name: str) -> List[Any]:
        """Return the values of one column across all rows."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_csv(self, path: "str | Path") -> Path:
        """Write the table to a CSV file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path

    def to_dict(self) -> dict:
        """Plain-data form for JSON emission (``--json`` CLI modes)."""
        return {"title": self.title, "columns": list(self.columns),
                "rows": [list(row) for row in self.rows]}

    def to_csv_string(self) -> str:
        """Return the CSV serialization as a string."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, path: "str | Path", title: str = "") -> "Table":
        """Load a table previously written with :meth:`to_csv`."""
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            table = cls(header, title=title)
            for row in reader:
                table.add_row(row)
        return table

    def render(self, max_rows: int = 0) -> str:
        """Render an aligned ASCII table (optionally truncated)."""
        rows = self.rows if max_rows <= 0 else self.rows[:max_rows]
        cells = [self.columns] + [[_format_cell(c) for c in row] for row in rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(name.ljust(widths[i]) for i, name in enumerate(cells[0]))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if max_rows and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
