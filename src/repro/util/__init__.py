"""Shared utilities for the Patchwork reproduction.

This package holds code that is useful across the testbed model, the
traffic generators, the capture-path models, and the analysis pipeline:

* :mod:`repro.util.units` -- parsing and formatting of data rates and
  sizes (``"100Gbps"``, ``"32MB"``) and time quantities.
* :mod:`repro.util.rng` -- deterministic random-number-generator plumbing
  so every experiment is reproducible from a single seed.
* :mod:`repro.util.tables` -- lightweight CSV/ASCII table emission used by
  the analysis ``Process`` step and by the benchmark harnesses.
"""

from repro.util.units import (
    GBPS,
    GIB,
    KIB,
    MBPS,
    MIB,
    format_rate,
    format_size,
    parse_rate,
    parse_size,
)
from repro.util.rng import SeedSequenceFactory, derive_rng

__all__ = [
    "GBPS",
    "GIB",
    "KIB",
    "MBPS",
    "MIB",
    "format_rate",
    "format_size",
    "parse_rate",
    "parse_size",
    "SeedSequenceFactory",
    "derive_rng",
]
