"""Atomic file IO: the write path every durable artifact goes through.

A 13-month campaign's run state must survive the death of the process
writing it.  Two primitives make that possible:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` -- the classic
  temp-file-in-same-directory + flush + ``fsync`` + ``os.replace``
  + directory-``fsync`` dance, so a reader either sees the old file or
  the complete new file, never a torn one;
* :class:`FileIO` -- the narrow seam between durable-state writers and
  the OS (write / fsync / replace / fsync_dir).  Production code uses
  the default instance; the chaos harness substitutes a crashing
  implementation to fuzz every point in the commit protocol without
  monkeypatching.

Every call through a :class:`FileIO` counts as one *op*; the chaos
harness sizes its crash-point fuzzing from the op count of an
uninterrupted reference run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO, Union


class SimulatedCrash(BaseException):
    """An injected process death at a fuzzed crash point.

    Deliberately a ``BaseException``: no ``except Exception`` recovery
    handler anywhere in the stack may swallow it, exactly like a real
    ``SIGKILL`` gives no handler a chance to run.
    """


class FileIO:
    """Durable-write syscall seam (and op counter) for run state.

    Subclasses override individual operations to inject faults; the
    base class is the real thing.  ``ops`` counts every operation so a
    reference run measures how many crash points a scenario has.
    """

    def __init__(self) -> None:
        self.ops = 0

    def write(self, handle: BinaryIO, data: bytes) -> int:
        self.ops += 1
        return handle.write(data)

    def fsync(self, handle: BinaryIO) -> None:
        self.ops += 1
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: Union[str, Path], dst: Union[str, Path]) -> None:
        self.ops += 1
        os.replace(src, dst)

    def fsync_dir(self, path: Union[str, Path]) -> None:
        """Flush a directory entry (makes a rename itself durable)."""
        self.ops += 1
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return  # not supported on this platform/filesystem
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


#: The production IO layer.  Module-level so ad-hoc callers (CLI, tests
#: that do not fuzz) share one op counter-free default.
DEFAULT_IO = FileIO()


def _tmp_path(path: Path) -> Path:
    """Temp name in the *same directory* so ``os.replace`` stays atomic
    (a cross-filesystem rename degrades to copy+delete)."""
    return path.parent / f".{path.name}.tmp"


def atomic_write_bytes(path: Union[str, Path], data: bytes,
                       io: FileIO = None) -> Path:
    """Write ``data`` to ``path`` so readers never observe a torn file."""
    io = io if io is not None else DEFAULT_IO
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_path(path)
    with open(tmp, "wb") as handle:
        io.write(handle, data)
        io.fsync(handle)
    io.replace(tmp, path)
    io.fsync_dir(path.parent)
    return path


def atomic_write_text(path: Union[str, Path], text: str,
                      io: FileIO = None) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"), io=io)


def sweep_tmp_files(directory: Union[str, Path]) -> int:
    """Remove orphaned ``.*.tmp`` files a crash left behind.

    A crash between the temp-file write and ``os.replace`` leaves the
    temp file on disk; it holds no committed state and recovery must
    not read it.  Returns the number of files removed.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for tmp in directory.glob(".*.tmp"):
        tmp.unlink()
        removed += 1
    return removed
