"""Units used throughout the reproduction.

Conventions
-----------
* Data **rates** are stored internally in **bits per second** (float).
* Data **sizes** are stored internally in **bytes** (int where possible).
* **Time** is stored in **seconds** (float), matching the discrete-event
  simulator's clock.

The parsing helpers accept the informal notation used in the paper and in
networking practice: ``"100Gbps"``, ``"8.5 Gbps"``, ``"32MB"``, ``"4KB"``.
Rates use decimal (SI) prefixes, as is conventional for link speeds; sizes
accept both decimal (``KB``/``MB``/``GB``) and binary (``KiB``/``MiB``/
``GiB``) prefixes.
"""

from __future__ import annotations

import re

# Rate constants (bits per second).
KBPS = 1_000.0
MBPS = 1_000_000.0
GBPS = 1_000_000_000.0
TBPS = 1_000_000_000_000.0

# Size constants (bytes).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

_RATE_SUFFIXES = {
    "bps": 1.0,
    "kbps": KBPS,
    "mbps": MBPS,
    "gbps": GBPS,
    "tbps": TBPS,
}

_SIZE_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": GB * 1000,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "tib": GIB * 1024,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]+)\s*$")


def parse_rate(text: "str | float | int") -> float:
    """Parse a data rate into bits per second.

    Numeric input is returned unchanged (assumed to already be in bps).

    >>> parse_rate("100Gbps")
    100000000000.0
    >>> parse_rate("8.5 Gbps")
    8500000000.0
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _QUANTITY_RE.match(text)
    if not match:
        raise ValueError(f"unparseable rate: {text!r}")
    value, suffix = match.groups()
    try:
        scale = _RATE_SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError(f"unknown rate suffix in {text!r}") from None
    return float(value) * scale


def parse_size(text: "str | int") -> int:
    """Parse a data size into bytes.

    Integer input is returned unchanged (assumed to already be bytes).

    >>> parse_size("32MB")
    32000000
    >>> parse_size("4KiB")
    4096
    """
    if isinstance(text, int):
        return text
    match = _QUANTITY_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    value, suffix = match.groups()
    try:
        scale = _SIZE_SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError(f"unknown size suffix in {text!r}") from None
    return int(float(value) * scale)


def _trim_fraction(value: float, precision: int) -> str:
    """Format ``value`` then drop only a trailing *fractional* tail.

    Stripping must never touch the integer part: ``f"{20:.0f}"`` is
    ``"20"``, and a bare ``rstrip("0")`` would corrupt it to ``"2"``.
    """
    text = f"{value:.{precision}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text


def format_rate(bps: float, precision: int = 2) -> str:
    """Format a bits-per-second rate with the most natural SI prefix.

    >>> format_rate(100e9)
    '100Gbps'
    >>> format_rate(20e9, precision=0)
    '20Gbps'
    """
    for suffix, scale in (("Tbps", TBPS), ("Gbps", GBPS), ("Mbps", MBPS), ("Kbps", KBPS)):
        if abs(bps) >= scale:
            return f"{_trim_fraction(bps / scale, precision)}{suffix}"
    return f"{_trim_fraction(bps, precision)}bps"


def format_size(num_bytes: float, precision: int = 2) -> str:
    """Format a byte count with the most natural decimal prefix.

    >>> format_size(32_000_000)
    '32MB'
    >>> format_size(400_000, precision=0)
    '400KB'
    """
    for suffix, scale in (("TB", GB * 1000), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(num_bytes) >= scale:
            return f"{_trim_fraction(num_bytes / scale, precision)}{suffix}"
    return f"{int(num_bytes)}B"


def bits(num_bytes: float) -> float:
    """Convert bytes to bits."""
    return num_bytes * 8.0


def bytes_per_second(rate_bps: float) -> float:
    """Convert a bit rate to a byte rate."""
    return rate_bps / 8.0


def transmission_time(frame_bytes: int, rate_bps: float) -> float:
    """Seconds needed to serialize ``frame_bytes`` onto a link at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError("link rate must be positive")
    return (frame_bytes * 8.0) / rate_bps
