"""Command-line interface.

FABRIC users drive the real Patchwork through scripts; this CLI packages
the reproduction's workflows the same way:

``python -m repro study``
    Run the Section-5 infrastructure study and print the Fig 2-6 data.
``python -m repro profile``
    Build a testbed with traffic, run one Patchwork occasion, analyze
    the captures, and write CSV tables (+ SVG charts) to the output dir.
``python -m repro campaign``
    Run a Fig 10-style campaign under injected disturbances.
``python -m repro analyze PCAP [PCAP ...]``
    Run the offline pipeline over existing pcap files.
``python -m repro plan RATE FRAME_SIZE``
    Recommend a capture method for a target load.
``python -m repro obs {dump,tail,diff,export} ...``
    Inspect the machine-readable run journals ``profile`` writes.
``python -m repro audit JOURNAL``
    Reconstruct the frame-conservation story of a run from its journal
    alone: per-stage loss waterfall, per-site summary, and the
    congestion-detector scorecard.  Exits 1 if the conservation
    identity is violated.
``python -m repro runs {list,describe} ...``
    Inspect durable campaign run directories: which occasions are
    committed, whether the WAL has a torn tail, what a resume would do.
``python -m repro chaos``
    Crash-fuzz the durable campaign layer: run a reference campaign,
    kill N re-runs at random IO ops, resume each, and check the
    recovery oracles (clean audit, byte-identical journal, no sample
    lost or double-counted).  Exits 1 if any trial fails.
``python -m repro lint [PATH ...]``
    Run reprolint, the AST-based checker for the repo's determinism,
    sim-time, and ledger invariants (rules RL001-RL008).  Exits 1 on
    violations, 2 on unparseable files.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Patchwork reproduction: testbed traffic capture & analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="Section-5 infrastructure study")
    study.add_argument("--seed", type=int, default=11)
    study.add_argument("--weeks", type=int, default=52)

    profile = sub.add_parser("profile", help="run one profiling occasion")
    profile.add_argument("--sites", nargs="*", default=None,
                         help="sites to profile (default: a 4-site testbed)")
    profile.add_argument("--out", type=Path, default=Path("patchwork-out"))
    profile.add_argument("--scale", type=float, default=0.05,
                         help="traffic scale factor")
    profile.add_argument("--sample-duration", type=float, default=5.0)
    profile.add_argument("--sample-interval", type=float, default=30.0)
    profile.add_argument("--samples", type=int, default=2)
    profile.add_argument("--cycles", type=int, default=2)
    profile.add_argument("--instances", type=int, default=2)
    profile.add_argument("--snaplen", type=int, default=200)
    profile.add_argument("--method", choices=["tcpdump", "dpdk", "fpga+dpdk"],
                         default="tcpdump")
    profile.add_argument("--anonymize", action="store_true")
    profile.add_argument("--telemetry-queries", action="store_true",
                         help="enable streaming telemetry: switch-side "
                              "query operators with sketch reports, "
                              "in-band queue-state stamping, and the "
                              "sketch/in-band congestion detectors "
                              "scored alongside the SNMP verdict")
    profile.add_argument("--telemetry-window", type=float, default=1.0,
                         metavar="SECONDS",
                         help="sketch-report tumbling window "
                              "(with --telemetry-queries; default 1.0)")
    profile.add_argument("--charts", action="store_true",
                         help="also render SVG charts")
    profile.add_argument("--seed", type=int, default=42)
    profile.add_argument("--workers", type=int, default=1,
                         help="digest worker processes (0 = one per CPU)")
    profile.add_argument("--no-cache", action="store_true",
                         help="disable the content-addressed acap cache")
    profile.add_argument("--json", action="store_true",
                         help="print a machine-readable JSON summary")
    profile.add_argument("--durable", action="store_true",
                         help="run as a crash-safe campaign: WAL + "
                              "checkpoints in the output dir, resumable "
                              "with --resume")
    profile.add_argument("--occasions", type=int, default=1,
                         help="occasions to run (durable mode only)")
    profile.add_argument("--traffic-span", type=float, default=0.0,
                         help="seconds of traffic to generate per occasion "
                              "(durable mode only; 0 = cover the whole "
                              "sampling plan)")
    profile.add_argument("--shard-workers", type=int, default=0,
                         metavar="N",
                         help="run each site's instance in its own shard "
                              "world and merge the journals "
                              "deterministically (implies --durable); N > 1 "
                              "fans shards over a process pool, and the "
                              "merged output is byte-identical at any N")
    profile.add_argument("--resume", type=Path, default=None, metavar="RUN_DIR",
                         help="resume an interrupted durable campaign "
                              "from its run directory")
    profile.add_argument("--salvage", action="store_true",
                         help="with --resume: adopt the crashed occasion's "
                              "completed samples as DEGRADED instead of "
                              "re-running it")

    campaign = sub.add_parser("campaign", help="Fig 10-style campaign")
    campaign.add_argument("--sites", type=int, default=10,
                          help="number of sites")
    campaign.add_argument("--occasions", type=int, default=6)
    campaign.add_argument("--seed", type=int, default=23)
    campaign.add_argument("--out", type=Path, default=Path("campaign-out"))

    analyze = sub.add_parser("analyze", help="analyze existing pcaps")
    analyze.add_argument("pcaps", nargs="+", type=Path)
    analyze.add_argument("--out", type=Path, default=None,
                         help="write CSVs (and charts) here")
    analyze.add_argument("--charts", action="store_true")
    analyze.add_argument("--workers", type=int, default=1,
                         help="digest worker processes (0 = one per CPU)")
    analyze.add_argument("--cache-dir", type=Path, default=None,
                         help="acap cache directory (default: <out>/acap-cache)")
    analyze.add_argument("--no-cache", action="store_true",
                         help="disable the content-addressed acap cache")
    analyze.add_argument("--json", action="store_true",
                         help="print a machine-readable JSON summary")

    plan = sub.add_parser("plan", help="recommend a capture method")
    plan.add_argument("rate", help="target rate, e.g. 100Gbps")
    plan.add_argument("frame_size", type=int, help="frame size in bytes")
    plan.add_argument("--snaplen", type=int, default=200)

    obs = sub.add_parser("obs", help="inspect run journals")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    dump = obs_sub.add_parser("dump", help="print a journal's events")
    dump.add_argument("journal", type=Path)
    dump.add_argument("--kind", default=None,
                      help="only events of this kind (e.g. span-open, fault)")
    tail = obs_sub.add_parser("tail", help="print a journal's last events")
    tail.add_argument("journal", type=Path)
    tail.add_argument("-n", "--lines", type=int, default=10)
    diff = obs_sub.add_parser("diff", help="compare two journals (exit 1 if "
                                           "they differ)")
    diff.add_argument("journal_a", type=Path)
    diff.add_argument("journal_b", type=Path)
    diff.add_argument("-q", "--quiet", action="store_true",
                      help="no output; communicate via the exit code only")
    export = obs_sub.add_parser(
        "export", help="re-export a journal's final metrics snapshot")
    export.add_argument("journal", type=Path)
    export.add_argument("--format", choices=["prom", "jsonl"], default="prom")

    audit = sub.add_parser(
        "audit", help="frame-conservation audit of a run journal")
    audit.add_argument("journal", type=Path,
                       help="a journal.jsonl written by `repro profile`")
    audit.add_argument("--csv", type=Path, default=None,
                       help="also write the loss waterfall as CSV here "
                            "(with --detectors: the detector comparison)")
    audit.add_argument("--json", action="store_true",
                       help="print a machine-readable JSON audit")
    audit.add_argument("--detectors", action="store_true",
                       help="print the three-way congestion-detector "
                            "comparison (snmp / sketch / inband) instead "
                            "of the full audit report")

    trace = sub.add_parser(
        "trace", help="distributed-trace analysis of a run journal")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_tree_p = trace_sub.add_parser(
        "tree", help="render the reconstructed span tree")
    trace_tree_p.add_argument("journal", type=Path,
                              help="a journal.jsonl or a campaign run dir")
    trace_tree_p.add_argument("--depth", type=int, default=None,
                              help="limit rendering depth")
    trace_tree_p.add_argument("--json", action="store_true",
                              help="print the tree as JSON")
    trace_cp = trace_sub.add_parser(
        "critical-path", help="the span chain that bounds the run "
                              "(sim time)")
    trace_cp.add_argument("journal", type=Path,
                          help="a journal.jsonl or a campaign run dir")
    trace_cp.add_argument("--json", action="store_true")
    trace_cp.add_argument("--csv", type=Path, default=None,
                          help="also write the path table as CSV here")
    trace_export = trace_sub.add_parser(
        "export", help="export the trace for external viewers")
    trace_export.add_argument("journal", type=Path,
                              help="a journal.jsonl or a campaign run dir")
    trace_export.add_argument("--format", choices=["chrome", "folded"],
                              default="chrome",
                              help="chrome: Perfetto-loadable Trace Event "
                                   "JSON; folded: flamegraph folded stacks")
    trace_export.add_argument("-o", "--out", type=Path, default=None,
                              help="write here instead of stdout")
    trace_stats = trace_sub.add_parser(
        "stats", help="per-stage span latency aggregates")
    trace_stats.add_argument("journal", type=Path,
                             help="a journal.jsonl or a campaign run dir")
    trace_stats.add_argument("--json", action="store_true")
    trace_stats.add_argument("--csv", type=Path, default=None,
                             help="also write the stage table as CSV here")
    trace_stats.add_argument("--prom", action="store_true",
                             help="render stage histograms as Prometheus "
                                  "text (p50/p95/p99 quantiles included)")

    runs = sub.add_parser("runs", help="inspect durable campaign run dirs")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="summarize every campaign under a directory")
    runs_list.add_argument("parent", type=Path, nargs="?", default=Path("."))
    runs_list.add_argument("--json", action="store_true")
    runs_describe = runs_sub.add_parser(
        "describe", help="durable state of one campaign run directory")
    runs_describe.add_argument("run_dir", type=Path)
    runs_describe.add_argument("--json", action="store_true")

    chaos = sub.add_parser(
        "chaos", help="crash-fuzz the durable campaign layer and verify "
                      "recovery oracles")
    chaos.add_argument("--trials", type=int, default=50)
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--out", type=Path, default=Path("chaos-out"))
    chaos.add_argument("--workers", type=int, default=0,
                       help="parallel trial processes (0 = one per CPU)")
    chaos.add_argument("--keep-passing", action="store_true",
                       help="keep passing trial directories on disk")
    chaos.add_argument("--sharded", action="store_true",
                       help="fuzz the sharded campaign path: per-site "
                            "shard worlds, shard-commit records, and the "
                            "deterministic journal merge")
    chaos.add_argument("--json", action="store_true",
                       help="print the machine-readable chaos report")

    lint = sub.add_parser(
        "lint", help="check repo invariants (determinism, sim time, ledger)")
    lint.add_argument("paths", nargs="*", type=Path,
                      help="files/directories to lint "
                           "(default: [tool.reprolint] paths, or src/repro)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable JSON report")
    lint.add_argument("--select", action="append", default=[],
                      metavar="RULE", help="run only these rule ids")
    lint.add_argument("--ignore", action="append", default=[],
                      metavar="RULE", help="skip these rule ids")
    lint.add_argument("--config", type=Path, default=None,
                      help="explicit pyproject.toml (default: nearest)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print pragma-suppressed violations")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every rule and exit")
    lint.add_argument("--sarif", action="store_true",
                      help="emit a SARIF 2.1.0 log (GitHub code scanning)")
    lint.add_argument("--graph", type=Path, default=None, metavar="PATH",
                      help="write the project index (call graph + event "
                           "registry) as JSON")
    lint.add_argument("--events-md", type=Path, default=None, metavar="PATH",
                      help="regenerate the journal event registry "
                           "(EVENTS.md) from the tree")
    lint.add_argument("--check-events", type=Path, default=None,
                      metavar="PATH",
                      help="fail (exit 1) if the committed event registry "
                           "is stale vs. the tree")
    lint.add_argument("--no-cache", action="store_true",
                      help="ignore and do not write the project-index "
                           "fact cache")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "study": _cmd_study,
        "profile": _cmd_profile,
        "campaign": _cmd_campaign,
        "analyze": _cmd_analyze,
        "plan": _cmd_plan,
        "obs": _cmd_obs,
        "audit": _cmd_audit,
        "trace": _cmd_trace,
        "runs": _cmd_runs,
        "chaos": _cmd_chaos,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


# -- handlers ------------------------------------------------------------


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.study import (NetworkActivityModel, concurrency_summary,
                             duration_table, port_distribution_table,
                             slice_study, spread_table)
    from repro.testbed import FederationBuilder
    from repro.testbed.federation import DEFAULT_SITE_NAMES

    federation = FederationBuilder(seed=args.seed).build()
    print(port_distribution_table(federation).render())
    result = slice_study(DEFAULT_SITE_NAMES, weeks=args.weeks, seed=args.seed)
    print()
    print(spread_table(result.schedule).render())
    print()
    print(duration_table(result.schedule).render())
    print()
    print(concurrency_summary(result.schedule).render())
    activity = NetworkActivityModel(result.schedule)
    peak = activity.peak()
    print(f"\npeak network week: {peak.week} at {peak.mean_tbps:.2f} Tbps")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.resume is not None or args.durable or args.shard_workers > 0:
        return _cmd_profile_durable(args)
    from repro import quickstart_federation
    from repro.analysis import AnalysisPipeline, Anonymizer
    from repro.capture.session import CaptureMethod
    from repro.core import (AnalysisConfig, Coordinator, PatchworkConfig,
                            SamplingPlan, TelemetryConfig)
    from repro.obs import Observability, scoped, to_prometheus

    sites = args.sites or ["STAR", "MICH", "UTAH", "TACC"]
    federation, api, poller, orchestrator = quickstart_federation(
        site_names=sites, seed=args.seed, traffic_scale=args.scale)
    plan = SamplingPlan(
        sample_duration=args.sample_duration,
        sample_interval=args.sample_interval,
        samples_per_run=args.samples, runs_per_cycle=1, cycles=args.cycles)
    span = plan.approximate_duration * len(sites) + 600.0
    window = 0.0
    while window < span:
        orchestrator.generate_window(window, min(150.0, span - window))
        window += 150.0
    method = {"tcpdump": CaptureMethod.TCPDUMP, "dpdk": CaptureMethod.DPDK,
              "fpga+dpdk": CaptureMethod.FPGA_DPDK}[args.method]
    transform = Anonymizer().transform if args.anonymize else None
    config = PatchworkConfig(
        output_dir=args.out, plan=plan, desired_instances=args.instances,
        snaplen=args.snaplen, capture_method=method, transform=transform,
        analysis=AnalysisConfig(max_workers=args.workers,
                                cache_enabled=not args.no_cache),
        telemetry=TelemetryConfig(enabled=args.telemetry_queries,
                                  window=args.telemetry_window,
                                  seed=args.seed))
    quiet = args.json

    def say(text: str) -> None:
        if not quiet:
            print(text)

    with scoped(Observability.create(sim=federation.sim)) as obs:
        bundle = Coordinator(api, config, poller=poller).run_profile()
        for record in bundle.run_records:
            say(f"{record.site}: {record.outcome.value} "
                f"({record.samples_taken} samples, {record.pcap_files} pcaps)")
        bundle.write_logs(args.out / "logs")
        from repro.core.gather import gather_bundle
        gathered = gather_bundle(bundle, args.out / "gathered")
        for site_bundle in gathered:
            say(f"gathered {site_bundle.site}: "
                f"{site_bundle.archive_path.name} "
                f"({site_bundle.compression_ratio:.1f}x compression)")
        pipeline = AnalysisPipeline.from_config(config)
        report = pipeline.run(bundle.pcap_paths)
        from repro.obs.ledger import attach_digests
        attach_digests(bundle.ledgers, pipeline.acaps)
        report.scorecard = bundle.scorecard
        # Final snapshot so `repro obs export` sees the analysis
        # counters too, not just the capture-phase ones.
        obs.snapshot_to_journal()
        journal_path = obs.journal.write(args.out / "journal.jsonl")
        metrics_path = args.out / "metrics.prom"
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(to_prometheus(obs.registry))
    say(f"\n{report.total_frames} frames captured across "
        f"{len(report.sites)} sites")
    if report.stats is not None:
        say(report.stats.render())
    say(report.tables["frame_sizes_overall"].render())
    csvs = report.write_csvs(args.out / "csv")
    say(f"\nwrote {len(csvs)} CSVs under {args.out / 'csv'}")
    if report.scorecard is not None and report.scorecard.samples:
        say(f"congestion detector: {report.scorecard.describe()}")
    say(f"wrote run journal to {journal_path} "
        f"(inspect with: repro obs dump {journal_path}, "
        f"audit with: repro audit {journal_path})")
    if args.charts:
        from repro.analysis.visualize import render_report_charts
        charts = render_report_charts(report, args.out / "charts")
        say(f"wrote {len(charts)} charts under {args.out / 'charts'}")
    if args.json:
        print(json.dumps({
            "runs": [
                {"site": r.site, "outcome": r.outcome.value,
                 "samples_taken": r.samples_taken, "pcap_files": r.pcap_files,
                 "retries": r.retries, "restarts": r.restarts,
                 "redispatched": r.redispatched}
                for r in bundle.run_records
            ],
            "report": report.to_dict(include_tables=False),
            "journal": str(journal_path),
            "metrics": str(metrics_path),
        }, indent=2, sort_keys=True))
    return 0


def _cmd_profile_durable(args: argparse.Namespace) -> int:
    """``repro profile --durable`` / ``repro profile --resume RUN_DIR``."""
    from repro.core.campaign import CampaignManifest, CampaignRunner
    from repro.core.checkpoint import WalCorruptionError

    shard_workers = max(args.shard_workers, 1)
    if args.resume is not None:
        if not (args.resume / "campaign.manifest").exists() and \
                not (args.resume / "campaign.wal").exists():
            print(f"error: {args.resume} is not a campaign run directory",
                  file=sys.stderr)
            return 2
        try:
            summary = CampaignRunner(args.resume,
                                     shard_workers=shard_workers) \
                .run(resume=True, salvage=args.salvage)
        except FileNotFoundError as exc:
            # e.g. a WAL with no manifest: resumable only if the
            # original manifest is restored, not from the CLI alone.
            print(f"error: cannot resume {args.resume}: {exc}",
                  file=sys.stderr)
            return 2
        except WalCorruptionError as exc:
            print(f"error: cannot resume {args.resume}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        sites = tuple(args.sites or ["STAR", "MICH", "UTAH", "TACC"])
        manifest = CampaignManifest(
            seed=args.seed, sites=sites, occasions=args.occasions,
            traffic_scale=args.scale, sample_duration=args.sample_duration,
            sample_interval=args.sample_interval,
            samples_per_run=args.samples, runs_per_cycle=1,
            cycles=args.cycles, desired_instances=args.instances,
            snaplen=args.snaplen, method=args.method,
            workers=max(args.workers, 1),
            cache_enabled=not args.no_cache,
            traffic_span=args.traffic_span,
            sharded=args.shard_workers > 0,
            telemetry_queries=args.telemetry_queries,
            telemetry_window=args.telemetry_window)
        summary = CampaignRunner(args.out, manifest=manifest,
                                 shard_workers=shard_workers).run()
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        return 0 if summary.audit_ok else 1
    if summary.noop:
        print(f"campaign in {summary.run_dir} is already complete "
              f"({len(summary.skipped)} occasions); nothing to do")
        return 0
    for label, occasions in (("ran", summary.executed),
                             ("skipped (already committed)", summary.skipped),
                             ("salvaged", summary.salvaged)):
        if occasions:
            print(f"{label}: occasions {occasions}")
    if summary.torn_wal:
        print("warning: the WAL had a torn tail (crash mid-append); "
              "it was truncated to the last committed record",
              file=sys.stderr)
    print(f"success rate: {summary.success_rate:.1%}; "
          f"audit {'ok' if summary.audit_ok else 'FAILED'}")
    print(f"wrote {summary.journal_path} "
          f"(sha256 {summary.journal_sha256[:16]}...)")
    print(f"resume with: repro profile --resume {summary.run_dir}")
    return 0 if summary.audit_ok else 1


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.core.checkpoint import describe_run, list_runs

    if args.runs_command == "describe":
        if not args.run_dir.is_dir():
            print(f"error: no such directory: {args.run_dir}",
                  file=sys.stderr)
            return 2
        summaries = [describe_run(args.run_dir)]
    else:
        if not args.parent.is_dir():
            print(f"error: no such directory: {args.parent}", file=sys.stderr)
            return 2
        summaries = list_runs(args.parent)
    if args.json:
        print(json.dumps(summaries, indent=2, sort_keys=True))
        return 0
    if not summaries:
        print("no campaign run directories found")
        return 0
    for summary in summaries:
        committed = summary.get("occasions_committed", 0)
        total = summary.get("occasions_total")
        progress = f"{committed}/{total}" if total is not None else f"{committed}"
        extra = ""
        if summary.get("torn_wal"):
            extra += " torn-wal"
        if summary.get("samples_salvageable"):
            extra += f" salvageable-samples={summary['samples_salvageable']}"
        print(f"{summary['path']}: {summary['state']} "
              f"({progress} occasions committed){extra}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.testbed.chaos import run_chaos

    report = run_chaos(args.out, trials=args.trials, seed=args.seed,
                       workers=args.workers,
                       keep_passing=args.keep_passing,
                       sharded=args.sharded)
    report_path = args.out / "chaos-report.json"
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
        print(f"wrote {report_path}")
    return 0 if report.ok else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.core import PatchworkConfig, SamplingPlan
    from repro.study.behavior import run_campaign
    from repro.testbed import FederationBuilder, TestbedAPI
    from repro.testbed.federation import DEFAULT_SITE_NAMES

    sites = DEFAULT_SITE_NAMES[:args.sites]
    federation = FederationBuilder(seed=42).build(site_names=sites)
    api = TestbedAPI(federation)
    config = PatchworkConfig(
        output_dir=args.out,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=1, runs_per_cycle=1, cycles=1),
        desired_instances=2)
    result = run_campaign(api, config, occasions=args.occasions,
                          seed=args.seed)
    print(result.to_table().render())
    print()
    print(result.timeline_table().render())
    print(f"\nsuccess rate: {result.success_rate:.1%}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import os

    from repro.analysis import AnalysisPipeline

    missing = [p for p in args.pcaps if not p.exists()]
    if missing:
        print(f"error: no such pcap: {missing[0]}", file=sys.stderr)
        return 2
    acap_dir = args.out / "acap" if args.out else None
    cache_dir = None
    if not args.no_cache:
        if args.cache_dir is not None:
            cache_dir = args.cache_dir
        elif args.out is not None:
            cache_dir = args.out / "acap-cache"
    workers = args.workers if args.workers > 0 else (os.cpu_count() or 1)
    pipeline = AnalysisPipeline(acap_dir=acap_dir, max_workers=workers,
                                cache_dir=cache_dir)
    report = pipeline.run(args.pcaps)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
        if report.stats is not None:
            print(f"\n{report.stats.render()}")
    if args.out:
        csvs = report.write_csvs(args.out / "csv")
        if not args.json:
            print(f"\nwrote {len(csvs)} CSVs under {args.out / 'csv'}")
        if args.charts:
            from repro.analysis.visualize import render_report_charts
            charts = render_report_charts(report, args.out / "charts")
            if not args.json:
                print(f"wrote {len(charts)} charts under {args.out / 'charts'}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.capture.dpdk import (DpdkCaptureModel, MAX_WORKER_CORES,
                                    OfferedLoad)
    from repro.capture.fpga import FpgaOffloadConfig, FpgaOffloadModel
    from repro.capture.tcpdump import TcpdumpModel
    from repro.util.units import parse_rate

    rate = parse_rate(args.rate)
    frame = args.frame_size
    tcpdump = TcpdumpModel(snaplen=args.snaplen)
    if tcpdump.offer_constant_load(rate, frame, 30.0).loss_fraction < 0.01:
        print("tcpdump suffices (the default method).")
        return 0
    load = OfferedLoad(rate, frame, duration=30.0)
    cores = DpdkCaptureModel(truncation=args.snaplen).min_cores_for(load)
    if cores is not None:
        print(f"use the DPDK writer with {cores} cores "
              f"(truncation {args.snaplen} B).")
        return 0
    fpga = FpgaOffloadModel(FpgaOffloadConfig(truncation=args.snaplen,
                                              sample_one_in=8))
    writer = DpdkCaptureModel(cores=MAX_WORKER_CORES, truncation=args.snaplen)
    if fpga.offer_through(writer, load).loss_percent < 1.0:
        print("use FPGA offload (hardware truncation + 1-in-8 sampling) "
              "feeding the DPDK writer on 15 cores.")
        return 0
    print("not capturable on this host profile; lower the rate or sample "
          "more aggressively.")
    return 1


def _warn_torn(journal, path: Path) -> None:
    """Surface a dropped torn tail (crash mid-write) on stderr."""
    if journal.torn_tail is not None:
        print(f"warning: {path}: dropped a torn final line (process was "
              f"killed mid-write): {journal.torn_tail!r}", file=sys.stderr)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import (RunJournal, diff_journals, registry_from_snapshot,
                           to_metrics_jsonl, to_prometheus)

    paths = [args.journal_a, args.journal_b] if args.obs_command == "diff" \
        else [args.journal]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such journal: {missing[0]}", file=sys.stderr)
        return 2

    if args.obs_command == "dump":
        journal = RunJournal.read(args.journal)
        _warn_torn(journal, args.journal)
        events = journal.of_kind(args.kind) if args.kind else journal.events
        for event in events:
            print(event.to_json())
        return 0

    if args.obs_command == "tail":
        journal = RunJournal.read(args.journal)
        _warn_torn(journal, args.journal)
        for event in journal.events[-max(0, args.lines):]:
            print(event.to_json())
        return 0

    if args.obs_command == "diff":
        journal_a = RunJournal.read(args.journal_a)
        journal_b = RunJournal.read(args.journal_b)
        _warn_torn(journal_a, args.journal_a)
        _warn_torn(journal_b, args.journal_b)
        differences = diff_journals(journal_a, journal_b)
        if not differences:
            if not args.quiet:
                print("journals are identical")
            return 0
        if not args.quiet:
            for difference in differences:
                print(difference)
        return 1

    # export: re-render the journal's last metrics snapshot.
    journal = RunJournal.read(args.journal)
    _warn_torn(journal, args.journal)
    snapshots = journal.of_kind("metrics")
    if not snapshots:
        print("error: journal has no metrics snapshot", file=sys.stderr)
        return 2
    registry = registry_from_snapshot(snapshots[-1].data["metrics"])
    if args.format == "prom":
        print(to_prometheus(registry), end="")
    else:
        print(to_metrics_jsonl(registry), end="")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.obs import RunJournal
    from repro.obs.audit import audit_journal

    if not args.journal.exists():
        print(f"error: no such journal: {args.journal}", file=sys.stderr)
        return 2
    journal = RunJournal.read(args.journal)
    _warn_torn(journal, args.journal)
    result = audit_journal(journal)
    if not result.ledgers:
        print("error: journal carries no ledger events (did the run use "
              "`repro profile`?)", file=sys.stderr)
        return 2
    if args.detectors and not result.detector_scorecards:
        print("error: journal carries no detector readings (run with "
              "`repro profile --telemetry-queries`)", file=sys.stderr)
        return 2
    if args.csv is not None:
        table = (result.detector_table() if args.detectors
                 else result.waterfall())
        table.to_csv(args.csv)
    if args.json:
        payload = (result.to_dict()["detectors"] if args.detectors
                   else result.to_dict())
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.detectors:
        print(result.detector_table().render())
        if args.csv is not None:
            print(f"\nwrote detector comparison to {args.csv}")
    else:
        print(result.render())
        if args.csv is not None:
            print(f"\nwrote loss waterfall to {args.csv}")
    return 0 if result.ok else 1


def _trace_journal_paths(target: Path) -> Optional[List[Path]]:
    """Resolve a trace target to journal files, in stream order.

    A file is taken as-is.  A campaign run dir resolves to its final
    ``journal.jsonl`` when present, else to its rotated per-occasion
    segments (``segments/occ*.jsonl``) in sequence order.
    """
    if target.is_file():
        return [target]
    if target.is_dir():
        combined = target / "journal.jsonl"
        if combined.is_file():
            return [combined]
        segments = sorted((target / "segments").glob("occ*.jsonl"))
        if segments:
            return segments
    return None


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import RunJournal
    from repro.obs.export import to_prometheus
    from repro.obs.trace import (TraceTree, chrome_trace_json,
                                 critical_path_summary, to_folded_stacks)
    from repro.util.tables import Table

    paths = _trace_journal_paths(args.journal)
    if paths is None:
        print(f"error: no such journal: {args.journal}", file=sys.stderr)
        return 2
    journals = []
    for path in paths:
        journal = RunJournal.read(path)
        _warn_torn(journal, path)
        journals.append(journal)
    tree = TraceTree.from_journals(journals)
    if not tree.spans:
        print("error: journal carries no span events (was observability "
              "enabled?)", file=sys.stderr)
        return 2

    def fmt(value) -> str:
        return "n/a" if value is None else f"{value:.6f}"

    if args.trace_command == "tree":
        if args.json:
            payload = {
                "spans": len(tree.spans),
                "sites": tree.sites(),
                "dangling": [s.to_dict() | {"children": None}
                             for s in tree.dangling()],
                "orphan_closes": tree.orphan_closes,
                "roots": [root.to_dict() for root in tree.roots],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(tree.render(max_depth=args.depth), end="")
            dangling = tree.dangling()
            if dangling:
                print(f"\n{len(dangling)} dangling span(s) "
                      f"(opened, never closed)")
        return 0
    if args.trace_command == "critical-path":
        path_spans = tree.critical_path()
        summary = critical_path_summary(path_spans)
        table = Table(["depth", "span", "name", "site", "opened_at",
                       "closed_at", "sim_duration"],
                      title="Critical path (sim time)")
        for depth, span in enumerate(path_spans):
            table.add_row([depth, span.span_id, span.name, span.site,
                           fmt(span.opened_at), fmt(span.closed_at),
                           fmt(span.sim_duration)])
        if args.csv is not None:
            table.to_csv(args.csv)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(table.render())
            print(f"\ncritical path bounds the run at "
                  f"{summary['total_sim']:.3f}s sim time")
            if args.csv is not None:
                print(f"wrote critical path to {args.csv}")
        return 0
    if args.trace_command == "export":
        text = (chrome_trace_json(tree) if args.format == "chrome"
                else to_folded_stacks(tree))
        if args.out is not None:
            args.out.write_text(text)
            print(f"wrote {args.format} trace to {args.out}")
        else:
            print(text, end="")
        return 0
    # stats
    rows = tree.stage_stats()
    table = Table(["stage", "count", "dangling", "sim_total", "sim_self",
                   "wall_total"], title="Per-stage span aggregates")
    for row in rows:
        table.add_row([row["stage"], row["count"], row["dangling"],
                       fmt(row["sim_total"]), fmt(row["sim_self"]),
                       fmt(row["wall_total"]) if row["wall_known"]
                       else "n/a"])
    if args.csv is not None:
        table.to_csv(args.csv)
    if args.prom:
        print(to_prometheus(tree.to_registry()), end="")
    elif args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(table.render())
        if args.csv is not None:
            print(f"\nwrote stage table to {args.csv}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import (apply_overrides, events_md_stale,
                                     load_config, render_events_md,
                                     render_json, render_rule_list,
                                     render_sarif, render_text, run_lint)

    if args.list_rules:
        print(render_rule_list())
        return 0
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    config = load_config(explicit=args.config)
    apply_overrides(config, select=tuple(args.select),
                    ignore=tuple(args.ignore))
    if args.no_cache:
        config.use_cache = False
    unknown = [r for r in config.select + config.ignore
               if r.upper() not in _known_rules()]
    if unknown:
        print(f"error: unknown rule id: {unknown[0]} "
              f"(see `repro lint --list-rules`)", file=sys.stderr)
        return 2
    result = run_lint(paths=args.paths or None, config=config)
    observe_only = _observe_only_kinds(config)
    if args.graph is not None and result.index is not None:
        args.graph.parent.mkdir(parents=True, exist_ok=True)
        args.graph.write_text(
            json.dumps(result.index.to_graph_dict(), indent=2,
                       sort_keys=True) + "\n", encoding="utf-8")
    if args.events_md is not None and result.index is not None:
        args.events_md.parent.mkdir(parents=True, exist_ok=True)
        args.events_md.write_text(
            render_events_md(result.index, observe_only), encoding="utf-8")
        print(f"wrote event registry to {args.events_md}")
    if args.check_events is not None and result.index is not None:
        if events_md_stale(result.index, observe_only, args.check_events):
            print(f"error: {args.check_events} is stale vs. the source "
                  f"tree; regenerate with `repro lint --events-md "
                  f"{args.check_events}`", file=sys.stderr)
            return 1
    if args.sarif:
        print(json.dumps(render_sarif(result), indent=2, sort_keys=True))
    elif args.json:
        print(render_json(result))
    elif args.events_md is None:
        print(render_text(result, show_suppressed=args.show_suppressed))
    if result.errors:
        return 2
    return 0 if not result.violations else 1


def _observe_only_kinds(config) -> List[str]:
    declared = config.options_for("RL009").get("observe_only", [])
    if isinstance(declared, str):
        declared = [declared]
    return [str(kind) for kind in declared]


def _known_rules() -> List[str]:
    from repro.devtools.lint import PROJECT_RULES, RULES
    return list(RULES) + list(PROJECT_RULES)


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        # Detach stdout so interpreter shutdown doesn't re-raise EPIPE.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
