"""Profile evolution: comparing occasions over time.

Patchwork "now runs weekly to create a profile of FABRIC's network
traffic" and the paper proposes "regular updates to the analysis" as a
community service (Section 9).  This module supports that recurring
use: it diffs two :class:`~repro.analysis.pipeline.ProfileReport`
objects (what changed between last week's profile and this week's?) and
accumulates a longitudinal :class:`ProfileHistory` whose trend series
feed the visualization layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.pipeline import ProfileReport
from repro.util.tables import Table


@dataclass
class ProfileDelta:
    """What changed between two profiles."""

    frame_share_changes: Dict[str, Tuple[float, float]]  # bin -> (old, new)
    total_variation: float            # half L1 distance of size shares
    protocols_gained: List[str]
    protocols_lost: List[str]
    sites_gained: List[str]
    sites_lost: List[str]
    ipv6_change: Tuple[float, float]
    jumbo_change: Tuple[float, float]

    @property
    def materially_different(self) -> bool:
        """A coarse 'worth a look' flag for the weekly report."""
        return (self.total_variation > 0.1
                or bool(self.protocols_gained)
                or bool(self.protocols_lost))

    def to_table(self) -> Table:
        table = Table(["aspect", "before", "after"], title="Profile delta")
        for label, (old, new) in sorted(self.frame_share_changes.items()):
            if abs(new - old) >= 0.01:
                table.add_row([f"frame share {label}", round(old, 4),
                               round(new, 4)])
        table.add_row(["ipv6 fraction", round(self.ipv6_change[0], 4),
                       round(self.ipv6_change[1], 4)])
        table.add_row(["jumbo fraction", round(self.jumbo_change[0], 4),
                       round(self.jumbo_change[1], 4)])
        if self.protocols_gained:
            table.add_row(["protocols gained", "-",
                           " ".join(sorted(self.protocols_gained))])
        if self.protocols_lost:
            table.add_row(["protocols lost",
                           " ".join(sorted(self.protocols_lost)), "-"])
        return table


def _size_shares(report: ProfileReport) -> Dict[str, float]:
    table = report.tables["frame_sizes_overall"]
    return {label: float(fraction)
            for label, fraction in zip(table.column("size_bin"),
                                       table.column("fraction"))}


def _protocols(report: ProfileReport) -> set:
    table = report.tables["header_occurrence"]
    return {name for name, pct in zip(table.column("header"),
                                      table.column("percent_of_frames"))
            if float(pct) > 0}


def compare_profiles(before: ProfileReport, after: ProfileReport) -> ProfileDelta:
    """Diff two profiles (typically consecutive weekly occasions)."""
    old_shares, new_shares = _size_shares(before), _size_shares(after)
    bins = set(old_shares) | set(new_shares)
    changes = {b: (old_shares.get(b, 0.0), new_shares.get(b, 0.0))
               for b in bins}
    total_variation = 0.5 * sum(abs(new - old) for old, new in changes.values())
    old_protocols, new_protocols = _protocols(before), _protocols(after)
    return ProfileDelta(
        frame_share_changes=changes,
        total_variation=total_variation,
        protocols_gained=sorted(new_protocols - old_protocols),
        protocols_lost=sorted(old_protocols - new_protocols),
        sites_gained=sorted(set(after.sites) - set(before.sites)),
        sites_lost=sorted(set(before.sites) - set(after.sites)),
        ipv6_change=(before.ipv6_fraction, after.ipv6_fraction),
        jumbo_change=(before.jumbo_fraction, after.jumbo_fraction),
    )


@dataclass
class ProfileHistory:
    """A longitudinal series of profiles (the weekly-run archive)."""

    labels: List[str] = field(default_factory=list)
    reports: List[ProfileReport] = field(default_factory=list)

    def add(self, label: str, report: ProfileReport) -> None:
        self.labels.append(label)
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    def series(self, metric: str) -> List[float]:
        """A named trend series: 'frames', 'ipv6', 'jumbo', 'flows',
        or 'share:<bin-label>'."""
        if metric == "frames":
            return [float(r.total_frames) for r in self.reports]
        if metric == "ipv6":
            return [r.ipv6_fraction for r in self.reports]
        if metric == "jumbo":
            return [r.jumbo_fraction for r in self.reports]
        if metric == "flows":
            return [float(sum(r.flows_per_sample)) for r in self.reports]
        if metric.startswith("share:"):
            label = metric.split(":", 1)[1]
            return [_size_shares(r).get(label, 0.0) for r in self.reports]
        raise ValueError(f"unknown metric {metric!r}")

    def trend_table(self) -> Table:
        table = Table(["occasion", "frames", "flows", "ipv6", "jumbo"],
                      title="Profile evolution")
        for i, label in enumerate(self.labels):
            report = self.reports[i]
            table.add_row([label, report.total_frames,
                           sum(report.flows_per_sample),
                           round(report.ipv6_fraction, 4),
                           round(report.jumbo_fraction, 4)])
        return table

    def latest_delta(self) -> Optional[ProfileDelta]:
        """The delta between the two most recent occasions."""
        if len(self.reports) < 2:
            return None
        return compare_profiles(self.reports[-2], self.reports[-1])
