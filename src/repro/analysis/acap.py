"""Abstract captures ("acap").

"Using the dissectors' output, for each frame prefix this analysis
produces an abstract stack of headers ('acap')" -- a compact record
retaining the header names, the fields the Analyze step needs (tags,
addresses, ports, flags), and the timing and frame-size metadata from
the original pcap.  Everything else is discarded, which is what makes
later analyses cheap.

Acap files serialize as tab-separated text, one record per line, so
they stay greppable like the real system's intermediate files.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.analysis.dissect import DissectedFrame, Dissector
from repro.obs import get_obs
from repro.packets.pcap import PcapReader

ACAP_VERSION = 1
_HEADER_LINE = f"#acap v{ACAP_VERSION}"


@dataclass(frozen=True)
class AcapRecord:
    """One frame's abstraction."""

    timestamp: float
    wire_len: int
    captured_len: int
    stack: Tuple[str, ...]          # header names, outermost first
    vlan_ids: Tuple[int, ...] = ()
    mpls_labels: Tuple[int, ...] = ()
    ip_version: int = 0             # 0 = non-IP
    src: str = ""
    dst: str = ""
    proto: int = 0
    sport: int = 0
    dport: int = 0
    tcp_flags: int = 0
    truncated: bool = False

    @property
    def is_ip(self) -> bool:
        return self.ip_version in (4, 6)

    @property
    def depth(self) -> int:
        return len(self.stack)


@dataclass
class AcapFile:
    """A digested pcap: its records plus provenance."""

    source: str
    records: List[AcapRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def time_range(self) -> Tuple[float, float]:
        if not self.records:
            return (0.0, 0.0)
        times = [r.timestamp for r in self.records]
        return (min(times), max(times))

    def protocols(self) -> set:
        names = set()
        for record in self.records:
            names.update(record.stack)
        return names


def abstract(dissected: DissectedFrame, timestamp: float, wire_len: int,
             captured_len: int) -> AcapRecord:
    """Collapse a dissection into an :class:`AcapRecord`."""
    vlan_ids = tuple(int(h.fields["vid"]) for h in dissected.all("vlan"))
    mpls_labels = tuple(int(h.fields["label"]) for h in dissected.all("mpls"))
    ip_version, src, dst, proto = 0, "", "", 0
    ipv4 = dissected.first("ipv4")
    ipv6 = dissected.first("ipv6")
    if ipv4 is not None:
        ip_version = 4
        src, dst = str(ipv4.fields["src"]), str(ipv4.fields["dst"])
        proto = int(ipv4.fields["proto"])
    elif ipv6 is not None:
        ip_version = 6
        src, dst = str(ipv6.fields["src"]), str(ipv6.fields["dst"])
        proto = int(ipv6.fields["next_header"])
    sport = dport = tcp_flags = 0
    tcp = dissected.first("tcp")
    udp = dissected.first("udp")
    if tcp is not None:
        sport, dport = int(tcp.fields["sport"]), int(tcp.fields["dport"])
        tcp_flags = int(tcp.fields["flags"])
    elif udp is not None:
        sport, dport = int(udp.fields["sport"]), int(udp.fields["dport"])
    return AcapRecord(
        timestamp=timestamp,
        wire_len=wire_len,
        captured_len=captured_len,
        stack=dissected.names,
        vlan_ids=vlan_ids,
        mpls_labels=mpls_labels,
        ip_version=ip_version,
        src=src,
        dst=dst,
        proto=proto,
        sport=sport,
        dport=dport,
        tcp_flags=tcp_flags,
        truncated=dissected.truncated,
    )


# -- the Digest hot path ------------------------------------------------------
#
# ``dissect_record`` is a fused rewrite of ``Dissector.dissect`` +
# ``abstract``: it walks the same header chain but extracts *only* the
# fields an AcapRecord keeps, indexing into the frame bytes directly --
# no per-header HeaderInfo objects, field dicts, MAC-address strings, or
# memoryview slices.  Over a large corpus this is the difference between
# the pipeline being dissection-bound and being I/O-bound, and its
# output is bit-identical to the generic path (enforced by tests).

_V6_WORDS = struct.Struct("!8H")
_MPLS_ENTRY = struct.Struct("!I")

_HTTP_METHODS = frozenset(
    ("GET", "POST", "PUT", "HEAD", "DELETE", "OPTIONS", "PATCH"))


class _Truncated(Exception):
    pass


def dissect_record(data: bytes, timestamp: float, wire_len: int) -> AcapRecord:
    """Dissect one frame prefix straight into an :class:`AcapRecord`.

    Equivalent to ``abstract(Dissector().dissect(data), ...)`` but
    several times faster; :func:`digest_pcap` uses it whenever no custom
    dissector is supplied.
    """
    stack: List[str] = []
    vlan_ids: List[int] = []
    mpls_labels: List[int] = []
    ip_version = 0
    src = dst = ""
    proto = sport = dport = tcp_flags = 0
    truncated = False
    pos = 0
    n = len(data)
    try:
        while True:  # one iteration per (pseudowire-encapsulated) Ethernet
            if n - pos < 14:
                raise _Truncated
            stack.append("eth")
            ethertype = (data[pos + 12] << 8) | data[pos + 13]
            pos += 14
            while ethertype == 0x8100:  # 802.1Q VLAN
                if n - pos < 4:
                    raise _Truncated
                stack.append("vlan")
                vlan_ids.append(((data[pos] << 8) | data[pos + 1]) & 0xFFF)
                ethertype = (data[pos + 2] << 8) | data[pos + 3]
                pos += 4
            if ethertype == 0x8847:  # MPLS unicast
                bottom = False
                while not bottom:
                    if n - pos < 4:
                        raise _Truncated
                    (entry,) = _MPLS_ENTRY.unpack_from(data, pos)
                    stack.append("mpls")
                    mpls_labels.append(entry >> 12)
                    bottom = bool(entry & 0x100)
                    pos += 4
                if n - pos < 1:
                    raise _Truncated
                nibble = data[pos] >> 4
                if nibble == 4:
                    ip_kind = 4
                elif nibble == 6:
                    ip_kind = 6
                elif nibble == 0:  # pseudowire control word (RFC 4448)
                    if n - pos < 4:
                        raise _Truncated
                    stack.append("pw")
                    pos += 4
                    continue  # a fresh Ethernet frame follows
                else:
                    break  # opaque remainder
            elif ethertype == 0x0800:
                ip_kind = 4
            elif ethertype == 0x86DD:
                ip_kind = 6
            elif ethertype == 0x0806:  # ARP
                if n - pos < 28:
                    raise _Truncated
                stack.append("arp")
                pos += 28
                break
            else:
                break  # unknown EtherType: everything that follows is opaque

            if ip_kind == 4:
                if n - pos < 20:
                    raise _Truncated
                first = data[pos]
                if first >> 4 != 4:
                    raise _Truncated
                ihl = (first & 0xF) * 4
                if ihl < 20 or n - pos < ihl:
                    raise _Truncated
                stack.append("ipv4")
                ip_version = 4
                proto = data[pos + 9]
                src = "%d.%d.%d.%d" % (
                    data[pos + 12], data[pos + 13], data[pos + 14], data[pos + 15])
                dst = "%d.%d.%d.%d" % (
                    data[pos + 16], data[pos + 17], data[pos + 18], data[pos + 19])
                pos += ihl
            else:
                if n - pos < 40:
                    raise _Truncated
                if data[pos] >> 4 != 6:
                    raise _Truncated
                stack.append("ipv6")
                ip_version = 6
                proto = data[pos + 6]
                src = ":".join("%x" % w for w in _V6_WORDS.unpack_from(data, pos + 8))
                dst = ":".join("%x" % w for w in _V6_WORDS.unpack_from(data, pos + 24))
                pos += 40

            if proto == 6:  # TCP
                if n - pos < 20:
                    raise _Truncated
                offset = (data[pos + 12] >> 4) * 4
                if offset < 20:
                    raise _Truncated
                stack.append("tcp")
                sport = (data[pos] << 8) | data[pos + 1]
                dport = (data[pos + 2] << 8) | data[pos + 3]
                tcp_flags = data[pos + 13]
                pos += offset if offset <= n - pos else n - pos
                pos = _classify_application(data, pos, n, sport, dport, stack)
            elif proto == 17:  # UDP
                if n - pos < 8:
                    raise _Truncated
                stack.append("udp")
                sport = (data[pos] << 8) | data[pos + 1]
                dport = (data[pos + 2] << 8) | data[pos + 3]
                pos += 8
                pos = _classify_application(data, pos, n, sport, dport, stack)
            elif proto == 1 or proto == 58:  # ICMP / ICMPv6
                if n - pos < 8:
                    raise _Truncated
                stack.append("icmp")
                pos += 8
            break
        remainder = n - pos
        if remainder > 0:
            # Short frames are zero-padded to the Ethernet minimum;
            # don't report that padding as an application payload.
            if remainder <= 8 and not any(data[pos:]):
                stack.append("padding")
            else:
                stack.append("data")
    except _Truncated:
        truncated = True
    return AcapRecord(
        timestamp=timestamp,
        wire_len=wire_len,
        captured_len=n,
        stack=tuple(stack),
        vlan_ids=tuple(vlan_ids),
        mpls_labels=tuple(mpls_labels),
        ip_version=ip_version,
        src=src,
        dst=dst,
        proto=proto,
        sport=sport,
        dport=dport,
        tcp_flags=tcp_flags,
        truncated=truncated,
    )


def _classify_application(data: bytes, pos: int, n: int, sport: int,
                          dport: int, stack: List[str]) -> int:
    """Port-classified application layer (mirrors ``Dissector._application``)."""
    if pos >= n:
        return pos
    for port in (dport, sport):
        if port == 443:  # TLS record
            if n - pos < 5:
                continue
            if data[pos] not in (20, 21, 22, 23) or data[pos + 1] != 3:
                continue
            stack.append("tls")
            return pos + 5
        if port == 22:  # SSH banner
            raw = data[pos:pos + 255]
            if not raw.startswith(b"SSH-"):
                continue
            line = raw.partition(b"\r\n")[0]
            stack.append("ssh")
            return min(n, pos + len(line) + 2)
        if port == 53:  # DNS header
            if n - pos < 12:
                continue
            stack.append("dns")
            return pos + 12
        if port == 80:  # HTTP head
            raw = data[pos:pos + 512]
            line = raw.partition(b"\r\n")[0]
            text = line.decode("ascii", "replace")
            if not text.startswith("HTTP/1.") and \
                    text.split(" ", 1)[0] not in _HTTP_METHODS:
                continue
            stack.append("http")
            return pos + len(raw)
        if port == 123:  # NTP
            if n - pos < 48:
                continue
            first = data[pos]
            if (first >> 3) & 0x7 not in (3, 4) or first & 0x7 == 0:
                continue
            stack.append("ntp")
            return pos + 48
        if port == 5201:  # iperf: opaque, consumes the rest
            stack.append("iperf")
            return n
    return pos


def digest_pcap(pcap_path: Union[str, Path],
                dissector: Optional[Dissector] = None) -> AcapFile:
    """The Digest step for one pcap file.

    With no ``dissector`` argument the fused fast path
    (:func:`dissect_record`) is used; passing a custom dissector falls
    back to the generic ``dissect`` + :func:`abstract` route.
    """
    acap = AcapFile(source=str(pcap_path))
    records = acap.records
    # One registry lookup per *pcap*; the per-frame loop stays free of
    # instrument calls either way.  With observability disabled the loop
    # below is byte-for-byte the pre-instrumentation one; enabled, plain
    # local accumulators are flushed once at the end.
    registry = get_obs().registry
    counting = registry.enabled
    with PcapReader(pcap_path) as reader:
        if dissector is None:
            append = records.append
            if counting:
                nbytes = ntrunc = 0
                for timestamp, data, orig_len in reader.iter_raw():
                    rec = dissect_record(data, timestamp, orig_len)
                    append(rec)
                    nbytes += rec.captured_len
                    ntrunc += rec.truncated
            else:
                for timestamp, data, orig_len in reader.iter_raw():
                    append(dissect_record(data, timestamp, orig_len))
        else:
            for record in reader:
                dissected = dissector.dissect(record.data)
                records.append(
                    abstract(dissected, record.timestamp, record.orig_len,
                             len(record.data))
                )
            if counting:
                nbytes = sum(r.captured_len for r in records)
                ntrunc = sum(r.truncated for r in records)
    if counting:
        registry.counter("digest.pcaps", help="pcaps digested").inc()
        registry.counter("digest.frames", help="frames digested").inc(
            len(records))
        registry.counter("digest.bytes",
                         help="captured bytes digested").inc(nbytes)
        registry.counter("digest.truncated_frames",
                         help="frames cut short by the snap length").inc(ntrunc)
    return acap


# -- serialization ------------------------------------------------------------

def _encode_ints(values: Iterable[int]) -> str:
    text = ",".join(str(v) for v in values)
    return text or "-"


def _decode_ints(text: str) -> Tuple[int, ...]:
    if text == "-":
        return ()
    return tuple(int(v) for v in text.split(","))


def write_acap(acap: AcapFile, path: Union[str, Path]) -> Path:
    """Write an acap file (tab-separated, one record per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(f"{_HEADER_LINE} source={acap.source}\n")
        for r in acap.records:
            handle.write(
                "\t".join([
                    f"{r.timestamp:.6f}", str(r.wire_len), str(r.captured_len),
                    "/".join(r.stack) or "-",
                    _encode_ints(r.vlan_ids), _encode_ints(r.mpls_labels),
                    str(r.ip_version), r.src or "-", r.dst or "-",
                    str(r.proto), str(r.sport), str(r.dport), str(r.tcp_flags),
                    "1" if r.truncated else "0",
                ]) + "\n"
            )
    return path


def read_acap(path: Union[str, Path]) -> AcapFile:
    """Read an acap file written by :func:`write_acap`."""
    path = Path(path)
    with open(path) as handle:
        header = handle.readline().rstrip("\n")
        if not header.startswith(_HEADER_LINE):
            raise ValueError(f"{path}: not an acap file")
        source = header.partition("source=")[2] or str(path)
        acap = AcapFile(source=source)
        for line in handle:
            parts = line.rstrip("\n").split("\t")
            if len(parts) != 14:
                raise ValueError(f"{path}: malformed acap line")
            acap.records.append(AcapRecord(
                timestamp=float(parts[0]),
                wire_len=int(parts[1]),
                captured_len=int(parts[2]),
                stack=tuple(parts[3].split("/")) if parts[3] != "-" else (),
                vlan_ids=_decode_ints(parts[4]),
                mpls_labels=_decode_ints(parts[5]),
                ip_version=int(parts[6]),
                src=parts[7] if parts[7] != "-" else "",
                dst=parts[8] if parts[8] != "-" else "",
                proto=int(parts[9]),
                sport=int(parts[10]),
                dport=int(parts[11]),
                tcp_flags=int(parts[12]),
                truncated=parts[13] == "1",
            ))
    return acap
