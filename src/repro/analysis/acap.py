"""Abstract captures ("acap").

"Using the dissectors' output, for each frame prefix this analysis
produces an abstract stack of headers ('acap')" -- a compact record
retaining the header names, the fields the Analyze step needs (tags,
addresses, ports, flags), and the timing and frame-size metadata from
the original pcap.  Everything else is discarded, which is what makes
later analyses cheap.

Acap files serialize as tab-separated text, one record per line, so
they stay greppable like the real system's intermediate files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.analysis.dissect import DissectedFrame, Dissector
from repro.packets.pcap import PcapReader

ACAP_VERSION = 1
_HEADER_LINE = f"#acap v{ACAP_VERSION}"


@dataclass(frozen=True)
class AcapRecord:
    """One frame's abstraction."""

    timestamp: float
    wire_len: int
    captured_len: int
    stack: Tuple[str, ...]          # header names, outermost first
    vlan_ids: Tuple[int, ...] = ()
    mpls_labels: Tuple[int, ...] = ()
    ip_version: int = 0             # 0 = non-IP
    src: str = ""
    dst: str = ""
    proto: int = 0
    sport: int = 0
    dport: int = 0
    tcp_flags: int = 0
    truncated: bool = False

    @property
    def is_ip(self) -> bool:
        return self.ip_version in (4, 6)

    @property
    def depth(self) -> int:
        return len(self.stack)


@dataclass
class AcapFile:
    """A digested pcap: its records plus provenance."""

    source: str
    records: List[AcapRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def time_range(self) -> Tuple[float, float]:
        if not self.records:
            return (0.0, 0.0)
        times = [r.timestamp for r in self.records]
        return (min(times), max(times))

    def protocols(self) -> set:
        names = set()
        for record in self.records:
            names.update(record.stack)
        return names


def abstract(dissected: DissectedFrame, timestamp: float, wire_len: int,
             captured_len: int) -> AcapRecord:
    """Collapse a dissection into an :class:`AcapRecord`."""
    vlan_ids = tuple(int(h.fields["vid"]) for h in dissected.all("vlan"))
    mpls_labels = tuple(int(h.fields["label"]) for h in dissected.all("mpls"))
    ip_version, src, dst, proto = 0, "", "", 0
    ipv4 = dissected.first("ipv4")
    ipv6 = dissected.first("ipv6")
    if ipv4 is not None:
        ip_version = 4
        src, dst = str(ipv4.fields["src"]), str(ipv4.fields["dst"])
        proto = int(ipv4.fields["proto"])
    elif ipv6 is not None:
        ip_version = 6
        src, dst = str(ipv6.fields["src"]), str(ipv6.fields["dst"])
        proto = int(ipv6.fields["next_header"])
    sport = dport = tcp_flags = 0
    tcp = dissected.first("tcp")
    udp = dissected.first("udp")
    if tcp is not None:
        sport, dport = int(tcp.fields["sport"]), int(tcp.fields["dport"])
        tcp_flags = int(tcp.fields["flags"])
    elif udp is not None:
        sport, dport = int(udp.fields["sport"]), int(udp.fields["dport"])
    return AcapRecord(
        timestamp=timestamp,
        wire_len=wire_len,
        captured_len=captured_len,
        stack=dissected.names,
        vlan_ids=vlan_ids,
        mpls_labels=mpls_labels,
        ip_version=ip_version,
        src=src,
        dst=dst,
        proto=proto,
        sport=sport,
        dport=dport,
        tcp_flags=tcp_flags,
        truncated=dissected.truncated,
    )


def digest_pcap(pcap_path: Union[str, Path],
                dissector: Optional[Dissector] = None) -> AcapFile:
    """The Digest step for one pcap file."""
    dissector = dissector or Dissector()
    acap = AcapFile(source=str(pcap_path))
    with PcapReader(pcap_path) as reader:
        for record in reader:
            dissected = dissector.dissect(record.data)
            acap.records.append(
                abstract(dissected, record.timestamp, record.orig_len, len(record.data))
            )
    return acap


# -- serialization ------------------------------------------------------------

def _encode_ints(values: Iterable[int]) -> str:
    text = ",".join(str(v) for v in values)
    return text or "-"


def _decode_ints(text: str) -> Tuple[int, ...]:
    if text == "-":
        return ()
    return tuple(int(v) for v in text.split(","))


def write_acap(acap: AcapFile, path: Union[str, Path]) -> Path:
    """Write an acap file (tab-separated, one record per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(f"{_HEADER_LINE} source={acap.source}\n")
        for r in acap.records:
            handle.write(
                "\t".join([
                    f"{r.timestamp:.6f}", str(r.wire_len), str(r.captured_len),
                    "/".join(r.stack) or "-",
                    _encode_ints(r.vlan_ids), _encode_ints(r.mpls_labels),
                    str(r.ip_version), r.src or "-", r.dst or "-",
                    str(r.proto), str(r.sport), str(r.dport), str(r.tcp_flags),
                    "1" if r.truncated else "0",
                ]) + "\n"
            )
    return path


def read_acap(path: Union[str, Path]) -> AcapFile:
    """Read an acap file written by :func:`write_acap`."""
    path = Path(path)
    with open(path) as handle:
        header = handle.readline().rstrip("\n")
        if not header.startswith(_HEADER_LINE):
            raise ValueError(f"{path}: not an acap file")
        source = header.partition("source=")[2] or str(path)
        acap = AcapFile(source=source)
        for line in handle:
            parts = line.rstrip("\n").split("\t")
            if len(parts) != 14:
                raise ValueError(f"{path}: malformed acap line")
            acap.records.append(AcapRecord(
                timestamp=float(parts[0]),
                wire_len=int(parts[1]),
                captured_len=int(parts[2]),
                stack=tuple(parts[3].split("/")) if parts[3] != "-" else (),
                vlan_ids=_decode_ints(parts[4]),
                mpls_labels=_decode_ints(parts[5]),
                ip_version=int(parts[6]),
                src=parts[7] if parts[7] != "-" else "",
                dst=parts[8] if parts[8] != "-" else "",
                proto=int(parts[9]),
                sport=int(parts[10]),
                dport=int(parts[11]),
                tcp_flags=int(parts[12]),
                truncated=parts[13] == "1",
            ))
    return acap
