"""Flow classification and aggregation (Section 6.2.4, Fig 13).

"Flows are classified by using the virtualization tags (MPLS and VLAN)
and network- and transport-layer fields -- thus even if the same 10/8
addresses are used in different slices, they are treated as different
flows."  The flow key therefore includes the tag tuples, and two
conversations with identical 5-tuples in different slices never merge.

Keys are direction-normalized so a flow's two directions count as one
flow, matching how flow counts are usually reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.analysis.acap import AcapRecord
from repro.packets.headers import TCP_FIN, TCP_RST, TCP_SYN


@dataclass(frozen=True)
class FlowKey:
    """The classification key: tags + network + transport fields."""

    vlan_ids: Tuple[int, ...]
    mpls_labels: Tuple[int, ...]
    ip_version: int
    endpoint_a: Tuple[str, int]
    endpoint_b: Tuple[str, int]
    proto: int

    @classmethod
    def from_record(cls, record: AcapRecord) -> "FlowKey":
        """Build the direction-normalized key for one acap record."""
        side_src = (record.src, record.sport)
        side_dst = (record.dst, record.dport)
        a, b = (side_src, side_dst) if side_src <= side_dst else (side_dst, side_src)
        return cls(
            vlan_ids=record.vlan_ids,
            mpls_labels=tuple(sorted(record.mpls_labels)),
            ip_version=record.ip_version,
            endpoint_a=a,
            endpoint_b=b,
            proto=record.proto,
        )


@dataclass
class FlowStats:
    """Aggregated statistics for one flow (or flow snippet)."""

    key: FlowKey
    frames: int = 0
    wire_bytes: int = 0
    first_seen: float = float("inf")
    last_seen: float = float("-inf")
    syn_seen: bool = False
    fin_seen: bool = False
    rst_seen: bool = False
    samples: int = 1

    @property
    def duration(self) -> float:
        if self.frames == 0:
            return 0.0
        return max(0.0, self.last_seen - self.first_seen)

    def add(self, record: AcapRecord) -> None:
        self.frames += 1
        self.wire_bytes += record.wire_len
        self.first_seen = min(self.first_seen, record.timestamp)
        self.last_seen = max(self.last_seen, record.timestamp)
        if record.tcp_flags & TCP_SYN:
            self.syn_seen = True
        if record.tcp_flags & TCP_FIN:
            self.fin_seen = True
        if record.tcp_flags & TCP_RST:
            self.rst_seen = True

    def merge(self, other: "FlowStats") -> None:
        """Piece a snippet from another sample into this flow."""
        if other.key != self.key:
            raise ValueError("cannot merge different flows")
        self.frames += other.frames
        self.wire_bytes += other.wire_bytes
        self.first_seen = min(self.first_seen, other.first_seen)
        self.last_seen = max(self.last_seen, other.last_seen)
        self.syn_seen = self.syn_seen or other.syn_seen
        self.fin_seen = self.fin_seen or other.fin_seen
        self.rst_seen = self.rst_seen or other.rst_seen
        self.samples += other.samples


def classify_flows(records: Iterable[AcapRecord]) -> Dict[FlowKey, FlowStats]:
    """Group one sample's records into flows.

    Non-IP records (ARP, unparseable) are excluded -- they have no
    transport-layer identity to classify on.
    """
    flows: Dict[FlowKey, FlowStats] = {}
    for record in records:
        if not record.is_ip:
            continue
        key = FlowKey.from_record(record)
        stats = flows.get(key)
        if stats is None:
            stats = FlowStats(key=key)
            flows[key] = stats
        stats.add(record)
    return flows


def aggregate_flows(per_sample: Iterable[Dict[FlowKey, FlowStats]]) -> Dict[FlowKey, FlowStats]:
    """Piece together flow snippets across samples (Section 8.2).

    The same flow observed in several 20-second samples merges into one
    aggregate; this is the analysis behind "most flows are short ...
    but some flows were around 100 GB in size".
    """
    merged: Dict[FlowKey, FlowStats] = {}
    for sample in per_sample:
        for key, stats in sample.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = FlowStats(
                    key=key,
                    frames=stats.frames,
                    wire_bytes=stats.wire_bytes,
                    first_seen=stats.first_seen,
                    last_seen=stats.last_seen,
                    syn_seen=stats.syn_seen,
                    fin_seen=stats.fin_seen,
                    rst_seen=stats.rst_seen,
                    samples=stats.samples,
                )
            else:
                existing.merge(stats)
    return merged


def flows_per_sample_counts(per_sample: Iterable[Dict[FlowKey, FlowStats]]) -> List[int]:
    """Fig 13's x-values: distinct flows seen in each sample."""
    return [len(sample) for sample in per_sample]
