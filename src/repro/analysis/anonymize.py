"""Close-to-source anonymization (requirement 6 in the paper's intro).

Researchers sharing testbed traces need addresses anonymized *before*
frames reach storage.  The :class:`Anonymizer` provides a frame-bytes
transform suitable for Patchwork's ``transform`` hook (it runs inside
the capture session, before the pcap write):

* MAC addresses are replaced with a keyed pseudonym (locally-
  administered range, so anonymized traces stay recognizably synthetic);
* IPv4 addresses are anonymized *prefix-preservingly*: two addresses
  sharing a k-bit prefix map to pseudonyms sharing a k-bit prefix, so
  subnet structure (and therefore most analyses) survive;
* IPv6 addresses are pseudonymized per 16-bit group with the same
  prefix-preserving property.

The mapping is deterministic per key, so the same host maps to the
same pseudonym across samples -- flows still aggregate correctly.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Dict

from repro.packets.headers import EtherType


class Anonymizer:
    """Keyed, deterministic, prefix-preserving address anonymization."""

    def __init__(self, key: bytes = b"patchwork-anon"):
        if not key:
            raise ValueError("anonymization key must be non-empty")
        self.key = key
        self._ipv4_cache: Dict[int, int] = {}

    # -- primitives ------------------------------------------------------------

    def _bit(self, prefix_bits: str) -> int:
        """One keyed pseudo-random bit for a given bit-prefix."""
        digest = hmac.new(self.key, prefix_bits.encode("ascii"), hashlib.sha256).digest()
        return digest[0] & 1

    def anonymize_ipv4_int(self, addr: int) -> int:
        """Crypto-PAn-style prefix-preserving permutation of 32 bits.

        Each output bit is the input bit XOR a keyed function of the
        preceding input bits, which is exactly the structure that makes
        the mapping prefix-preserving and invertible.
        """
        cached = self._ipv4_cache.get(addr)
        if cached is not None:
            return cached
        bits = f"{addr:032b}"
        out = 0
        for i in range(32):
            flip = self._bit(f"v4/{bits[:i]}")
            out = (out << 1) | (int(bits[i]) ^ flip)
        self._ipv4_cache[addr] = out
        return out

    def anonymize_ipv4(self, raw: bytes) -> bytes:
        (addr,) = struct.unpack("!I", raw)
        return struct.pack("!I", self.anonymize_ipv4_int(addr))

    def anonymize_ipv6(self, raw: bytes) -> bytes:
        """Prefix-preserving per 16-bit group."""
        groups = struct.unpack("!8H", raw)
        out = []
        prefix = ""
        for group in groups:
            digest = hmac.new(self.key, f"v6/{prefix}".encode("ascii"),
                              hashlib.sha256).digest()
            mask = struct.unpack("!H", digest[:2])[0]
            out.append(group ^ mask)
            prefix += f"{group:04x}:"
        return struct.pack("!8H", *out)

    def anonymize_mac(self, raw: bytes) -> bytes:
        digest = hmac.new(self.key, b"mac/" + raw, hashlib.sha256).digest()
        pseudo = bytearray(digest[:6])
        pseudo[0] = (pseudo[0] | 0x02) & 0xFE  # locally administered, unicast
        return bytes(pseudo)

    # -- the frame transform ------------------------------------------------

    def transform(self, data: bytes) -> bytes:
        """Anonymize every address in a captured frame prefix.

        Walks the header chain the same way the dissector does and
        rewrites MAC and IP addresses in place.  Unknown or truncated
        regions are left untouched.
        """
        out = bytearray(data)
        offset = 0
        # Outer (and possibly inner, via pseudowire) Ethernet chains.
        while True:
            if len(out) - offset < 14:
                return bytes(out)
            out[offset:offset + 6] = self.anonymize_mac(bytes(out[offset:offset + 6]))
            out[offset + 6:offset + 12] = self.anonymize_mac(bytes(out[offset + 6:offset + 12]))
            (ethertype,) = struct.unpack_from("!H", out, offset + 12)
            offset += 14
            # VLAN tags.
            while ethertype == EtherType.VLAN and len(out) - offset >= 4:
                (ethertype,) = struct.unpack_from("!H", out, offset + 2)
                offset += 4
            if ethertype == EtherType.MPLS_UNICAST:
                bottom = False
                while not bottom and len(out) - offset >= 4:
                    (entry,) = struct.unpack_from("!I", out, offset)
                    bottom = bool((entry >> 8) & 1)
                    offset += 4
                if len(out) - offset < 1:
                    return bytes(out)
                nibble = out[offset] >> 4
                if nibble == 0:
                    offset += 4  # pseudowire control word, then inner Ethernet
                    continue
                ethertype = EtherType.IPV4 if nibble == 4 else EtherType.IPV6
            if ethertype == EtherType.IPV4:
                if len(out) - offset >= 20:
                    out[offset + 12:offset + 16] = self.anonymize_ipv4(
                        bytes(out[offset + 12:offset + 16]))
                    out[offset + 16:offset + 20] = self.anonymize_ipv4(
                        bytes(out[offset + 16:offset + 20]))
                    self._clear_ipv4_checksum(out, offset)
            elif ethertype == EtherType.IPV6:
                if len(out) - offset >= 40:
                    out[offset + 8:offset + 24] = self.anonymize_ipv6(
                        bytes(out[offset + 8:offset + 24]))
                    out[offset + 24:offset + 40] = self.anonymize_ipv6(
                        bytes(out[offset + 24:offset + 40]))
            return bytes(out)

    @staticmethod
    def _clear_ipv4_checksum(out: bytearray, ip_offset: int) -> None:
        """Zero the header checksum: it no longer matches and keeping a
        stale value would leak information about the original addresses."""
        out[ip_offset + 10] = 0
        out[ip_offset + 11] = 0
