"""Offline analysis (paper Section 6.2.4, Fig 9).

Patchwork decouples capture from analysis; this package is the offline
half that runs after the gathering phase:

* **Digest** (:mod:`repro.analysis.dissect`, :mod:`repro.analysis.acap`)
  -- protocol dissectors turn each captured frame prefix into an
  abstract stack of headers ("acap"), discarding unneeded bytes.
* **Index** (:mod:`repro.analysis.index`) -- per-acap-file summaries so
  later analyses can locate the files they need without re-reading
  gigabytes.
* **Analyze** (:mod:`repro.analysis.analyze`,
  :mod:`repro.analysis.flows`) -- frame-size characterization, header
  occurrence, per-site protocol diversity, and flow classification
  keyed on virtualization tags (VLAN/MPLS) plus network- and
  transport-layer fields.
* **Process** (:mod:`repro.analysis.report`) -- CSV emission of every
  profile aspect the paper graphs.
* **Anonymization** (:mod:`repro.analysis.anonymize`) -- the
  close-to-source pre-processing Patchwork can apply before frames are
  stored.
"""

from repro.analysis.dissect import DissectedFrame, Dissector, HeaderInfo
from repro.analysis.acap import (
    AcapFile,
    AcapRecord,
    digest_pcap,
    dissect_record,
    read_acap,
    write_acap,
)
from repro.analysis.cache import AcapCache
from repro.analysis.index import AcapIndex, IndexEntry
from repro.analysis.flows import FlowKey, FlowStats, aggregate_flows, classify_flows
from repro.analysis.analyze import (
    frame_size_distribution,
    header_occurrence,
    site_header_diversity,
    HeaderDiversity,
)
from repro.analysis.anonymize import Anonymizer
from repro.analysis.pipeline import AnalysisPipeline, PipelineStats, ProfileReport
from repro.analysis.compare import (
    ProfileDelta,
    ProfileHistory,
    compare_profiles,
)
from repro.analysis.visualize import render_report_charts, sparkline

__all__ = [
    "DissectedFrame",
    "Dissector",
    "HeaderInfo",
    "AcapCache",
    "AcapFile",
    "AcapRecord",
    "digest_pcap",
    "dissect_record",
    "read_acap",
    "write_acap",
    "AcapIndex",
    "IndexEntry",
    "FlowKey",
    "FlowStats",
    "aggregate_flows",
    "classify_flows",
    "frame_size_distribution",
    "header_occurrence",
    "site_header_diversity",
    "HeaderDiversity",
    "Anonymizer",
    "AnalysisPipeline",
    "PipelineStats",
    "ProfileReport",
    "ProfileDelta",
    "ProfileHistory",
    "compare_profiles",
    "render_report_charts",
    "sparkline",
]
