"""Protocol dissectors.

The Digest step "applies protocol dissectors to extract information
about each header, discarding unneeded information" -- the real system
uses Wireshark's dissectors; we implement our own over the parsers in
:mod:`repro.packets.headers`.

A dissection walks the frame prefix outward-in: Ethernet, then whatever
the EtherType chain announces (VLAN, MPLS stack, IPv4/IPv6, ARP), a
pseudowire control word where the first nibble under the bottom MPLS
label is zero, the transport header, and finally a port-classified
application layer (the same heuristic tshark uses: "layer-4 ports are
often used to classify the payload that follows").  Remaining bytes are
reported as a generic ``data`` layer.

Dissection is defensive: a frame that runs out of bytes mid-header
keeps everything parsed so far and is flagged ``truncated`` rather than
raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.packets import headers as hdr
from repro.packets.headers import (
    EtherType,
    IPProto,
    PORT_DNS,
    PORT_HTTP,
    PORT_HTTPS,
    PORT_IPERF,
    PORT_NTP,
    PORT_SSH,
)


@dataclass(frozen=True)
class HeaderInfo:
    """One dissected header: its protocol name and extracted fields."""

    name: str
    fields: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<{self.name}>"


@dataclass
class DissectedFrame:
    """The abstract header stack for one frame."""

    headers: List[HeaderInfo]
    truncated: bool = False

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(h.name for h in self.headers)

    @property
    def depth(self) -> int:
        return len(self.headers)

    def first(self, name: str) -> Optional[HeaderInfo]:
        for header in self.headers:
            if header.name == name:
                return header
        return None

    def all(self, name: str) -> List[HeaderInfo]:
        return [h for h in self.headers if h.name == name]

    def has(self, name: str) -> bool:
        return any(h.name == name for h in self.headers)


# Application classifiers tried for a given port, most specific first.
_APP_BY_PORT = {
    PORT_HTTPS: ("tls", hdr.TLSRecord.parse),
    PORT_SSH: ("ssh", hdr.SSHBanner.parse),
    PORT_DNS: ("dns", hdr.DNSHeader.parse),
    PORT_HTTP: ("http", hdr.HTTPPayload.parse),
    PORT_NTP: ("ntp", hdr.NTPPayload.parse),
}


class Dissector:
    """Stateless frame dissector."""

    def dissect(self, data: bytes) -> DissectedFrame:
        """Dissect one captured frame prefix."""
        frame = DissectedFrame(headers=[])
        view = memoryview(data)
        try:
            view = self._ethernet_chain(view, frame)
            if view is not None and len(view) > 0:
                # Short frames are zero-padded to the Ethernet minimum;
                # don't report that padding as an application payload.
                if len(view) <= 8 and not any(bytes(view)):
                    frame.headers.append(HeaderInfo("padding", {"size": len(view)}))
                else:
                    frame.headers.append(HeaderInfo("data", {"size": len(view)}))
        except _Truncated:
            frame.truncated = True
        return frame

    # -- layer walkers ------------------------------------------------------

    def _ethernet_chain(self, view: memoryview, frame: DissectedFrame) -> Optional[memoryview]:
        fields, consumed, ethertype = self._parse(hdr.Ethernet.parse, view)
        frame.headers.append(HeaderInfo("eth", fields))
        return self._after_ethertype(view[consumed:], frame, ethertype)

    def _after_ethertype(self, view: memoryview, frame: DissectedFrame,
                         ethertype: int) -> Optional[memoryview]:
        if ethertype == EtherType.VLAN:
            fields, consumed, inner_type = self._parse(hdr.VLAN.parse, view)
            frame.headers.append(HeaderInfo("vlan", fields))
            return self._after_ethertype(view[consumed:], frame, inner_type)
        if ethertype == EtherType.MPLS_UNICAST:
            return self._mpls_stack(view, frame)
        if ethertype == EtherType.IPV4:
            return self._ipv4(view, frame)
        if ethertype == EtherType.IPV6:
            return self._ipv6(view, frame)
        if ethertype == EtherType.ARP:
            fields, consumed, _ = self._parse(hdr.ARP.parse, view)
            frame.headers.append(HeaderInfo("arp", fields))
            return view[consumed:]
        # Unknown EtherType: everything that follows is opaque.
        return view

    def _mpls_stack(self, view: memoryview, frame: DissectedFrame) -> Optional[memoryview]:
        bottom = False
        while not bottom:
            fields, consumed, bottom = self._parse(hdr.MPLS.parse, view)
            frame.headers.append(HeaderInfo("mpls", fields))
            view = view[consumed:]
        # Below the bottom label: first nibble 4 = IPv4, 6 = IPv6,
        # 0 = pseudowire control word (RFC 4448 heuristic).
        if len(view) < 1:
            raise _Truncated()
        nibble = view[0] >> 4
        if nibble == 4:
            return self._ipv4(view, frame)
        if nibble == 6:
            return self._ipv6(view, frame)
        if nibble == 0:
            fields, consumed, _ = self._parse(hdr.PseudoWireControlWord.parse, view)
            frame.headers.append(HeaderInfo("pw", fields))
            return self._ethernet_chain(view[consumed:], frame)
        return view

    def _ipv4(self, view: memoryview, frame: DissectedFrame) -> Optional[memoryview]:
        fields, consumed, proto = self._parse(hdr.IPv4.parse, view)
        frame.headers.append(HeaderInfo("ipv4", fields))
        return self._transport(view[consumed:], frame, proto)

    def _ipv6(self, view: memoryview, frame: DissectedFrame) -> Optional[memoryview]:
        fields, consumed, proto = self._parse(hdr.IPv6.parse, view)
        frame.headers.append(HeaderInfo("ipv6", fields))
        return self._transport(view[consumed:], frame, proto)

    def _transport(self, view: memoryview, frame: DissectedFrame,
                   proto: int) -> Optional[memoryview]:
        if proto == IPProto.TCP:
            fields, consumed, ports = self._parse(hdr.TCP.parse, view)
            frame.headers.append(HeaderInfo("tcp", fields))
            return self._application(view[consumed:], frame, ports)
        if proto == IPProto.UDP:
            fields, consumed, ports = self._parse(hdr.UDP.parse, view)
            frame.headers.append(HeaderInfo("udp", fields))
            return self._application(view[consumed:], frame, ports)
        if proto in (IPProto.ICMP, IPProto.ICMPV6):
            fields, consumed, _ = self._parse(hdr.ICMP.parse, view)
            frame.headers.append(HeaderInfo("icmp", fields))
            return view[consumed:]
        return view

    def _application(self, view: memoryview, frame: DissectedFrame,
                     ports: Tuple[int, int]) -> Optional[memoryview]:
        if len(view) == 0:
            return view
        sport, dport = ports
        for port in (dport, sport):
            entry = _APP_BY_PORT.get(port)
            if entry is None:
                if port == PORT_IPERF:
                    frame.headers.append(HeaderInfo("iperf", {"size": len(view)}))
                    return view[len(view):]
                continue
            name, parser = entry
            try:
                fields, consumed, _ = parser(view)
            except ValueError:
                continue
            frame.headers.append(HeaderInfo(name, fields))
            return view[consumed:]
        return view

    # -- plumbing ------------------------------------------------------------

    @staticmethod
    def _parse(parser, view: memoryview):
        # Any parse failure -- short bytes or malformed fields -- flags
        # the frame as truncated rather than raising to the caller.
        try:
            return parser(view)
        except ValueError:
            raise _Truncated() from None


class _Truncated(Exception):
    """Internal: the frame prefix ended mid-header."""
