"""The Process step: CSV tables describing the profile.

"From the results of analyses, the Process step produces CSV files
that describe different aspects of the profile -- such as the
distribution of different types of frames across FABRIC sites, and the
composition of flows.  Finally, this information is processed by other
scripts to produce graphs or summary statistics."

Each function here turns one analysis into a :class:`~repro.util.tables.Table`
that can be rendered or written as CSV; the benchmark harnesses print
these tables as the paper-figure reproductions.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.acap import AcapRecord
from repro.analysis.analyze import (
    frame_size_distribution,
    header_occurrence,
    ip_version_shares,
    jumbo_fraction,
    site_header_diversity,
)
from repro.analysis.flows import FlowKey, FlowStats
from repro.traffic.distributions import PAPER_FRAME_BINS
from repro.util.tables import Table


def frame_size_table(records_by_site: Mapping[str, Sequence[AcapRecord]]) -> Table:
    """Fig 15: per-site frame-size distribution (plus jumbo share)."""
    labels = PAPER_FRAME_BINS.labels()
    table = Table(["site"] + labels + ["jumbo_fraction"],
                  title="Frame-size distribution by site")
    for site in sorted(records_by_site):
        records = list(records_by_site[site])
        dist = frame_size_distribution(records)
        table.add_row([site] + [round(dist[label], 5) for label in labels]
                      + [round(jumbo_fraction(records), 5)])
    return table


def overall_frame_size_table(records: Sequence[AcapRecord]) -> Table:
    """Section 8.2's headline frame-size shares, aggregated."""
    dist = frame_size_distribution(records)
    table = Table(["size_bin", "fraction"], title="Frame sizes (all sites)")
    for label, fraction in dist.items():
        table.add_row([label, round(fraction, 5)])
    return table


def header_occurrence_table(records: Sequence[AcapRecord]) -> Table:
    """Fig 12: occurrence of protocol headers (percent of frames)."""
    table = Table(["header", "percent_of_frames"],
                  title="Occurrence of protocol headers")
    occurrence = header_occurrence(records)
    for name, percent in sorted(occurrence.items(), key=lambda kv: -kv[1]):
        table.add_row([name, round(percent, 3)])
    return table


def header_diversity_table(records_by_site: Mapping[str, Sequence[AcapRecord]]) -> Table:
    """Fig 11: distinct headers and deepest stack per (anonymized) site."""
    table = Table(["site", "distinct_headers", "max_stack_depth", "frames"],
                  title="Per-site protocol diversity")
    for d in site_header_diversity(records_by_site):
        table.add_row([d.site, d.distinct_headers, d.max_stack_depth, d.frames])
    return table


def ip_version_table(records: Sequence[AcapRecord]) -> Table:
    """Finding B6: IPv4 dominance."""
    table = Table(["family", "fraction"], title="IP version shares")
    for family, fraction in ip_version_shares(records).items():
        table.add_row([family, round(fraction, 5)])
    return table


def flows_per_sample_table(counts: Sequence[int],
                           edges: Sequence[int] = (0, 10, 30, 100, 300, 1000,
                                                   3000, 10000, 20000)) -> Table:
    """Fig 13: frequency of flow counts per 20 s sample."""
    table = Table(["flows_bin", "samples"], title="Flows per sample")
    arr = np.asarray(list(counts))
    previous = None
    for edge in edges:
        if previous is None:
            previous = edge
            continue
        n = int(np.count_nonzero((arr > previous) & (arr <= edge)))
        table.add_row([f"{previous + 1}-{edge}", n])
        previous = edge
    table.add_row([f">{edges[-1]}", int(np.count_nonzero(arr > edges[-1]))])
    # The zero/low bin goes first for readability.
    low = int(np.count_nonzero(arr <= edges[0]))
    table.rows.insert(0, [f"<={edges[0]}", low])
    return table


def aggregated_flow_size_table(flows: Mapping[FlowKey, FlowStats],
                               decade_max: int = 12) -> Table:
    """Section 8.2's cross-sample flow-size analysis.

    Buckets aggregated flow sizes by decade of bytes: most flows are
    tiny, a few are enormous.
    """
    table = Table(["size_decade_bytes", "flows"], title="Aggregated flow sizes")
    sizes = np.array([stats.wire_bytes for stats in flows.values()])
    for decade in range(decade_max):
        lo, hi = 10 ** decade, 10 ** (decade + 1)
        count = int(np.count_nonzero((sizes >= lo) & (sizes < hi)))
        table.add_row([f"1e{decade}-1e{decade + 1}", count])
    return table


def tcp_flag_table(flows: Mapping[FlowKey, FlowStats]) -> Table:
    """Control-information summary: SYN/FIN/RST presence across flows."""
    table = Table(["flag", "flows", "fraction"], title="TCP control flags seen")
    total = max(1, len(flows))
    for flag, present in (
        ("syn", sum(1 for f in flows.values() if f.syn_seen)),
        ("fin", sum(1 for f in flows.values() if f.fin_seen)),
        ("rst", sum(1 for f in flows.values() if f.rst_seen)),
    ):
        table.add_row([flag, present, round(present / total, 5)])
    return table
