"""Chart generation for profile reports.

The real Patchwork carries ~2 kLOC of visualization code that renders
the paper's graphs from the Process step's CSVs.  This module provides
a dependency-free equivalent: simple, self-contained SVG renderers for
the three chart shapes the paper uses (bar charts for Figs 2/6/12/15,
CDF/line charts for Figs 3/4, and scatter/series charts for Figs 5/11/
13), plus terminal-friendly ASCII sparklines used by the examples.

The renderers intentionally know nothing about the analyses: they take
labelled series, so any :class:`~repro.util.tables.Table` column can be
plotted.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

# A small qualitative palette (colorblind-safe Okabe-Ito subset).
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9")

BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line unicode sparkline (used by example scripts)."""
    if not values:
        return ""
    values = list(values)
    if len(values) > width:
        # Downsample by taking bucket maxima (peaks matter for traffic).
        bucket = len(values) / width
        values = [max(values[int(i * bucket):max(int(i * bucket) + 1,
                                                 int((i + 1) * bucket))])
                  for i in range(width)]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(BLOCKS[1 + int((v - low) / span * (len(BLOCKS) - 2))]
                   for v in values)


@dataclass
class Series:
    """One named data series."""

    name: str
    values: List[float]
    color: Optional[str] = None


class SvgCanvas:
    """Minimal SVG assembly: elements accumulate, then render."""

    def __init__(self, width: int = 720, height: int = 400):
        self.width = width
        self.height = height
        self._elements: List[str] = []

    def add(self, element: str) -> None:
        self._elements.append(element)

    def rect(self, x: float, y: float, w: float, h: float, fill: str,
             opacity: float = 1.0, title: str = "") -> None:
        tooltip = f"<title>{html.escape(title)}</title>" if title else ""
        self.add(f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
                 f'height="{h:.1f}" fill="{fill}" opacity="{opacity}">'
                 f'{tooltip}</rect>')

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#555", width: float = 1.0,
             dash: str = "") -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.add(f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                 f'y2="{y2:.1f}" stroke="{stroke}" '
                 f'stroke-width="{width}"{dash_attr}/>')

    def polyline(self, points: Sequence[Tuple[float, float]], stroke: str,
                 width: float = 2.0) -> None:
        text = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.add(f'<polyline points="{text}" fill="none" stroke="{stroke}" '
                 f'stroke-width="{width}"/>')

    def circle(self, x: float, y: float, r: float, fill: str,
               title: str = "") -> None:
        tooltip = f"<title>{html.escape(title)}</title>" if title else ""
        self.add(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" '
                 f'fill="{fill}">{tooltip}</circle>')

    def text(self, x: float, y: float, content: str, size: int = 12,
             anchor: str = "start", rotate: Optional[float] = None) -> None:
        transform = (f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
                     if rotate is not None else "")
        self.add(f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
                 f'font-family="sans-serif" text-anchor="{anchor}"'
                 f'{transform}>{html.escape(content)}</text>')

    def render(self) -> str:
        body = "\n  ".join(self._elements)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">\n'
                f'  <rect width="100%" height="100%" fill="white"/>\n'
                f'  {body}\n</svg>\n')

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path


@dataclass
class ChartLayout:
    """Shared axes/margins geometry."""

    width: int = 720
    height: int = 400
    margin_left: int = 70
    margin_right: int = 20
    margin_top: int = 40
    margin_bottom: int = 80

    @property
    def plot_width(self) -> float:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_height(self) -> float:
        return self.height - self.margin_top - self.margin_bottom

    def x(self, fraction: float) -> float:
        return self.margin_left + fraction * self.plot_width

    def y(self, fraction: float) -> float:
        """fraction 0 = axis bottom, 1 = top."""
        return self.margin_top + (1.0 - fraction) * self.plot_height


def _axes(canvas: SvgCanvas, layout: ChartLayout, title: str,
          y_max: float, y_label: str = "") -> None:
    canvas.text(layout.width / 2, 20, title, size=14, anchor="middle")
    canvas.line(layout.x(0), layout.y(0), layout.x(1), layout.y(0))
    canvas.line(layout.x(0), layout.y(0), layout.x(0), layout.y(1))
    for i in range(5):
        fraction = i / 4
        value = y_max * fraction
        canvas.line(layout.x(0) - 4, layout.y(fraction), layout.x(0),
                    layout.y(fraction))
        canvas.text(layout.x(0) - 8, layout.y(fraction) + 4,
                    f"{value:g}", size=10, anchor="end")
    if y_label:
        canvas.text(16, layout.height / 2, y_label, size=11,
                    anchor="middle", rotate=-90)


def bar_chart(
    labels: Sequence[str],
    series: Sequence[Series],
    title: str = "",
    y_label: str = "",
    stacked: bool = False,
    layout: Optional[ChartLayout] = None,
) -> SvgCanvas:
    """Grouped or stacked bars (Figs 2, 6, 12, 15 shapes)."""
    if not labels or not series:
        raise ValueError("bar chart needs labels and at least one series")
    for s in series:
        if len(s.values) != len(labels):
            raise ValueError(f"series {s.name!r} length != labels length")
    layout = layout or ChartLayout()
    canvas = SvgCanvas(layout.width, layout.height)
    if stacked:
        totals = [sum(s.values[i] for s in series) for i in range(len(labels))]
        y_max = max(totals) or 1.0
    else:
        y_max = max(max(s.values) for s in series) or 1.0
    _axes(canvas, layout, title, y_max, y_label)
    slot = layout.plot_width / len(labels)
    bar_gap = slot * 0.15
    for i, label in enumerate(labels):
        x0 = layout.x(0) + i * slot + bar_gap
        usable = slot - 2 * bar_gap
        if stacked:
            base = 0.0
            for j, s in enumerate(series):
                h = s.values[i] / y_max * layout.plot_height
                y_top = layout.y(base / y_max) - h
                canvas.rect(x0, y_top, usable, h,
                            s.color or PALETTE[j % len(PALETTE)],
                            title=f"{label} {s.name}: {s.values[i]:g}")
                base += s.values[i]
        else:
            width = usable / len(series)
            for j, s in enumerate(series):
                h = s.values[i] / y_max * layout.plot_height
                canvas.rect(x0 + j * width, layout.y(0) - h, width, h,
                            s.color or PALETTE[j % len(PALETTE)],
                            title=f"{label} {s.name}: {s.values[i]:g}")
        if len(labels) <= 40:
            canvas.text(x0 + usable / 2, layout.y(0) + 14, str(label),
                        size=9, anchor="end", rotate=-45)
    _legend(canvas, layout, series)
    return canvas


def line_chart(
    x_values: Sequence[float],
    series: Sequence[Series],
    title: str = "",
    y_label: str = "",
    markers: bool = False,
    layout: Optional[ChartLayout] = None,
) -> SvgCanvas:
    """Line/CDF charts (Figs 3, 4, 5, 11 shapes)."""
    if not x_values or not series:
        raise ValueError("line chart needs x values and at least one series")
    for s in series:
        if len(s.values) != len(x_values):
            raise ValueError(f"series {s.name!r} length != x length")
    layout = layout or ChartLayout()
    canvas = SvgCanvas(layout.width, layout.height)
    y_max = max(max(s.values) for s in series) or 1.0
    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0
    _axes(canvas, layout, title, y_max, y_label)
    for i in range(5):
        value = x_min + x_span * i / 4
        canvas.text(layout.x(i / 4), layout.y(0) + 16, f"{value:g}",
                    size=10, anchor="middle")
    for j, s in enumerate(series):
        color = s.color or PALETTE[j % len(PALETTE)]
        points = [
            (layout.x((x - x_min) / x_span), layout.y(v / y_max))
            for x, v in zip(x_values, s.values)
        ]
        canvas.polyline(points, color)
        if markers:
            for (px, py), v in zip(points, s.values):
                canvas.circle(px, py, 2.5, color, title=f"{s.name}: {v:g}")
    _legend(canvas, layout, series)
    return canvas


def histogram_chart(
    counts: Sequence[int],
    bin_labels: Sequence[str],
    title: str = "",
    y_label: str = "samples",
    layout: Optional[ChartLayout] = None,
) -> SvgCanvas:
    """Frequency histogram (Fig 13 shape)."""
    return bar_chart(bin_labels, [Series(y_label, list(map(float, counts)))],
                     title=title, y_label=y_label, layout=layout)


def _legend(canvas: SvgCanvas, layout: ChartLayout,
            series: Sequence[Series]) -> None:
    if len(series) < 2:
        return
    x = layout.x(0) + 10
    y = layout.margin_top + 6
    for j, s in enumerate(series):
        color = s.color or PALETTE[j % len(PALETTE)]
        canvas.rect(x, y + j * 16 - 8, 10, 10, color)
        canvas.text(x + 16, y + j * 16, s.name, size=10)


def render_report_charts(report, out_dir: Union[str, Path]) -> List[Path]:
    """Render the standard chart set for a ProfileReport.

    Produces SVGs mirroring the paper's profile figures: header
    occurrence (Fig 12), per-site diversity (Fig 11), flows per sample
    (Fig 13), and per-site frame sizes (Fig 15).
    """
    out_dir = Path(out_dir)
    written = []

    occurrence = report.tables["header_occurrence"]
    written.append(bar_chart(
        occurrence.column("header"),
        [Series("percent of frames",
                [float(v) for v in occurrence.column("percent_of_frames")])],
        title="Occurrence of protocol headers (Fig 12)",
        y_label="% of frames",
    ).save(out_dir / "fig12_header_occurrence.svg"))

    diversity = report.tables["header_diversity"]
    sites = diversity.column("site")
    written.append(bar_chart(
        sites,
        [Series("distinct headers",
                [float(v) for v in diversity.column("distinct_headers")]),
         Series("deepest stack",
                [float(v) for v in diversity.column("max_stack_depth")])],
        title="Per-site protocol diversity (Fig 11)",
    ).save(out_dir / "fig11_header_diversity.svg"))

    flows = report.tables["flows_per_sample"]
    written.append(histogram_chart(
        [int(v) for v in flows.column("samples")],
        flows.column("flows_bin"),
        title="Flows per sample (Fig 13)",
    ).save(out_dir / "fig13_flows_per_sample.svg"))

    sizes = report.tables["frame_sizes_by_site"]
    size_bins = [c for c in sizes.columns if c not in ("site", "jumbo_fraction")]
    written.append(bar_chart(
        sizes.column("site"),
        [Series(b, [float(v) for v in sizes.column(b)]) for b in size_bins],
        title="Frame-size distribution by site (Fig 15)",
        y_label="fraction",
        stacked=True,
    ).save(out_dir / "fig15_frame_sizes_by_site.svg"))
    return written
