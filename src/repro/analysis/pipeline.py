"""The end-to-end analysis pipeline (Fig 9).

``pcaps -> Digest -> acap -> Index -> Analyze -> Process -> CSVs``

:class:`AnalysisPipeline` drives the whole offline phase over the
output directory a Patchwork profile produced (or any set of pcap
files), and returns a :class:`ProfileReport` holding every table the
Process step emits plus the headline statistics the paper quotes.

The Digest step scales out: pcaps are embarrassingly parallel (each
acap depends on exactly one capture file), so with ``max_workers > 1``
they fan out over a process pool.  Results are assembled in input
order, so every downstream table is byte-identical regardless of
worker count or completion order.  An optional content-addressed
:class:`~repro.analysis.cache.AcapCache` skips pcaps digested by an
earlier run.  :class:`PipelineStats` records what happened (per-stage
wall time, throughput, cache hits) for the CLI to surface.
"""

from __future__ import annotations

import struct
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.acap import AcapFile, AcapRecord, digest_pcap, write_acap
from repro.analysis.cache import AcapCache
from repro.analysis.analyze import ip_version_shares, jumbo_fraction
from repro.analysis.flows import (
    FlowKey,
    FlowStats,
    aggregate_flows,
    classify_flows,
    flows_per_sample_counts,
)
from repro.analysis.index import AcapIndex
from repro.obs import get_obs
from repro.obs.ledger import CongestionScorecard
from repro.analysis.report import (
    aggregated_flow_size_table,
    flows_per_sample_table,
    frame_size_table,
    header_diversity_table,
    header_occurrence_table,
    ip_version_table,
    overall_frame_size_table,
    tcp_flag_table,
)
from repro.util.tables import Table


def _digest_or_none(path: Union[str, Path]) -> Optional[AcapFile]:
    """Digest one pcap, mapping corruption to ``None`` (quarantine).

    Module-level so it stays picklable for the Digest process pool.  A
    file that cannot even be opened as a pcap (bad magic, truncated
    global header, vanished from disk) is analysis-poison; the pipeline
    quarantines it and keeps going rather than aborting the whole run.
    """
    try:
        return digest_pcap(path)
    except (ValueError, OSError, struct.error):
        return None


@dataclass
class PipelineStats:
    """Observability record for one pipeline run (Fig 9 stages)."""

    pcaps: int = 0
    workers: int = 1
    total_frames: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Pcaps too corrupt to digest (bad magic / truncated global header);
    # dropped from the corpus with a journal event instead of aborting.
    quarantined: int = 0
    digest_seconds: float = 0.0
    index_seconds: float = 0.0
    analyze_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.digest_seconds + self.index_seconds + self.analyze_seconds

    @property
    def frames_per_second(self) -> float:
        if self.digest_seconds <= 0:
            return 0.0
        return self.total_frames / self.digest_seconds

    def render(self) -> str:
        """One-line human summary for the CLI."""
        return (
            f"digested {self.pcaps} pcaps ({self.total_frames} frames) in "
            f"{self.digest_seconds:.2f}s with {self.workers} worker(s) "
            f"[{self.frames_per_second:,.0f} frames/s, "
            f"cache {self.cache_hits} hit / {self.cache_misses} miss"
            + (f", {self.quarantined} quarantined" if self.quarantined else "")
            + "]; "
            f"index {self.index_seconds:.2f}s, analyze {self.analyze_seconds:.2f}s"
        )

    def to_dict(self) -> Dict[str, Union[int, float]]:
        """Machine-readable form (``--json`` CLI mode, journal events)."""
        return {
            "pcaps": self.pcaps,
            "workers": self.workers,
            "total_frames": self.total_frames,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "quarantined": self.quarantined,
            "digest_seconds": self.digest_seconds,
            "index_seconds": self.index_seconds,
            "analyze_seconds": self.analyze_seconds,
            "total_seconds": self.total_seconds,
            "frames_per_second": self.frames_per_second,
        }

    def publish(self, obs=None) -> None:
        """Publish this run into ``repro.obs``.

        Deterministic counts go in as regular instruments; wall-time
        stage durations are marked volatile so a deterministic journal's
        metric snapshots exclude them.  The journal's ``pipeline`` event
        carries the counts always and the timings only when the journal
        is non-deterministic.
        """
        from repro.obs import get_obs as _get_obs

        obs = obs if obs is not None else _get_obs()
        registry = obs.registry
        registry.counter("pipeline.runs", help="analysis pipeline runs").inc()
        registry.counter("pipeline.pcaps",
                         help="pcaps offered to the Digest stage").inc(self.pcaps)
        registry.counter("pipeline.cache_hits",
                         help="acap cache hits").inc(self.cache_hits)
        registry.counter("pipeline.cache_misses",
                         help="acap cache misses").inc(self.cache_misses)
        registry.counter("pipeline.quarantined",
                         help="corrupt pcaps quarantined by Digest").inc(
            self.quarantined)
        for stage in ("digest", "index", "analyze"):
            registry.gauge(f"pipeline.{stage}_seconds", volatile=True,
                           help=f"wall time of the {stage} stage").set(
                getattr(self, f"{stage}_seconds"))
        obs.journal.emit(
            "pipeline",
            pcaps=self.pcaps,
            workers=self.workers,
            total_frames=self.total_frames,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            quarantined=self.quarantined,
            volatile={
                "digest_seconds": self.digest_seconds,
                "index_seconds": self.index_seconds,
                "analyze_seconds": self.analyze_seconds,
            },
        )


@dataclass
class ProfileReport:
    """Everything the Process step produced for one profile."""

    tables: Dict[str, Table] = field(default_factory=dict)
    total_frames: int = 0
    sites: List[str] = field(default_factory=list)
    ipv6_fraction: float = 0.0
    jumbo_fraction: float = 0.0
    flows_per_sample: List[int] = field(default_factory=list)
    aggregated_flows: Dict[FlowKey, FlowStats] = field(default_factory=dict)
    stats: Optional[PipelineStats] = None
    # Congestion-detector quality for the profile that produced these
    # pcaps (attached by the CLI/driver from the coordinator's bundle).
    scorecard: Optional[CongestionScorecard] = None

    def write_csvs(self, out_dir: Union[str, Path]) -> List[Path]:
        out_dir = Path(out_dir)
        return [table.to_csv(out_dir / f"{name}.csv")
                for name, table in sorted(self.tables.items())]

    def render(self) -> str:
        parts = [table.render(max_rows=40) for _name, table in sorted(self.tables.items())]
        return "\n\n".join(parts)

    def to_dict(self, include_tables: bool = True) -> Dict[str, object]:
        """Machine-readable summary (``--json`` CLI modes)."""
        payload: Dict[str, object] = {
            "total_frames": self.total_frames,
            "sites": list(self.sites),
            "ipv6_fraction": self.ipv6_fraction,
            "jumbo_fraction": self.jumbo_fraction,
            "flows_per_sample": list(self.flows_per_sample),
            "stats": self.stats.to_dict() if self.stats is not None else None,
            "scorecard": (self.scorecard.to_dict()
                          if self.scorecard is not None else None),
        }
        if include_tables:
            payload["tables"] = {name: table.to_dict()
                                 for name, table in sorted(self.tables.items())}
        return payload


class AnalysisPipeline:
    """Digest/Index/Analyze/Process over a set of pcaps.

    ``max_workers`` > 1 fans the Digest step out over a process pool
    (one task per pcap); results are reassembled in input order, so the
    output is deterministic regardless of completion order.
    ``cache_dir`` enables the content-addressed acap cache; re-running
    over an unchanged corpus then skips dissection entirely.
    """

    def __init__(self, acap_dir: Optional[Union[str, Path]] = None,
                 max_workers: int = 1,
                 cache_dir: Optional[Union[str, Path]] = None):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.acap_dir = Path(acap_dir) if acap_dir is not None else None
        self.max_workers = max_workers
        self.cache = AcapCache(cache_dir) if cache_dir is not None else None
        self.acaps: List[AcapFile] = []
        self.index: Optional[AcapIndex] = None
        self.stats = PipelineStats()

    @classmethod
    def from_config(cls, config) -> "AnalysisPipeline":
        """Build a pipeline from a :class:`~repro.core.config.PatchworkConfig`."""
        analysis = config.analysis
        cache_dir = None
        if analysis.cache_enabled:
            cache_dir = analysis.cache_dir or config.output_dir / "acap-cache"
        return cls(acap_dir=config.output_dir / "acap",
                   max_workers=analysis.max_workers,
                   cache_dir=cache_dir)

    # -- Digest ------------------------------------------------------------

    def digest(self, pcap_paths: Sequence[Union[str, Path]]) -> List[AcapFile]:
        """Dissect every pcap into an acap (optionally persisted).

        Cached pcaps are served from the acap cache; the rest fan out
        over up to ``max_workers`` processes.  ``self.acaps`` preserves
        the order of ``pcap_paths`` but **omits quarantined pcaps**
        (corrupt/undissectable inputs, counted in
        ``self.stats.quarantined``), so it can be shorter than the
        input; match acaps to pcaps by each ``AcapFile.source``, not by
        position.
        """
        started = time.perf_counter()  # reprolint: disable=RL001 -- volatile stage timing
        paths = [Path(p) for p in pcap_paths]
        acaps: List[Optional[AcapFile]] = [None] * len(paths)
        stats = self.stats = PipelineStats(pcaps=len(paths))
        with get_obs().tracer.span("analysis.digest", pcaps=len(paths)) as span:
            self._digest(paths, acaps, stats)
            # Close with the fan-out outcome so the trace tree carries
            # cache effectiveness per digest (the lexical exit's end()
            # is then a no-op).
            span.end(cache_hits=stats.cache_hits,
                     cache_misses=stats.cache_misses,
                     quarantined=stats.quarantined)
        stats.digest_seconds = time.perf_counter() - started  # reprolint: disable=RL001 -- volatile stage timing
        self._journal_digests()
        return self.acaps

    def _journal_digests(self) -> None:
        """Emit one ``ledger-digest`` event per acap so ``repro audit``
        can reconcile digested counts against capture-side ledger rows
        from the journal alone.  Pcaps are keyed site-qualified
        ("<parent dir>/<name>"), matching ``SampleLedger.pcap``."""
        journal = get_obs().journal
        if not journal.enabled:
            return
        for acap in self.acaps:
            source = Path(acap.source)
            records = acap.records
            journal.emit(
                "ledger-digest",
                pcap=f"{source.parent.name}/{source.name}",
                digested=len(records),
                truncated=sum(1 for r in records if r.truncated),
                parse_errors=sum(1 for r in records if not r.stack),
            )

    def _digest(self, paths: List[Path], acaps: "List[Optional[AcapFile]]",
                stats: PipelineStats) -> None:

        todo: List[int] = []
        if self.cache is not None:
            for i, path in enumerate(paths):
                cached = self.cache.get(path)
                if cached is not None:
                    acaps[i] = cached
                else:
                    todo.append(i)
            stats.cache_hits = len(paths) - len(todo)
            stats.cache_misses = len(todo)
        else:
            todo = list(range(len(paths)))
            stats.cache_misses = len(todo)

        # An explicit max_workers is honored as-is (oversubscription is
        # fine; "one per CPU" is decided upstream by AnalysisConfig's
        # max_workers=0), but never more than one process per pcap.
        workers = max(1, min(self.max_workers, len(todo)))
        stats.workers = workers
        if workers > 1:
            # map() preserves input order, so completion order -- which
            # varies run to run -- never leaks into the results.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                digested = pool.map(_digest_or_none, [paths[i] for i in todo])
                for i, acap in zip(todo, digested):
                    acaps[i] = acap
        else:
            for i in todo:
                acaps[i] = _digest_or_none(paths[i])

        quarantined = [paths[i] for i in todo if acaps[i] is None]
        stats.quarantined = len(quarantined)
        journal = get_obs().journal
        for path in quarantined:
            journal.emit("pipeline-quarantine",
                         pcap=f"{path.parent.name}/{path.name}")
        if self.cache is not None:
            for i in todo:
                if acaps[i] is not None:
                    self.cache.put(paths[i], acaps[i])
        self.acaps = [acap for acap in acaps if acap is not None]
        if self.acap_dir is not None:
            for path, acap in zip(paths, acaps):
                if acap is None:
                    continue
                out = self.acap_dir / path.parent.name / (path.stem + ".acap")
                write_acap(acap, out)
        stats.total_frames = sum(len(acap) for acap in self.acaps)

    # -- Index ------------------------------------------------------------

    def build_index(self) -> AcapIndex:
        started = time.perf_counter()  # reprolint: disable=RL001 -- volatile stage timing
        with get_obs().tracer.span("analysis.index", acaps=len(self.acaps)):
            self.index = AcapIndex.build_from_memory(self.acaps)
        self.stats.index_seconds = time.perf_counter() - started  # reprolint: disable=RL001 -- volatile stage timing
        return self.index

    # -- Analyze + Process ----------------------------------------------------

    def analyze(self) -> ProfileReport:
        """Run every analysis and emit the report tables."""
        if self.index is None:
            self.build_index()
        started = time.perf_counter()  # reprolint: disable=RL001 -- volatile stage timing
        with get_obs().tracer.span("analysis.analyze"):
            report = self._analyze()
        self.stats.analyze_seconds = time.perf_counter() - started  # reprolint: disable=RL001 -- volatile stage timing
        report.stats = self.stats
        self.stats.publish()
        return report

    def _analyze(self) -> ProfileReport:
        records_by_site: Dict[str, List[AcapRecord]] = {}
        all_records: List[AcapRecord] = []
        per_sample_flows = []
        for acap in self.acaps:
            site = Path(acap.source).parent.name or "unknown"
            records_by_site.setdefault(site, []).extend(acap.records)
            all_records.extend(acap.records)
            per_sample_flows.append(classify_flows(acap.records))
        aggregated = aggregate_flows(per_sample_flows)
        counts = flows_per_sample_counts(per_sample_flows)
        report = ProfileReport(
            total_frames=len(all_records),
            sites=sorted(records_by_site),
            ipv6_fraction=ip_version_shares(all_records)["ipv6"],
            jumbo_fraction=jumbo_fraction(all_records),
            flows_per_sample=counts,
            aggregated_flows=aggregated,
        )
        report.tables["frame_sizes_by_site"] = frame_size_table(records_by_site)
        report.tables["frame_sizes_overall"] = overall_frame_size_table(all_records)
        report.tables["header_occurrence"] = header_occurrence_table(all_records)
        report.tables["header_diversity"] = header_diversity_table(records_by_site)
        report.tables["ip_versions"] = ip_version_table(all_records)
        report.tables["flows_per_sample"] = flows_per_sample_table(counts)
        report.tables["aggregated_flow_sizes"] = aggregated_flow_size_table(aggregated)
        report.tables["tcp_flags"] = tcp_flag_table(aggregated)
        return report

    def run(self, pcap_paths: Sequence[Union[str, Path]]) -> ProfileReport:
        """Convenience: digest + index + analyze in one call."""
        self.digest(pcap_paths)
        self.build_index()
        return self.analyze()
