"""The end-to-end analysis pipeline (Fig 9).

``pcaps -> Digest -> acap -> Index -> Analyze -> Process -> CSVs``

:class:`AnalysisPipeline` drives the whole offline phase over the
output directory a Patchwork profile produced (or any set of pcap
files), and returns a :class:`ProfileReport` holding every table the
Process step emits plus the headline statistics the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.acap import AcapFile, AcapRecord, digest_pcap, write_acap
from repro.analysis.analyze import ip_version_shares, jumbo_fraction
from repro.analysis.flows import (
    FlowKey,
    FlowStats,
    aggregate_flows,
    classify_flows,
    flows_per_sample_counts,
)
from repro.analysis.index import AcapIndex
from repro.analysis.report import (
    aggregated_flow_size_table,
    flows_per_sample_table,
    frame_size_table,
    header_diversity_table,
    header_occurrence_table,
    ip_version_table,
    overall_frame_size_table,
    tcp_flag_table,
)
from repro.util.tables import Table


@dataclass
class ProfileReport:
    """Everything the Process step produced for one profile."""

    tables: Dict[str, Table] = field(default_factory=dict)
    total_frames: int = 0
    sites: List[str] = field(default_factory=list)
    ipv6_fraction: float = 0.0
    jumbo_fraction: float = 0.0
    flows_per_sample: List[int] = field(default_factory=list)
    aggregated_flows: Dict[FlowKey, FlowStats] = field(default_factory=dict)

    def write_csvs(self, out_dir: Union[str, Path]) -> List[Path]:
        out_dir = Path(out_dir)
        return [table.to_csv(out_dir / f"{name}.csv")
                for name, table in sorted(self.tables.items())]

    def render(self) -> str:
        parts = [table.render(max_rows=40) for _name, table in sorted(self.tables.items())]
        return "\n\n".join(parts)


class AnalysisPipeline:
    """Digest/Index/Analyze/Process over a set of pcaps."""

    def __init__(self, acap_dir: Optional[Union[str, Path]] = None):
        self.acap_dir = Path(acap_dir) if acap_dir is not None else None
        self.acaps: List[AcapFile] = []
        self.index: Optional[AcapIndex] = None

    # -- Digest ------------------------------------------------------------

    def digest(self, pcap_paths: Sequence[Union[str, Path]]) -> List[AcapFile]:
        """Dissect every pcap into an acap (optionally persisted)."""
        self.acaps = []
        for path in pcap_paths:
            acap = digest_pcap(path)
            self.acaps.append(acap)
            if self.acap_dir is not None:
                name = Path(path)
                out = self.acap_dir / name.parent.name / (name.stem + ".acap")
                write_acap(acap, out)
        return self.acaps

    # -- Index ------------------------------------------------------------

    def build_index(self) -> AcapIndex:
        self.index = AcapIndex.build_from_memory(self.acaps)
        return self.index

    # -- Analyze + Process ----------------------------------------------------

    def analyze(self) -> ProfileReport:
        """Run every analysis and emit the report tables."""
        if self.index is None:
            self.build_index()
        records_by_site: Dict[str, List[AcapRecord]] = {}
        all_records: List[AcapRecord] = []
        per_sample_flows = []
        for acap in self.acaps:
            site = Path(acap.source).parent.name or "unknown"
            records_by_site.setdefault(site, []).extend(acap.records)
            all_records.extend(acap.records)
            per_sample_flows.append(classify_flows(acap.records))
        aggregated = aggregate_flows(per_sample_flows)
        counts = flows_per_sample_counts(per_sample_flows)
        report = ProfileReport(
            total_frames=len(all_records),
            sites=sorted(records_by_site),
            ipv6_fraction=ip_version_shares(all_records)["ipv6"],
            jumbo_fraction=jumbo_fraction(all_records),
            flows_per_sample=counts,
            aggregated_flows=aggregated,
        )
        report.tables["frame_sizes_by_site"] = frame_size_table(records_by_site)
        report.tables["frame_sizes_overall"] = overall_frame_size_table(all_records)
        report.tables["header_occurrence"] = header_occurrence_table(all_records)
        report.tables["header_diversity"] = header_diversity_table(records_by_site)
        report.tables["ip_versions"] = ip_version_table(all_records)
        report.tables["flows_per_sample"] = flows_per_sample_table(counts)
        report.tables["aggregated_flow_sizes"] = aggregated_flow_size_table(aggregated)
        report.tables["tcp_flags"] = tcp_flag_table(aggregated)
        return report

    def run(self, pcap_paths: Sequence[Union[str, Path]]) -> ProfileReport:
        """Convenience: digest + index + analyze in one call."""
        self.digest(pcap_paths)
        self.build_index()
        return self.analyze()
