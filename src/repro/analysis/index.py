"""The Index step.

"Since a single profile often produces dozens of gigabytes of data, an
Index step is carried out to allow subsequent analyses to more quickly
locate the acap files needed."  An :class:`AcapIndex` summarizes each
acap file -- frame count, time range, protocols seen, site (parsed
from Patchwork's output layout) -- and supports the selection queries
the Analyze step uses.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Set, Union

from repro.analysis.acap import AcapFile, read_acap


@dataclass(frozen=True)
class IndexEntry:
    """Summary of one acap file."""

    path: str
    site: str
    frames: int
    start: float
    end: float
    protocols: frozenset

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


def _site_from_path(path: Path) -> str:
    """Patchwork writes captures under ``<out>/<SITE>/...``."""
    if len(path.parts) >= 2:
        return path.parts[-2]
    return ""


class AcapIndex:
    """An index over a set of acap files."""

    def __init__(self, entries: Optional[List[IndexEntry]] = None):
        self.entries: List[IndexEntry] = entries or []

    @classmethod
    def build(cls, acap_paths: Iterable[Union[str, Path]]) -> "AcapIndex":
        """Index acap files on disk (reads each once)."""
        entries = []
        for raw in acap_paths:
            path = Path(raw)
            acap = read_acap(path)
            entries.append(cls.entry_for(acap, path))
        return cls(entries)

    @classmethod
    def build_from_memory(cls, acaps: Iterable[AcapFile]) -> "AcapIndex":
        """Index in-memory acap objects (used by the pipeline)."""
        return cls([cls.entry_for(acap, Path(acap.source)) for acap in acaps])

    @staticmethod
    def entry_for(acap: AcapFile, path: Path) -> IndexEntry:
        # One pass over the records: time range and protocol set together
        # (``acap.time_range`` + ``acap.protocols()`` would walk them
        # three times, which adds up when indexing a whole profile).
        start = end = 0.0
        protocols: Set[str] = set()
        first = True
        for record in acap.records:
            timestamp = record.timestamp
            if first:
                start = end = timestamp
                first = False
            elif timestamp < start:
                start = timestamp
            elif timestamp > end:
                end = timestamp
            protocols.update(record.stack)
        return IndexEntry(
            path=str(path),
            site=_site_from_path(path),
            frames=len(acap),
            start=start,
            end=end,
            protocols=frozenset(protocols),
        )

    # -- queries ------------------------------------------------------------

    def sites(self) -> List[str]:
        return sorted({e.site for e in self.entries if e.site})

    def for_site(self, site: str) -> List[IndexEntry]:
        return [e for e in self.entries if e.site == site]

    def with_protocol(self, protocol: str) -> List[IndexEntry]:
        return [e for e in self.entries if protocol in e.protocols]

    def in_window(self, start: float, end: float) -> List[IndexEntry]:
        """Entries overlapping [start, end]."""
        return [e for e in self.entries if e.end >= start and e.start <= end]

    def total_frames(self) -> int:
        return sum(e.frames for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence ------------------------------------------------------------

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["path", "site", "frames", "start", "end", "protocols"])
            for e in self.entries:
                writer.writerow([
                    e.path, e.site, e.frames, f"{e.start:.6f}", f"{e.end:.6f}",
                    " ".join(sorted(e.protocols)),
                ])
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "AcapIndex":
        entries = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                entries.append(IndexEntry(
                    path=row["path"],
                    site=row["site"],
                    frames=int(row["frames"]),
                    start=float(row["start"]),
                    end=float(row["end"]),
                    protocols=frozenset(row["protocols"].split()),
                ))
        return cls(entries)
