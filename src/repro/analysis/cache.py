"""Content-addressed acap cache.

The paper's offline phase re-ran over a 13-month, testbed-wide corpus
many times as analyses evolved; dissecting the same pcaps again on
every run is pure waste because a pcap, once gathered, never changes.
:class:`AcapCache` memoizes the Digest step: each pcap is keyed by its
**size, mtime, and a hash of its leading bytes**, and the digested acap
is stored under that key.  A re-run with an unchanged corpus skips
dissection entirely (a "warm" run); touching or rewriting a pcap
changes its key, so stale entries are never served.

Cache entries are ordinary acap files (:func:`repro.analysis.acap.write_acap`
format), laid out ``<cache_dir>/<key[:2]>/<key>.acap`` so a directory
never collects millions of siblings.  Corrupt or unreadable entries are
treated as misses and dropped.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional, Union

from repro.analysis.acap import AcapFile, read_acap, write_acap

# How many leading bytes participate in the key.  Covers the pcap
# global header plus the first few record headers -- enough to tell
# apart same-sized files written at the same second.
HEADER_HASH_BYTES = 4096


class AcapCache:
    """Digest-step memoization keyed on pcap identity.

    >>> cache = AcapCache("/tmp/acap-cache")   # doctest: +SKIP
    >>> cache.get("site/sample.pcap")          # doctest: +SKIP
    """

    def __init__(self, cache_dir: Union[str, Path]):
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    # -- keying ------------------------------------------------------------

    @staticmethod
    def key_for(pcap_path: Union[str, Path]) -> str:
        """Content-addressed key: file size + mtime + header hash."""
        path = Path(pcap_path)
        stat = os.stat(path)
        digest = hashlib.sha256()
        digest.update(str(stat.st_size).encode())
        digest.update(str(stat.st_mtime_ns).encode())
        with open(path, "rb") as handle:
            digest.update(handle.read(HEADER_HASH_BYTES))
        return digest.hexdigest()

    def entry_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.acap"

    # -- lookup / store ------------------------------------------------------

    def get(self, pcap_path: Union[str, Path]) -> Optional[AcapFile]:
        """Return the cached digest of ``pcap_path``, or None on a miss.

        The returned acap's ``source`` is rewritten to ``pcap_path`` so
        site attribution follows the *caller's* layout even if the entry
        was stored under a different path to the same content.
        """
        try:
            entry = self.entry_path(self.key_for(pcap_path))
        except OSError:
            self.misses += 1
            return None
        if not entry.exists():
            self.misses += 1
            return None
        try:
            acap = read_acap(entry)
        except (OSError, ValueError):
            # Corrupt entry: drop it and treat as a miss.
            entry.unlink(missing_ok=True)
            self.misses += 1
            return None
        acap.source = str(pcap_path)
        self.hits += 1
        return acap

    def put(self, pcap_path: Union[str, Path], acap: AcapFile) -> Path:
        """Store ``acap`` as the digest of ``pcap_path``."""
        entry = self.entry_path(self.key_for(pcap_path))
        write_acap(acap, entry)
        return entry

    # -- invalidation ------------------------------------------------------

    def invalidate(self, pcap_path: Union[str, Path]) -> bool:
        """Drop the entry for ``pcap_path``.  True if one was removed."""
        try:
            entry = self.entry_path(self.key_for(pcap_path))
        except OSError:
            return False
        if entry.exists():
            entry.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every cache entry.  Returns the number removed."""
        removed = 0
        if not self.cache_dir.exists():
            return 0
        for entry in self.cache_dir.rglob("*.acap"):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.cache_dir.exists():
            return 0
        return sum(1 for _ in self.cache_dir.rglob("*.acap"))
