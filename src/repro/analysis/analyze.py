"""The Analyze step: profile statistics over acap records.

Implements the analyses behind the paper's profile figures:

* frame-size distributions, overall and per site (Section 8.2 "Frame
  sizes", Fig 15);
* header occurrence -- the fraction of frames containing each protocol
  header, where Ethernet exceeds 100 % because pseudowires nest
  Ethernet in Ethernet (Fig 12);
* per-site protocol diversity -- distinct headers observed and the
  deepest header stack (Fig 11).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.analysis.acap import AcapRecord
from repro.traffic.distributions import FrameSizeBins, JUMBO_THRESHOLD, PAPER_FRAME_BINS


def frame_size_distribution(
    records: Iterable[AcapRecord], bins: FrameSizeBins = PAPER_FRAME_BINS
) -> Dict[str, float]:
    """Fraction of frames per size bin, keyed by bin label."""
    sizes = [r.wire_len for r in records]
    shares = bins.shares(sizes)
    return dict(zip(bins.labels(), (float(s) for s in shares)))


def jumbo_fraction(records: Iterable[AcapRecord]) -> float:
    """Fraction of frames at/above the jumbo threshold (1519 B)."""
    sizes = [r.wire_len for r in records]
    if not sizes:
        return 0.0
    return float(np.mean(np.asarray(sizes) >= JUMBO_THRESHOLD))


def header_occurrence(records: Sequence[AcapRecord]) -> Dict[str, float]:
    """Occurrences of each header per frame, as percentages.

    A header appearing twice in one frame (Ethernet inside a
    pseudowire) counts twice, which is why Ethernet can exceed 100 % --
    matching how the paper's Fig 12 is computed.
    """
    if not records:
        return {}
    counts: Counter = Counter()
    for record in records:
        counts.update(record.stack)
    total = len(records)
    return {name: 100.0 * count / total for name, count in sorted(counts.items())}


@dataclass(frozen=True)
class HeaderDiversity:
    """Fig 11's two y-values for one site."""

    site: str
    distinct_headers: int
    max_stack_depth: int
    frames: int


def site_header_diversity(
    records_by_site: Mapping[str, Sequence[AcapRecord]]
) -> List[HeaderDiversity]:
    """Per-site distinct header counts and deepest stacks."""
    result = []
    for site in sorted(records_by_site):
        records = records_by_site[site]
        names = set()
        deepest = 0
        for record in records:
            names.update(record.stack)
            deepest = max(deepest, record.depth)
        result.append(HeaderDiversity(
            site=site,
            distinct_headers=len(names),
            max_stack_depth=deepest,
            frames=len(records),
        ))
    return result


def ip_version_shares(records: Sequence[AcapRecord]) -> Dict[str, float]:
    """Fraction of frames by IP version (finding B6: IPv6 < 2 %)."""
    if not records:
        return {"ipv4": 0.0, "ipv6": 0.0, "non-ip": 0.0}
    total = len(records)
    v4 = sum(1 for r in records if r.ip_version == 4)
    v6 = sum(1 for r in records if r.ip_version == 6)
    return {
        "ipv4": v4 / total,
        "ipv6": v6 / total,
        "non-ip": (total - v4 - v6) / total,
    }


def encapsulation_examples(records: Sequence[AcapRecord], top: int = 5) -> List[Tuple[str, int]]:
    """The most common full header stacks, rendered tshark-style."""
    counts: Counter = Counter("/".join(r.stack) for r in records)
    return counts.most_common(top)
