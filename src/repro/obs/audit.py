"""Audit a run from its journal alone: loss waterfall + scorecard.

``repro audit`` reads a run journal (in memory or from ``journal.jsonl``)
and reconstructs the frame-conservation story without touching pcaps or
live simulator state: a per-stage loss waterfall, a per-site summary,
the congestion-detector scorecard, and a list of conservation
violations.  Because every input is a journal event, the same journal
always renders the same audit byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.journal import RunJournal
from repro.obs.trace import TraceTree
from repro.obs.ledger import (
    CAUSES,
    STAGE_OF_CAUSE,
    CongestionScorecard,
    DetectorScorecard,
    SampleLedger,
    detector_scorecards_from_ledgers,
    scorecard_from_ledgers,
)
from repro.util.tables import Table


@dataclass
class AuditResult:
    """Everything ``repro audit`` derives from one journal."""

    ledgers: List[SampleLedger] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    # Non-fatal findings: dangling spans (opened, never closed -- the
    # crash / salvage-abort signature) and similar.  Warnings never
    # flip `ok`; they flag runs worth a closer look.
    warnings: List[str] = field(default_factory=list)
    scorecards: Dict[str, CongestionScorecard] = field(default_factory=dict)
    scorecard: CongestionScorecard = field(default_factory=CongestionScorecard)
    # Per-detector scorecards (snmp / sketch / inband) over rows that
    # carry streaming-telemetry readings; empty for telemetry-off runs.
    detector_scorecards: Dict[str, DetectorScorecard] = \
        field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def generated(self) -> int:
        return sum(row.generated for row in self.ledgers)

    @property
    def captured(self) -> int:
        return sum(row.captured for row in self.ledgers)

    def waterfall(self) -> Table:
        """Aggregate per-stage loss waterfall across all samples."""
        table = Table(["stage", "cause", "frames", "pct_of_generated",
                       "survivors"], title="Frame loss waterfall")
        generated = self.generated
        survivors = generated

        def pct(count: int) -> str:
            if generated == 0:
                return "0.0000"
            return f"{100.0 * count / generated:.4f}"

        table.add_row(["source", "generated", generated, pct(generated),
                       generated])
        for cause in CAUSES:
            count = sum(row.drops[cause] for row in self.ledgers)
            survivors -= count
            table.add_row([STAGE_OF_CAUSE[cause], cause, count, pct(count),
                           survivors])
        table.add_row(["capture", "captured", self.captured,
                       pct(self.captured), self.captured])
        digested = sum(row.digested for row in self.ledgers
                       if row.digested is not None)
        parse_errors = sum(row.parse_errors for row in self.ledgers)
        table.add_row(["digest", "digested", digested, pct(digested),
                       digested])
        # parse-error is attribution *within* digested (frames whose
        # dissection produced no layers), not an additional loss stage.
        table.add_row(["digest", "parse-error", parse_errors,
                       pct(parse_errors), digested - parse_errors])
        return table

    def per_site(self) -> Table:
        """One summary row per site."""
        table = Table(["site", "samples", "generated", "captured",
                       "loss_pct", "mirror_egress_drops", "violations"],
                      title="Per-site conservation summary")
        sites: Dict[str, List[SampleLedger]] = {}
        for row in self.ledgers:
            sites.setdefault(row.site, []).append(row)
        for site in sorted(sites):
            rows = sites[site]
            generated = sum(r.generated for r in rows)
            captured = sum(r.captured for r in rows)
            lost = generated - captured
            loss_pct = f"{100.0 * lost / generated:.4f}" if generated else "0.0000"
            table.add_row([
                site, len(rows), generated, captured, loss_pct,
                sum(r.drops["mirror-egress"] for r in rows),
                sum(1 for r in rows if not r.ok),
            ])
        return table

    def scorecard_table(self) -> Table:
        """Confusion counts + precision/recall, per site and overall."""
        table = Table(["scope", "samples", "tp", "fp", "fn", "tn",
                       "unanswerable", "precision", "recall"],
                      title="Congestion-detector scorecard "
                            "(verdict vs ground-truth mirror-egress drops)")

        def fmt(value: Optional[float]) -> str:
            return "n/a" if value is None else f"{value:.3f}"

        for scope in sorted(self.scorecards):
            card = self.scorecards[scope]
            table.add_row([scope, card.samples, card.tp, card.fp, card.fn,
                           card.tn, card.unanswerable, fmt(card.precision),
                           fmt(card.recall)])
        card = self.scorecard
        table.add_row(["overall", card.samples, card.tp, card.fp, card.fn,
                       card.tn, card.unanswerable, fmt(card.precision),
                       fmt(card.recall)])
        return table

    def detector_table(self) -> Table:
        """The three-way detector comparison (``repro audit --detectors``)."""
        table = Table(["detector", "samples", "tp", "fp", "fn", "tn",
                       "unanswerable", "precision", "recall", "latency_s",
                       "telemetry_bytes"],
                      title="Detector comparison "
                            "(latency-to-detect vs telemetry bytes)")

        def fmt(value: Optional[float]) -> str:
            return "n/a" if value is None else f"{value:.3f}"

        for name in sorted(self.detector_scorecards):
            card = self.detector_scorecards[name]
            table.add_row([name, card.samples, card.tp, card.fp, card.fn,
                           card.tn, card.unanswerable, fmt(card.precision),
                           fmt(card.recall), fmt(card.latency_to_detect),
                           card.telemetry_bytes])
        return table

    def render(self) -> str:
        """Full text report (deterministic for a given journal)."""
        lines = [
            f"samples audited:  {len(self.ledgers)}",
            f"frames generated: {self.generated}",
            f"frames captured:  {self.captured}",
            f"conservation:     "
            f"{'OK' if self.ok else f'{len(self.violations)} VIOLATION(S)'}",
            "",
            self.waterfall().render(),
            "",
            self.per_site().render(),
            "",
            self.scorecard_table().render(),
        ]
        if self.detector_scorecards:
            lines.append("")
            lines.append(self.detector_table().render())
        if self.violations:
            lines.append("")
            lines.append("Violations:")
            lines.extend(f"  {v}" for v in self.violations)
        if self.warnings:
            lines.append("")
            lines.append("Warnings:")
            lines.extend(f"  {w}" for w in self.warnings)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "samples": len(self.ledgers),
            "generated": self.generated,
            "captured": self.captured,
            "ok": self.ok,
            "violations": list(self.violations),
            "warnings": list(self.warnings),
            "waterfall": self.waterfall().to_dict(),
            "per_site": self.per_site().to_dict(),
            "scorecard": self.scorecard.to_dict(),
            "scorecards": {site: card.to_dict()
                           for site, card in sorted(self.scorecards.items())},
            "detectors": {name: card.to_dict()
                          for name, card in
                          sorted(self.detector_scorecards.items())},
        }


def audit_journal(journal: RunJournal) -> AuditResult:
    """Reconstruct the conservation audit from journal events alone."""
    result = AuditResult()
    by_pcap: Dict[str, List[SampleLedger]] = {}
    for event in journal.of_kind("ledger"):
        row = SampleLedger.from_event(event.data)
        result.ledgers.append(row)
        by_pcap.setdefault(row.pcap, []).append(row)
    for event in journal.of_kind("ledger-digest"):
        rows = by_pcap.get(str(event.data["pcap"]), [])
        for row in rows:
            row.digested = int(event.data["digested"])
            row.truncated = int(event.data["truncated"])
            row.parse_errors = int(event.data["parse_errors"])
    for row in result.ledgers:
        error = row.conservation_error()
        if error != 0:
            result.violations.append(
                f"{row.pcap}: conservation violated "
                f"(generated={row.generated} captured={row.captured} "
                f"drops={row.total_drops} error={error})")
        wiring = row.wiring_error()
        if wiring != 0:
            result.violations.append(
                f"{row.pcap}: delivered/seen mismatch "
                f"(delivered={row.delivered} seen={row.frames_seen})")
        # Digest reconciliation is only unambiguous when exactly one
        # sample produced this pcap name (re-dispatched instances can
        # reuse names; their pcaps get overwritten on disk).
        if (row.digested is not None and len(by_pcap[row.pcap]) == 1
                and row.digested != row.captured):
            result.violations.append(
                f"{row.pcap}: digest mismatch "
                f"(captured={row.captured} digested={row.digested})")
    sites = sorted({row.site for row in result.ledgers})
    for site in sites:
        card = scorecard_from_ledgers(r for r in result.ledgers
                                      if r.site == site)
        result.scorecards[site] = card
        result.scorecard.merge(card)
    if any(row.detectors for row in result.ledgers):
        result.detector_scorecards = detector_scorecards_from_ledgers(
            result.ledgers)
    for span in TraceTree.from_journal(journal).dangling():
        result.warnings.append(
            f"dangling span: {span.name} [{span.span_id}] @{span.site} "
            f"opened t={span.opened_at} never closed")
    return result


def audit_file(path) -> AuditResult:
    """Load a ``journal.jsonl`` and audit it."""
    return audit_journal(RunJournal.read(path))
