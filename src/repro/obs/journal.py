"""The machine-readable run journal.

The paper's R3 requirement -- "Patchwork creates logs at every instance
to capture a variety of network- and host-related statistics that can
help users notice problems" -- is what made the Fig 10 run-outcome
analysis possible.  :class:`RunJournal` is that idea made machine
readable: one append-only JSONL event stream per scenario holding span
open/close events, metric snapshots, fault injections, retry and
circuit-breaker transitions, watchdog verdicts, and every instance-log
line.

Determinism guarantee: with ``deterministic=True`` (the default) and a
deterministic clock (sim time), two runs of the same seeded scenario
produce **byte-identical** journals.  Three rules make that hold:

1. events are stamped from the observability clock, and the timestamp
   is dropped when the clock is wall time;
2. emitters pass wall-time-derived values through ``volatile=...``,
   which a deterministic journal discards;
3. serialization is canonical -- sorted keys, compact separators,
   ``repr``-exact floats.

Crash safety: journals are written atomically (temp file +
``os.replace`` via :mod:`repro.util.atomio`), and :meth:`RunJournal.read`
tolerates a *torn tail* -- a partially written final line, the signature
of a process killed mid-write -- by dropping it and recording what was
dropped in :attr:`RunJournal.torn_tail`.  Corruption anywhere else still
raises.  A campaign writes one journal *segment* per occasion;
``start_seq`` rebases the sequence counter so the concatenation of
segments is byte-identical to one uninterrupted journal.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.util.atomio import FileIO, atomic_write_text


def jsonable(value: Any) -> Any:
    """Coerce a value into something ``json.dumps`` accepts, stably."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) \
            else value
        return [jsonable(v) for v in items]
    return str(value)


@dataclass(frozen=True)
class JournalEvent:
    """One journal line."""

    seq: int
    kind: str
    t: Optional[float]
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"data": self.data, "kind": self.kind,
                   "seq": self.seq, "t": self.t}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "JournalEvent":
        payload = json.loads(line)
        return cls(seq=payload["seq"], kind=payload["kind"],
                   t=payload["t"], data=payload.get("data", {}))


class RunJournal:
    """Append-only, deterministic JSONL event stream for one scenario."""

    def __init__(self, clock=None, deterministic: bool = True,
                 enabled: bool = True, start_seq: int = 0):
        self.clock = clock
        self.deterministic = deterministic
        self.enabled = enabled
        self.events: List[JournalEvent] = []
        self._next_seq = start_seq
        # Set by read() when a partially written final line was dropped:
        # the raw fragment, for diagnostics.  None = file was clean.
        self.torn_tail: Optional[str] = None
        # Populated by merge(): one entry per input segment whose read
        # dropped a torn tail.  Empty = all segments were clean.
        self.merge_warnings: List[str] = []

    @property
    def next_seq(self) -> int:
        """The sequence number the next emitted event will carry."""
        return self._next_seq

    def reseq(self, start_seq: int) -> None:
        """Rebase the sequence counter so events number from ``start_seq``.

        Used by campaign resume: each occasion's journal segment starts
        where the previous segment's sequence numbers ended, so the
        concatenated segments read as one uninterrupted journal.  On a
        journal that already holds events (a merged or re-read segment),
        the existing events are renumbered contiguously -- their order
        is preserved, only the ``seq`` field changes.
        """
        if self.events:
            self.events = [
                replace(event, seq=start_seq + i)
                for i, event in enumerate(self.events)
            ]
        self._next_seq = start_seq + len(self.events)

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, t: Optional[float] = None,
             volatile: Optional[Dict[str, Any]] = None,
             **data: Any) -> Optional[JournalEvent]:
        """Append one event (no-op when the journal is disabled).

        ``t`` defaults to the journal clock's reading; a deterministic
        journal drops timestamps from a non-deterministic (wall) clock.
        ``volatile`` fields are merged into the payload only when the
        journal is *not* deterministic -- use it for wall-time-derived
        values like stage durations.
        """
        if not self.enabled:
            return None
        if t is None and self.clock is not None:
            if self.clock.deterministic or not self.deterministic:
                t = self.clock.now()
        payload = {k: jsonable(v) for k, v in data.items()}
        if volatile and not self.deterministic:
            payload.update({k: jsonable(v) for k, v in volatile.items()})
        event = JournalEvent(seq=self._next_seq, kind=kind, t=t,
                             data=payload)
        self._next_seq += 1
        self.events.append(event)
        return event

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[JournalEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[JournalEvent]:
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- serialization -------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(event.to_json() + "\n" for event in self.events)

    def write(self, path: Union[str, Path], io: Optional[FileIO] = None) -> Path:
        """Persist atomically: readers see the old journal or the whole
        new one, never a torn file (crash-safety invariant)."""
        return atomic_write_text(path, self.to_jsonl(), io=io)

    @classmethod
    def read(cls, path: Union[str, Path],
             strict: bool = False) -> "RunJournal":
        """Load a journal, tolerating a torn (partially written) tail.

        A process killed mid-write leaves a final line that is either
        unterminated or unparseable.  By default that line is dropped
        and remembered in :attr:`torn_tail` (callers warn); with
        ``strict=True``, or when the damage is *not* confined to the
        final line, a ``ValueError`` is raised -- mid-file corruption is
        never silently skipped.
        """
        journal = cls(clock=None, enabled=True)
        text = Path(path).read_text()
        terminated = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for i, line in enumerate(lines):
            final = i == len(lines) - 1
            try:
                event = JournalEvent.from_json(line)
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if final and not strict:
                    journal.torn_tail = line[:200]
                    break
                raise ValueError(
                    f"{path}: corrupt journal line {i + 1}: {exc}") from exc
            if final and not terminated:
                # Parsed, but the write never finished (no newline):
                # the event is not trustworthy as committed state.
                if strict:
                    raise ValueError(f"{path}: unterminated final line")
                journal.torn_tail = line[:200]
                break
            journal.events.append(event)
        if journal.events:
            journal._next_seq = journal.events[-1].seq + 1
        return journal

    # -- merging -------------------------------------------------------------

    #: Event kinds carrying span identities that merge() must qualify.
    SPAN_KINDS = ("span-open", "span-close")

    @staticmethod
    def _qualify_span_event(event: "JournalEvent",
                            site: str) -> "JournalEvent":
        """Namespace a span event's bare ids under the segment's site.

        Each shard tracer numbers spans from 0, so two segments' span
        ``0`` would collide after concatenation and cross-link their
        trees.  Spans journaled under a
        :class:`~repro.obs.tracing.TraceContext` are already qualified
        (string ids) and pass through untouched -- this is the backstop
        for un-namespaced segments, rebasing span ids on the way into
        the merge exactly as ``seq`` is rebased.
        """
        if event.kind not in RunJournal.SPAN_KINDS:
            return event
        span = event.data.get("span")
        parent = event.data.get("parent")
        bare_span = isinstance(span, int) and not isinstance(span, bool)
        bare_parent = isinstance(parent, int) and not isinstance(parent, bool)
        if not bare_span and not bare_parent:
            return event
        data = dict(event.data)
        if bare_span:
            data["span"] = f"{site}/{span}"
        if bare_parent:
            data["parent"] = f"{site}/{parent}"
        return replace(event, data=data)

    @classmethod
    def merge(cls, segments, start_seq: int = 0) -> "RunJournal":
        """Deterministically interleave per-site journal segments.

        ``segments`` is a sequence of ``(site, RunJournal)`` pairs, one
        per shard.  Events are ordered by ``(sim_time, site, seq)``:
        untimed events inherit the sim time of the last timestamped
        event before them in their own segment (so a segment's internal
        order is never disturbed), ties across sites break on the site
        label, and ties within a site on the original sequence number.
        The merged events are renumbered contiguously from
        ``start_seq``, exactly as a serial run would have numbered them.
        Span identities are rebased the same way: a segment's bare
        (process-local) span ids are qualified as ``"<site>/<n>"`` so no
        two segments' spans collide in the merged trace tree.

        A segment read back with a torn tail (crash signature) is still
        merged, but the loss is surfaced in :attr:`merge_warnings` --
        never silently swallowed.
        """
        merged = cls(clock=None, enabled=True, start_seq=start_seq)
        keyed = []
        for site, segment in segments:
            if getattr(segment, "torn_tail", None) is not None:
                merged.merge_warnings.append(
                    f"segment {site!r}: torn tail dropped during read: "
                    f"{segment.torn_tail}")
            last_t = float("-inf")
            for event in segment.events:
                if event.t is not None:
                    last_t = event.t
                event = cls._qualify_span_event(event, str(site))
                keyed.append(((last_t, str(site), event.seq), event))
        keyed.sort(key=lambda pair: pair[0])
        merged.events = [
            replace(event, seq=start_seq + i)
            for i, (_, event) in enumerate(keyed)
        ]
        merged._next_seq = start_seq + len(merged.events)
        return merged


def diff_journals(a: RunJournal, b: RunJournal,
                  max_differences: int = 10) -> List[str]:
    """Human-readable differences between two journals (empty = same)."""
    differences: List[str] = []
    if len(a) != len(b):
        differences.append(f"length: {len(a)} events vs {len(b)} events")
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if len(differences) >= max_differences:
            differences.append("... (further differences suppressed)")
            break
        la, lb = ea.to_json(), eb.to_json()
        if la != lb:
            differences.append(f"event {i}: {la} != {lb}")
    return differences
