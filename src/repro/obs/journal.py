"""The machine-readable run journal.

The paper's R3 requirement -- "Patchwork creates logs at every instance
to capture a variety of network- and host-related statistics that can
help users notice problems" -- is what made the Fig 10 run-outcome
analysis possible.  :class:`RunJournal` is that idea made machine
readable: one append-only JSONL event stream per scenario holding span
open/close events, metric snapshots, fault injections, retry and
circuit-breaker transitions, watchdog verdicts, and every instance-log
line.

Determinism guarantee: with ``deterministic=True`` (the default) and a
deterministic clock (sim time), two runs of the same seeded scenario
produce **byte-identical** journals.  Three rules make that hold:

1. events are stamped from the observability clock, and the timestamp
   is dropped when the clock is wall time;
2. emitters pass wall-time-derived values through ``volatile=...``,
   which a deterministic journal discards;
3. serialization is canonical -- sorted keys, compact separators,
   ``repr``-exact floats.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union


def jsonable(value: Any) -> Any:
    """Coerce a value into something ``json.dumps`` accepts, stably."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) \
            else value
        return [jsonable(v) for v in items]
    return str(value)


@dataclass(frozen=True)
class JournalEvent:
    """One journal line."""

    seq: int
    kind: str
    t: Optional[float]
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"data": self.data, "kind": self.kind,
                   "seq": self.seq, "t": self.t}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "JournalEvent":
        payload = json.loads(line)
        return cls(seq=payload["seq"], kind=payload["kind"],
                   t=payload["t"], data=payload.get("data", {}))


class RunJournal:
    """Append-only, deterministic JSONL event stream for one scenario."""

    def __init__(self, clock=None, deterministic: bool = True,
                 enabled: bool = True):
        self.clock = clock
        self.deterministic = deterministic
        self.enabled = enabled
        self.events: List[JournalEvent] = []

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, t: Optional[float] = None,
             volatile: Optional[Dict[str, Any]] = None,
             **data: Any) -> Optional[JournalEvent]:
        """Append one event (no-op when the journal is disabled).

        ``t`` defaults to the journal clock's reading; a deterministic
        journal drops timestamps from a non-deterministic (wall) clock.
        ``volatile`` fields are merged into the payload only when the
        journal is *not* deterministic -- use it for wall-time-derived
        values like stage durations.
        """
        if not self.enabled:
            return None
        if t is None and self.clock is not None:
            if self.clock.deterministic or not self.deterministic:
                t = self.clock.now()
        payload = {k: jsonable(v) for k, v in data.items()}
        if volatile and not self.deterministic:
            payload.update({k: jsonable(v) for k, v in volatile.items()})
        event = JournalEvent(seq=len(self.events), kind=kind, t=t,
                             data=payload)
        self.events.append(event)
        return event

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[JournalEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[JournalEvent]:
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- serialization -------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(event.to_json() + "\n" for event in self.events)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunJournal":
        journal = cls(clock=None, enabled=True)
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    journal.events.append(JournalEvent.from_json(line))
        return journal


def diff_journals(a: RunJournal, b: RunJournal,
                  max_differences: int = 10) -> List[str]:
    """Human-readable differences between two journals (empty = same)."""
    differences: List[str] = []
    if len(a) != len(b):
        differences.append(f"length: {len(a)} events vs {len(b)} events")
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if len(differences) >= max_differences:
            differences.append("... (further differences suppressed)")
            break
        la, lb = ea.to_json(), eb.to_json()
        if la != lb:
            differences.append(f"event {i}: {la} != {lb}")
    return differences
