"""Metric exporters: Prometheus text format and JSONL.

Both are pure functions of a :class:`~repro.obs.registry.MetricsRegistry`
snapshot, and both round-trip: the matching ``parse_*`` helper recovers
the exported values, which is how tests prove nothing is lost on the way
out.  Prometheus metric names are sanitized (dots become underscores);
the JSONL form keeps the registry's dotted names verbatim.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles rendered for every histogram in the Prometheus export.
QUANTILES = (0.5, 0.95, 0.99)


def histogram_quantile(hist: Histogram, q: float) -> Optional[float]:
    """Estimate the q-quantile of a fixed-bucket histogram.

    Linear interpolation within the containing bucket, exactly like
    PromQL's ``histogram_quantile``: the first bucket interpolates from
    zero, and a quantile landing in the ``+Inf`` bucket reports the
    highest finite bound (the estimate cannot exceed what the buckets
    resolve).  Returns ``None`` for an empty histogram.
    """
    if hist.count == 0 or not (0.0 <= q <= 1.0):
        return None
    target = q * hist.count
    cumulative = 0
    for i, bucket_count in enumerate(hist.bucket_counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target and bucket_count > 0:
            if i == len(hist.bounds):
                return float(hist.bounds[-1])
            lower = float(hist.bounds[i - 1]) if i > 0 else 0.0
            upper = float(hist.bounds[i])
            return lower + (upper - lower) * (target - previous) / bucket_count
    return float(hist.bounds[-1])


def prometheus_name(name: str) -> str:
    """Sanitize a dotted instrument name for Prometheus exposition."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def to_prometheus(registry: MetricsRegistry,
                  include_volatile: bool = True) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for inst in registry.instruments(include_volatile=include_volatile):
        name = prometheus_name(inst.name)
        if inst.help:
            lines.append(f"# HELP {name} {inst.help}")
        lines.append(f"# TYPE {name} {inst.kind}")
        if isinstance(inst, (Counter, Gauge)):
            lines.append(f"{name} {_fmt(inst.value)}")
        elif isinstance(inst, Histogram):
            cumulative = 0
            for bound, count in zip(inst.bounds, inst.bucket_counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            cumulative += inst.bucket_counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(inst.total)}")
            lines.append(f"{name}_count {inst.count}")
            for q in QUANTILES:
                value = histogram_quantile(inst, q)
                if value is not None:
                    lines.append(
                        f'{name}{{quantile="{_fmt(q)}"}} {_fmt(value)}')
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse Prometheus text back to ``{sample_name: value}``.

    Histogram bucket samples keep their ``le`` label inline, e.g.
    ``digest_frames_bucket{le="+Inf"}``.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


def to_metrics_jsonl(registry: MetricsRegistry,
                     include_volatile: bool = True) -> str:
    """One canonical JSON object per instrument, one per line."""
    lines = []
    for inst in registry.instruments(include_volatile=include_volatile):
        payload = {"kind": inst.kind, "name": inst.name, **inst.snapshot()}
        lines.append(json.dumps(payload, sort_keys=True,
                                separators=(",", ":")))
    return "".join(line + "\n" for line in lines)


def parse_metrics_jsonl(text: str) -> Dict[str, Dict]:
    """Parse :func:`to_metrics_jsonl` output back to ``{name: values}``."""
    parsed: Dict[str, Dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        name = payload.pop("name")
        parsed[name] = payload
    return parsed


def registry_from_snapshot(snapshot: Dict[str, Dict]) -> MetricsRegistry:
    """Rebuild a registry from a :meth:`MetricsRegistry.snapshot` dict.

    This is how ``repro obs export`` re-renders the metrics snapshot a
    journal carries without the original process.  Help strings are not
    part of snapshots, so the rebuilt instruments have none.
    """
    registry = MetricsRegistry()
    for name, payload in snapshot.items():
        kind = payload.get("kind")
        if kind == "counter":
            registry.counter(name).inc(payload["value"])
        elif kind == "gauge":
            registry.gauge(name).set(payload["value"])
        elif kind == "histogram":
            # A snapshot that went through the journal's canonical JSON
            # comes back with *lexicographically* sorted bucket keys
            # ("+Inf" before "120.0" before "30.0"), so recover numeric
            # bound order instead of trusting dict order.
            items = sorted(payload["buckets"].items(),
                           key=lambda kv: float("inf") if kv[0] == "+Inf"
                           else float(kv[0]))
            hist = registry.histogram(
                name, buckets=[float(k) for k, _ in items[:-1]])
            hist.bucket_counts = [int(v) for _, v in items]
            hist.count = payload["count"]
            hist.total = payload["sum"]
        else:
            raise ValueError(f"{name}: unknown instrument kind {kind!r}")
    return registry


def _fmt(value) -> str:
    """Canonical number formatting (ints stay ints)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
