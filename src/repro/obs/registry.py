"""The process-wide metrics registry.

Counters, gauges, and fixed-bucket histograms, designed so that
*pre-bound instrument handles* are cheap enough for per-frame hot paths:

* ``registry.counter(name)`` is called **once**, at component
  construction (or once per pcap in the digest), never per event.  The
  returned handle's ``inc()`` is a single attribute add -- no dict
  lookup, no string formatting, no lock (the simulation is
  single-threaded per process).
* A *disabled* registry hands out shared null instruments whose
  ``enabled`` flag lets hot loops skip instrumentation entirely, so the
  observability layer costs ~nothing when off.
* Instruments carry a ``volatile`` flag: values derived from wall time
  (stage durations, throughput) are volatile and are excluded from
  deterministic snapshots, which is what keeps the
  :class:`~repro.obs.journal.RunJournal` byte-identical under a fixed
  seed.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "volatile", "value")

    kind = "counter"
    enabled = True

    def __init__(self, name: str, help: str = "", volatile: bool = False):
        self.name = name
        self.help = help
        self.volatile = volatile
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> Dict[str, Number]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "volatile", "value")

    kind = "gauge"
    enabled = True

    def __init__(self, name: str, help: str = "", volatile: bool = False):
        self.name = name
        self.help = help
        self.volatile = volatile
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Dict[str, Number]:
        return {"value": self.value}


class Histogram:
    """A fixed-bucket histogram (cumulative-style, like Prometheus).

    Bucket bounds are fixed at creation; ``observe`` is one C-level
    bisect plus a list-index increment, cheap enough for per-sample use
    (per-frame call sites should batch locally and flush, see
    :func:`repro.analysis.acap.digest_pcap`).
    """

    __slots__ = ("name", "help", "volatile", "bounds", "bucket_counts",
                 "count", "total")

    kind = "histogram"
    enabled = True

    DEFAULT_BOUNDS = (0.005, 0.05, 0.5, 5.0, 50.0, 500.0)

    def __init__(self, name: str, buckets: Optional[Sequence[Number]] = None,
                 help: str = "", volatile: bool = False):
        bounds = tuple(buckets if buckets is not None else self.DEFAULT_BOUNDS)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.volatile = volatile
        self.bounds: Tuple[Number, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)  # +inf tail
        self.count = 0
        self.total: Number = 0

    def observe(self, value: Number) -> None:
        # bisect_left gives Prometheus `le` semantics: a value equal to
        # a bound lands in that bound's bucket.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                ("+Inf" if i == len(self.bounds) else str(self.bounds[i])): n
                for i, n in enumerate(self.bucket_counts)
            },
        }


class _NullInstrument:
    """Shared no-op handle a disabled registry hands out.

    ``enabled`` is False so hot paths can skip instrumentation with one
    attribute check; every mutator is a no-op.
    """

    __slots__ = ()

    enabled = False
    volatile = False
    name = "null"
    help = ""
    value = 0
    count = 0
    total = 0

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def snapshot(self) -> Dict[str, Number]:
        return {"value": 0}


NULL_INSTRUMENT = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """Process-wide instrument namespace.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call binds the handle, later calls with the same name return it
    (re-declaring under a different kind raises).  A disabled registry
    returns :data:`NULL_INSTRUMENT` and registers nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[str, Instrument] = {}

    # -- declaration ---------------------------------------------------------

    def counter(self, name: str, help: str = "", volatile: bool = False):
        return self._declare(Counter, name, help=help, volatile=volatile)

    def gauge(self, name: str, help: str = "", volatile: bool = False):
        return self._declare(Gauge, name, help=help, volatile=volatile)

    def histogram(self, name: str, buckets: Optional[Sequence[Number]] = None,
                  help: str = "", volatile: bool = False):
        if not self.enabled:
            return NULL_INSTRUMENT
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(f"{name} already declared as {existing.kind}")
            return existing
        made = Histogram(name, buckets, help=help, volatile=volatile)
        self._instruments[name] = made
        return made

    def _declare(self, cls, name: str, help: str, volatile: bool):
        if not self.enabled:
            return NULL_INSTRUMENT
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(f"{name} already declared as {existing.kind}")
            return existing
        made = cls(name, help=help, volatile=volatile)
        self._instruments[name] = made
        return made

    # -- queries -------------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def instruments(self, include_volatile: bool = True) -> List[Instrument]:
        return [self._instruments[n] for n in sorted(self._instruments)
                if include_volatile or not self._instruments[n].volatile]

    def snapshot(self, include_volatile: bool = True) -> Dict[str, Dict]:
        """A stable (name-sorted) value dump of every instrument.

        ``include_volatile=False`` drops wall-time-derived instruments,
        giving a snapshot that is deterministic under a fixed seed.
        """
        return {
            inst.name: {"kind": inst.kind, **inst.snapshot()}
            for inst in self.instruments(include_volatile=include_volatile)
        }

    def reset(self) -> None:
        """Zero every instrument (keeps declarations and handles alive)."""
        for inst in self._instruments.values():
            if isinstance(inst, Histogram):
                inst.bucket_counts = [0] * (len(inst.bounds) + 1)
                inst.count = 0
                inst.total = 0
            else:
                inst.value = 0
