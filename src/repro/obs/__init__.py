"""``repro.obs`` -- the unified observability subsystem.

The paper's R3 requirement ("Patchwork creates logs at every instance to
capture a variety of network- and host-related statistics that can help
users notice problems", Section 6.2.2) is what made the Fig 10
run-outcome analysis and the 13-month profile possible.  This package is
the reproduction's single telemetry spine behind that requirement:

* :mod:`repro.obs.registry` -- a process-wide :class:`MetricsRegistry`
  of counters, gauges, and fixed-bucket histograms with pre-bound
  handles cheap enough for per-frame hot paths;
* :mod:`repro.obs.tracing` -- sim-time-aware spans forming a trace tree
  per run/site/instance;
* :mod:`repro.obs.journal` -- the :class:`RunJournal`, an append-only
  JSONL event stream (span open/close, metric snapshots, fault
  injections, retry/breaker transitions, watchdog verdicts, instance-log
  lines) that is byte-identical across runs under a fixed seed;
* :mod:`repro.obs.export` -- Prometheus-text and JSONL exporters.

Usage: observability is *disabled by default* and costs ~nothing until
:func:`configure` installs a live :class:`Observability` as the process
default.  Components bind their instruments from :func:`get_obs` at
construction, so configure **before** building the coordinator et al.::

    obs = configure(sim=federation.sim)          # sim-time clock
    bundle = Coordinator(api, config).run_profile()
    obs.journal.write(out / "journal.jsonl")
    print(to_prometheus(obs.registry))

or scoped (restores the previous default afterwards)::

    with scoped(Observability.create(sim=federation.sim)) as obs:
        ...
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.clock import SimClock, WallClock
from repro.obs.export import (
    histogram_quantile,
    parse_metrics_jsonl,
    parse_prometheus,
    prometheus_name,
    registry_from_snapshot,
    to_metrics_jsonl,
    to_prometheus,
)
from repro.obs.journal import JournalEvent, RunJournal, diff_journals, jsonable
from repro.obs.registry import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    TraceSpan,
    TraceTree,
    chrome_trace_json,
    critical_path_summary,
    to_chrome_trace,
    to_folded_stacks,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    qualify_span_id,
    trace_tree,
)


class Observability:
    """One registry + journal + tracer sharing one clock."""

    def __init__(self, registry: MetricsRegistry, journal: RunJournal,
                 tracer: Tracer, clock):
        self.registry = registry
        self.journal = journal
        self.tracer = tracer
        self.clock = clock

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    @classmethod
    def create(cls, sim=None, deterministic: bool = True,
               enabled: bool = True) -> "Observability":
        """Build a live (or inert) observability context.

        ``sim`` selects the clock: a simulator gives deterministic
        sim-time stamps, ``None`` falls back to wall time (whose stamps
        a deterministic journal omits).
        """
        clock = SimClock(sim) if sim is not None else WallClock()
        registry = MetricsRegistry(enabled=enabled)
        journal = RunJournal(clock=clock, deterministic=deterministic,
                             enabled=enabled)
        tracer = Tracer(journal, clock, enabled=enabled)
        return cls(registry, journal, tracer, clock)

    @classmethod
    def disabled(cls) -> "Observability":
        return cls.create(enabled=False)

    def snapshot_to_journal(self, kind: str = "metrics") -> None:
        """Emit a registry snapshot into the journal.

        A deterministic journal gets the volatile-free snapshot, so the
        event is byte-stable under a fixed seed.
        """
        include_volatile = not self.journal.deterministic
        self.journal.emit(
            kind, metrics=self.registry.snapshot(
                include_volatile=include_volatile))


_DEFAULT = Observability.disabled()
_OBS = _DEFAULT


def get_obs() -> Observability:
    """The process-default observability context (inert until configured)."""
    return _OBS


def set_obs(obs: Optional[Observability]) -> Observability:
    """Install (or, with ``None``, clear) the process default."""
    global _OBS
    _OBS = obs if obs is not None else _DEFAULT
    return _OBS


def configure(sim=None, deterministic: bool = True,
              enabled: bool = True) -> Observability:
    """Create a live context and install it as the process default."""
    return set_obs(Observability.create(sim=sim, deterministic=deterministic,
                                        enabled=enabled))


@contextmanager
def scoped(obs: Observability) -> Iterator[Observability]:
    """Temporarily install ``obs`` as the process default."""
    previous = get_obs()
    set_obs(obs)
    try:
        yield obs
    finally:
        set_obs(previous)


# Imported last: repro.obs.ledger/audit call get_obs() lazily, so the
# package core must be fully defined before they load.
from repro.obs.audit import AuditResult, audit_file, audit_journal  # noqa: E402
from repro.obs.ledger import (  # noqa: E402
    CAUSES,
    STAGE_OF_CAUSE,
    CongestionScorecard,
    LedgerRecorder,
    SampleLedger,
    attach_digests,
    ledgers_of_bundle,
    scorecard_from_ledgers,
)

__all__ = [
    "AuditResult",
    "CAUSES",
    "CongestionScorecard",
    "Counter",
    "LedgerRecorder",
    "STAGE_OF_CAUSE",
    "SampleLedger",
    "attach_digests",
    "audit_file",
    "audit_journal",
    "ledgers_of_bundle",
    "scorecard_from_ledgers",
    "Gauge",
    "Histogram",
    "JournalEvent",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "Observability",
    "RunJournal",
    "SimClock",
    "Span",
    "TraceContext",
    "TraceSpan",
    "TraceTree",
    "Tracer",
    "WallClock",
    "chrome_trace_json",
    "configure",
    "critical_path_summary",
    "diff_journals",
    "get_obs",
    "histogram_quantile",
    "jsonable",
    "parse_metrics_jsonl",
    "parse_prometheus",
    "prometheus_name",
    "qualify_span_id",
    "registry_from_snapshot",
    "scoped",
    "set_obs",
    "to_chrome_trace",
    "to_folded_stacks",
    "to_metrics_jsonl",
    "to_prometheus",
    "trace_tree",
]
