"""Per-sample frame-conservation ledger.

The simulator, unlike the real testbed, knows the ground truth at every
hop of the mirror path.  This module reconciles that truth into one row
per (instance, cycle, run, sample, slot): every frame offered to the
mirrored port during the capture window is accounted for exactly once,
either as captured or as a drop attributed to a stage/cause pair::

    generated == captured + sum(drops[cause] for cause in CAUSES)

where ``generated = offered_in_window + carry_in`` (clones already in
flight toward the NIC when the window opened).  The identity is a real
cross-layer check, not bookkeeping: the left side comes from switch
channel counters, the right side from the capture model's own counters,
and any wiring bug between them (a lost subscription, a miscounted
drop) breaks it.

Cause taxonomy
--------------
``oversize``             frame exceeded the mirrored channel's MTU and
                         was never seen by the mirror tap.
``fault-window``         the mirror session was absent for part of the
                         window (fault-injected drop), or the capture was
                         salvaged mid-window -- frames lost to the fault.
``mirror-egress``        tail-dropped by the mirror destination port's
                         egress queue: the paper's Section 6.2.2 overload
                         hazard, and the ground truth the congestion
                         scorecard judges ``CongestionVerdict`` against.
``in-flight``            cloned but still queued/serializing/propagating
                         when the capture stopped (not a loss; carried
                         out of the window).
``nic-ring``             DPDK rx-ring overflow in the capture host.
``writer-backpressure``  tcpdump kernel-buffer overflow.
``filtered``             intentionally removed by the FPGA filter or
                         sampler (accounted, not a loss).

Source-port queue drops ("link queue") do NOT appear in the identity:
the mirror tap observes frames *before* the mirrored channel's queue
(like a span configured upstream of an egress queue), so a source-side
tail drop does not reduce the clone population.  They are carried as
context fields (``source_rx_drops``/``source_tx_drops``) instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Ordered as frames traverse the path; the audit waterfall renders rows
# in this order.
CAUSES: Tuple[str, ...] = (
    "oversize",
    "fault-window",
    "mirror-egress",
    "in-flight",
    "nic-ring",
    "writer-backpressure",
    "filtered",
)

STAGE_OF_CAUSE: Dict[str, str] = {
    "oversize": "mirror-source",
    "fault-window": "mirror-source",
    "mirror-egress": "mirror-egress",
    "in-flight": "link",
    "nic-ring": "capture",
    "writer-backpressure": "capture",
    "filtered": "capture",
    "parse-error": "digest",
}


def _empty_drops() -> Dict[str, int]:
    return {cause: 0 for cause in CAUSES}


@dataclass
class SampleLedger:
    """One reconciled conservation row for a single capture sample."""

    site: str = ""
    instance: str = ""
    cycle: int = 0
    run: int = 0
    sample: int = 0
    slot: int = 0
    mirrored_port: str = ""
    dest_port: str = ""
    # Site-qualified pcap *name* ("STAR/c0_r0_s0_slot0_p3.pcap"), never a
    # path, so journal rows stay byte-identical across output dirs.
    pcap: str = ""
    method: str = ""
    directions: Tuple[str, ...] = ("rx", "tx")
    start: float = 0.0
    end: float = 0.0
    aborted: bool = False

    # Populations (frames).
    offered: int = 0     # offered to the mirrored channels in the window
    carry_in: int = 0    # clones in flight toward the NIC at window open
    generated: int = 0   # offered + carry_in
    cloned: int = 0      # accepted clone offers at the mirror dest port
    delivered: int = 0   # clones handed to the NIC in the window
    frames_seen: int = 0  # what the capture session says it saw
    captured: int = 0    # written to the pcap

    drops: Dict[str, int] = field(default_factory=_empty_drops)

    # Context (not part of the identity; see module docstring).
    source_rx_drops: int = 0
    source_tx_drops: int = 0

    # Scorecard inputs: the SNMP-derived verdict for this sample (None
    # when unanswerable or the sample was salvaged before detection).
    verdict_overloaded: Optional[bool] = None

    # Streaming-telemetry detector readings, keyed by detector name
    # ("snmp" / "sketch" / "inband"), each a dict with "overloaded",
    # "latency" (seconds from window start; None unless overloaded) and
    # "bytes" (telemetry cost charged to this sample).  Empty when the
    # run had streaming telemetry disabled -- and then omitted from the
    # journal event entirely, keeping telemetry-off journals
    # byte-identical to pre-telemetry builds.
    detectors: Dict[str, Dict[str, object]] = field(default_factory=dict)

    # Digest reconciliation, filled in by :func:`attach_digests`.
    digested: Optional[int] = None
    truncated: int = 0
    parse_errors: int = 0

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    def conservation_error(self) -> int:
        """``generated - captured - sum(drops)``; zero iff conserved."""
        return self.generated - self.captured - self.total_drops

    def wiring_error(self) -> int:
        """Delivered-to-NIC vs seen-by-capture mismatch; zero iff the
        ledger window and the capture subscription were synchronous."""
        return self.delivered - self.frames_seen

    @property
    def ok(self) -> bool:
        return self.conservation_error() == 0 and self.wiring_error() == 0

    @property
    def mirror_overloaded_truth(self) -> bool:
        """Ground truth the scorecard judges the detector against."""
        return self.drops["mirror-egress"] > 0

    def to_event(self) -> Dict[str, object]:
        """Flatten into journal-event data (canonical-JSON friendly)."""
        event: Dict[str, object] = {
            "site": self.site,
            "instance": self.instance,
            "cycle": self.cycle,
            "run": self.run,
            "sample": self.sample,
            "slot": self.slot,
            "mirrored_port": self.mirrored_port,
            "dest_port": self.dest_port,
            "pcap": self.pcap,
            "method": self.method,
            "directions": sorted(self.directions),
            "start": self.start,
            "end": self.end,
            "aborted": self.aborted,
            "offered": self.offered,
            "carry_in": self.carry_in,
            "generated": self.generated,
            "cloned": self.cloned,
            "delivered": self.delivered,
            "frames_seen": self.frames_seen,
            "captured": self.captured,
            "drops": dict(self.drops),
            "source_rx_drops": self.source_rx_drops,
            "source_tx_drops": self.source_tx_drops,
            "verdict": self.verdict_overloaded,
            "conserved": self.conservation_error() == 0,
        }
        if self.detectors:
            event["detectors"] = {name: dict(reading)
                                  for name, reading in
                                  sorted(self.detectors.items())}
        return event

    @classmethod
    def from_event(cls, data: Dict[str, object]) -> "SampleLedger":
        """Rebuild a row from journal-event data (``repro audit``)."""
        drops = _empty_drops()
        drops.update({k: int(v) for k, v in dict(data["drops"]).items()})
        return cls(
            site=str(data["site"]),
            instance=str(data.get("instance", "")),
            cycle=int(data["cycle"]),
            run=int(data["run"]),
            sample=int(data["sample"]),
            slot=int(data["slot"]),
            mirrored_port=str(data["mirrored_port"]),
            dest_port=str(data["dest_port"]),
            pcap=str(data["pcap"]),
            method=str(data["method"]),
            directions=tuple(data.get("directions", ("rx", "tx"))),
            start=float(data["start"]),
            end=float(data["end"]),
            aborted=bool(data.get("aborted", False)),
            offered=int(data["offered"]),
            carry_in=int(data["carry_in"]),
            generated=int(data["generated"]),
            cloned=int(data["cloned"]),
            delivered=int(data["delivered"]),
            frames_seen=int(data["frames_seen"]),
            captured=int(data["captured"]),
            drops=drops,
            source_rx_drops=int(data.get("source_rx_drops", 0)),
            source_tx_drops=int(data.get("source_tx_drops", 0)),
            verdict_overloaded=data.get("verdict"),
            detectors={str(name): dict(reading) for name, reading in
                       dict(data.get("detectors", {})).items()},
        )


class _ChannelSnapshot:
    """Offered/dropped/delivered/oversize counters at one instant."""

    __slots__ = ("offered", "dropped", "delivered", "oversize")

    def __init__(self, channel) -> None:
        stats = channel.stats
        self.offered = stats.offered_frames
        self.dropped = stats.dropped_frames
        self.delivered = stats.delivered_frames
        self.oversize = channel.oversize_drops


class OpenSampleLedger:
    """A ledger window in progress; created by :class:`LedgerRecorder`."""

    def __init__(self, recorder: "LedgerRecorder", meta: Dict[str, object],
                 source_channels: Sequence, dest_tx) -> None:
        self._recorder = recorder
        self._meta = meta
        self._source_channels = tuple(source_channels)
        self._dest_tx = dest_tx
        self._source_snaps = tuple(_ChannelSnapshot(c)
                                   for c in self._source_channels)
        self._dest_snap = _ChannelSnapshot(dest_tx)
        self._start = recorder.sim.now
        self._closed = False

    def close(self, capture_stats, verdict: Optional[bool] = None,
              aborted: bool = False,
              detectors: Optional[Dict[str, Dict[str, object]]] = None,
              ) -> SampleLedger:
        """Reconcile the window against the final capture statistics.

        ``aborted`` marks a salvaged (fault-interrupted) sample: clones
        still in flight are charged to ``fault-window`` rather than
        ``in-flight``, since the capture will never collect them.
        ``detectors`` carries the streaming-telemetry readings (name ->
        overloaded/latency/bytes dict) when that subsystem is enabled.
        """
        if self._closed:
            raise RuntimeError("ledger window already closed")
        self._closed = True

        offered = oversize = src_drops_rx = src_drops_tx = 0
        for channel, snap in zip(self._source_channels, self._source_snaps):
            stats = channel.stats
            offered += stats.offered_frames - snap.offered
            oversize += channel.oversize_drops - snap.oversize
            queue_drops = (stats.dropped_frames - snap.dropped) - \
                (channel.oversize_drops - snap.oversize)
            if channel.name.endswith("/rx"):
                src_drops_rx += queue_drops
            else:
                src_drops_tx += queue_drops

        dest = self._dest_tx.stats
        snap = self._dest_snap
        cloned = dest.offered_frames - snap.offered
        egress_drops = dest.dropped_frames - snap.dropped
        delivered = dest.delivered_frames - snap.delivered
        carry_in = snap.offered - snap.dropped - snap.delivered
        carry_out = self._dest_tx.in_flight_frames
        # Frames offered to the mirrored port while the mirror session
        # was absent (fault-injected drop) were never cloned at all.
        missing = offered - oversize - cloned

        drops = _empty_drops()
        drops["oversize"] = oversize
        drops["mirror-egress"] = egress_drops
        drops["nic-ring"] = capture_stats.ring_drops
        drops["writer-backpressure"] = capture_stats.writer_drops
        drops["filtered"] = capture_stats.frames_filtered
        if aborted:
            drops["fault-window"] = missing + carry_out
        else:
            drops["fault-window"] = missing
            drops["in-flight"] = carry_out

        row = SampleLedger(
            start=self._start,
            end=self._recorder.sim.now,
            aborted=aborted,
            offered=offered,
            carry_in=carry_in,
            generated=offered + carry_in,
            cloned=cloned,
            delivered=delivered,
            frames_seen=capture_stats.frames_seen,
            captured=capture_stats.frames_captured,
            drops=drops,
            source_rx_drops=src_drops_rx,
            source_tx_drops=src_drops_tx,
            verdict_overloaded=verdict,
            detectors=dict(detectors) if detectors else {},
            **self._meta,
        )
        self._recorder.publish(row)
        return row


class LedgerRecorder:
    """Opens/closes conservation windows against one site's switch."""

    def __init__(self, switch, site: str, instance: str = "") -> None:
        self.switch = switch
        self.sim = switch.sim
        self.site = site
        self.instance = instance

    def open(self, *, mirrored_port: str, dest_port: str,
             directions: Iterable[str] = ("rx", "tx"),
             cycle: int = 0, run: int = 0, sample: int = 0, slot: int = 0,
             pcap: str = "", method: str = "") -> OpenSampleLedger:
        """Snapshot the relevant channel counters; call at capture start."""
        directions = tuple(sorted(directions))
        source = self.switch.ports[mirrored_port].link
        channels = [getattr(source, d) for d in directions]
        dest_tx = self.switch.ports[dest_port].link.tx
        meta = {
            "site": self.site,
            "instance": self.instance,
            "cycle": cycle,
            "run": run,
            "sample": sample,
            "slot": slot,
            "mirrored_port": mirrored_port,
            "dest_port": dest_port,
            "pcap": pcap,
            "method": method,
            "directions": directions,
        }
        return OpenSampleLedger(self, meta, channels, dest_tx)

    def publish(self, row: SampleLedger) -> None:
        """Emit the row through the registry and journal (no-ops when
        observability is disabled; the row itself is always returned to
        the caller)."""
        from repro.obs import get_obs

        obs = get_obs()
        registry = obs.registry
        registry.counter("ledger.samples",
                         help="conservation ledger rows closed").inc()
        registry.counter("ledger.generated",
                         help="frames entering ledger windows").inc(
            row.generated)
        registry.counter("ledger.captured",
                         help="frames captured within ledger windows").inc(
            row.captured)
        for cause, count in row.drops.items():
            if count:
                name = "ledger.dropped." + cause.replace("-", "_")
                registry.counter(name,
                                 help=f"ledger drops: {cause}").inc(count)
        if not row.ok:
            registry.counter("ledger.violations",
                             help="conservation identity violations").inc()
        obs.journal.emit("ledger", t=row.end, **row.to_event())


# -- congestion-detector scorecard ------------------------------------------


@dataclass
class CongestionScorecard:
    """Confusion counts for `CongestionVerdict` vs ground-truth drops."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0
    unanswerable: int = 0

    def add(self, predicted: Optional[bool], truth: bool) -> None:
        if predicted is None:
            self.unanswerable += 1
        elif predicted and truth:
            self.tp += 1
        elif predicted and not truth:
            self.fp += 1
        elif truth:
            self.fn += 1
        else:
            self.tn += 1

    def merge(self, other: "CongestionScorecard") -> None:
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn
        self.tn += other.tn
        self.unanswerable += other.unanswerable

    @property
    def samples(self) -> int:
        return self.answered + self.unanswerable

    @property
    def answered(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> Optional[float]:
        positives = self.tp + self.fp
        return self.tp / positives if positives else None

    @property
    def recall(self) -> Optional[float]:
        actual = self.tp + self.fn
        return self.tp / actual if actual else None

    @property
    def accuracy(self) -> Optional[float]:
        return (self.tp + self.tn) / self.answered if self.answered else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "samples": self.samples,
            "answered": self.answered,
            "unanswerable": self.unanswerable,
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "precision": self.precision,
            "recall": self.recall,
            "accuracy": self.accuracy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CongestionScorecard":
        return cls(tp=int(data["tp"]), fp=int(data["fp"]),
                   fn=int(data["fn"]), tn=int(data["tn"]),
                   unanswerable=int(data["unanswerable"]))

    def describe(self) -> str:
        fmt = lambda v: "n/a" if v is None else f"{v:.3f}"  # noqa: E731
        return (f"tp={self.tp} fp={self.fp} fn={self.fn} tn={self.tn} "
                f"unanswerable={self.unanswerable} "
                f"precision={fmt(self.precision)} recall={fmt(self.recall)}")


def scorecard_from_ledgers(
        ledgers: Iterable[SampleLedger]) -> CongestionScorecard:
    """Judge the SNMP-derived verdict on each row against ground truth."""
    card = CongestionScorecard()
    for row in ledgers:
        card.add(row.verdict_overloaded, row.mirror_overloaded_truth)
    return card


@dataclass
class DetectorScorecard(CongestionScorecard):
    """A scorecard with the streaming-telemetry tradeoff axes.

    Beyond the confusion counts, tracks mean *latency to detect* over
    true positives (how long after the window opened the detector had
    the evidence) and total *telemetry bytes* charged to the judged
    samples -- the two axes the tradeoff benchmark plots per detector.
    """

    latency_total: float = 0.0
    detections: int = 0          # true positives with a known latency
    telemetry_bytes: int = 0

    def add_reading(self, predicted: Optional[bool], truth: bool,
                    latency: Optional[float], tbytes: int) -> None:
        self.add(predicted, truth)
        self.telemetry_bytes += int(tbytes)
        if predicted and truth and latency is not None:
            self.latency_total += float(latency)
            self.detections += 1

    def merge(self, other: "CongestionScorecard") -> None:
        super().merge(other)
        if isinstance(other, DetectorScorecard):
            self.latency_total += other.latency_total
            self.detections += other.detections
            self.telemetry_bytes += other.telemetry_bytes

    @property
    def latency_to_detect(self) -> Optional[float]:
        """Mean seconds from window open to detection (true positives)."""
        if self.detections == 0:
            return None
        return self.latency_total / self.detections

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["latency_to_detect"] = self.latency_to_detect
        data["telemetry_bytes"] = self.telemetry_bytes
        data["detections"] = self.detections
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DetectorScorecard":
        card = cls(tp=int(data["tp"]), fp=int(data["fp"]),
                   fn=int(data["fn"]), tn=int(data["tn"]),
                   unanswerable=int(data["unanswerable"]),
                   detections=int(data.get("detections", 0)),
                   telemetry_bytes=int(data.get("telemetry_bytes", 0)))
        latency = data.get("latency_to_detect")
        if latency is not None and card.detections:
            card.latency_total = float(latency) * card.detections
        return card

    def describe(self) -> str:
        latency = self.latency_to_detect
        shown = "n/a" if latency is None else f"{latency:.2f}s"
        return (super().describe() +
                f" latency={shown} bytes={self.telemetry_bytes}")


def detector_scorecards_from_ledgers(
        ledgers: Iterable[SampleLedger]) -> Dict[str, DetectorScorecard]:
    """Per-detector scorecards over rows that carry detector readings.

    Rows without readings (telemetry disabled, or salvaged before any
    detector ran) still contribute their SNMP verdict to the ``snmp``
    card -- with no latency or byte accounting -- so the three-way view
    degrades gracefully over legacy journals.
    """
    cards: Dict[str, DetectorScorecard] = {}
    for row in ledgers:
        truth = row.mirror_overloaded_truth
        if row.detectors:
            for name in sorted(row.detectors):
                reading = row.detectors[name]
                latency = reading.get("latency")
                cards.setdefault(name, DetectorScorecard()).add_reading(
                    reading.get("overloaded"),
                    truth,
                    float(latency) if latency is not None else None,
                    int(reading.get("bytes", 0)),
                )
        else:
            cards.setdefault("snmp", DetectorScorecard()).add_reading(
                row.verdict_overloaded, truth, None, 0)
    return cards


def attach_digests(ledgers: Iterable[SampleLedger], acaps) -> int:
    """Reconcile dissected acaps back onto ledger rows by pcap name.

    Keys are site-qualified ("<parent dir>/<file name>"), matching what
    the instance stores in ``SampleLedger.pcap``.  Returns the number of
    rows that found their digest.
    """
    from pathlib import Path

    digests: Dict[str, Tuple[int, int, int]] = {}
    for acap in acaps:
        source = Path(acap.source)
        key = f"{source.parent.name}/{source.name}"
        records = acap.records
        truncated = sum(1 for r in records if r.truncated)
        parse_errors = sum(1 for r in records if not r.stack)
        digests[key] = (len(records), truncated, parse_errors)
    matched = 0
    for row in ledgers:
        hit = digests.get(row.pcap)
        if hit is not None:
            row.digested, row.truncated, row.parse_errors = hit
            matched += 1
    return matched


def ledgers_of_bundle(bundle) -> List[SampleLedger]:
    """All ledger rows carried by a ProfileBundle's sample records."""
    rows: List[SampleLedger] = []
    for site in sorted(bundle.results):
        for record in bundle.results[site].samples:
            if record.ledger is not None:
                rows.append(record.ledger)
    return rows
