"""Clock selection for the observability layer.

Telemetry inside a simulated run must be stamped with *simulated* time:
wall-clock stamps would differ between two runs of the same seeded
scenario and break the :class:`~repro.obs.journal.RunJournal`'s
byte-identical determinism guarantee.  Outside a run (the offline CLI,
ad-hoc scripts) wall time is the only clock there is.

:class:`SimClock` wraps a :class:`~repro.netsim.engine.Simulator` and is
*deterministic*; :class:`WallClock` reads ``time.time()`` and is not.
Consumers (the tracer, the journal) ask ``clock.deterministic`` to
decide whether a timestamp may appear in deterministic output.
"""

from __future__ import annotations

import time


class WallClock:
    """Wall time; non-deterministic across runs."""

    deterministic = False

    def now(self) -> float:
        return time.time()


class SimClock:
    """Simulated time from a :class:`~repro.netsim.engine.Simulator`.

    Deterministic: two runs of the same seeded scenario read identical
    times at corresponding events.
    """

    deterministic = True

    def __init__(self, sim):
        self._sim = sim

    def now(self) -> float:
        return self._sim.now
