"""Sim-time-aware tracing.

A *span* is one timed region of work -- an occasion, a port-selection
round, a capture session, an analysis stage.  Spans take their clock
from the observability layer's clock (:class:`~repro.obs.clock.SimClock`
inside a run, :class:`~repro.obs.clock.WallClock` otherwise) and emit
``span-open`` / ``span-close`` events into the
:class:`~repro.obs.journal.RunJournal`, forming a trace tree per
run/site/instance.

Two APIs, because the control plane is event-driven:

* ``with tracer.span("analysis.digest", pcaps=4):`` -- lexical scopes.
  These push onto the tracer's current-span stack, so anything started
  inside them (including simulator callbacks fired while the scope is
  open) parents correctly.
* ``span = tracer.start_span("capture"); ...; span.end()`` -- manual
  spans for regions that open in one simulator event and close in a
  later one (a capture session, an instance lifetime).  Manual spans
  default their parent to the innermost open lexical span but do not
  become the current span themselves -- concurrent instances would
  otherwise steal each other's children.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional


class Span:
    """One open (or closed) trace region."""

    __slots__ = ("span_id", "name", "parent_id", "attrs", "opened_at",
                 "closed_at", "_tracer")

    def __init__(self, span_id: int, name: str, parent_id: Optional[int],
                 attrs: Dict[str, Any], opened_at: Optional[float],
                 tracer: "Optional[Tracer]"):
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.attrs = attrs
        self.opened_at = opened_at
        self.closed_at: Optional[float] = None
        self._tracer = tracer

    @property
    def open(self) -> bool:
        return self._tracer is not None

    def end(self, **attrs: Any) -> None:
        """Close the span, optionally attaching final attributes."""
        if self._tracer is None:
            return
        tracer, self._tracer = self._tracer, None
        tracer._close(self, attrs)

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return f"<Span #{self.span_id} {self.name!r} {state}>"


class _NullSpan:
    """Shared inert span handed out when observability is disabled."""

    __slots__ = ()

    span_id = -1
    name = ""
    parent_id = None
    attrs: Dict[str, Any] = {}
    opened_at = None
    closed_at = None
    open = False

    def end(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and journals their open/close events."""

    def __init__(self, journal, clock, enabled: bool = True):
        self.journal = journal
        self.clock = clock
        self.enabled = enabled
        self._next_id = 0
        self._stack: List[Span] = []  # innermost lexical span last

    # -- span creation -------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open lexical span, if any."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attrs: Any):
        """Open a manual span (close it with ``span.end()``).

        The parent defaults to the innermost open lexical span.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = self.current
        parent_id = parent.span_id if parent is not None and \
            parent.span_id >= 0 else None
        span_id = self._next_id
        self._next_id += 1
        opened_at = self._now()
        span = Span(span_id, name, parent_id, dict(attrs), opened_at, self)
        self.journal.emit("span-open", t=opened_at, span=span_id,
                          parent=parent_id, name=name, attrs=span.attrs)
        return span

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None, **attrs: Any):
        """Lexical span: becomes the current span for its duration."""
        opened = self.start_span(name, parent=parent, **attrs)
        is_real = isinstance(opened, Span)
        if is_real:
            self._stack.append(opened)
        try:
            yield opened
        finally:
            if is_real:
                self._stack.remove(opened)
            opened.end()

    # -- internals -----------------------------------------------------------

    def _now(self) -> Optional[float]:
        if self.clock is None:
            return None
        if self.clock.deterministic or not self.journal.deterministic:
            return self.clock.now()
        return None

    def _close(self, span: Span, attrs: Dict[str, Any]) -> None:
        span.attrs.update(attrs)
        span.closed_at = self._now()
        self.journal.emit("span-close", t=span.closed_at, span=span.span_id,
                          name=span.name, attrs=attrs or {})


def trace_tree(journal) -> Dict[Optional[int], List[Dict[str, Any]]]:
    """Rebuild the span tree from a journal: parent id -> child spans."""
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    closes = {e.data["span"]: e for e in journal.of_kind("span-close")}
    for event in journal.of_kind("span-open"):
        span_id = event.data["span"]
        close = closes.get(span_id)
        children.setdefault(event.data.get("parent"), []).append({
            "span": span_id,
            "name": event.data["name"],
            "attrs": event.data.get("attrs", {}),
            "opened_at": event.t,
            "closed_at": close.t if close is not None else None,
        })
    return children
