"""Sim-time-aware tracing.

A *span* is one timed region of work -- an occasion, a port-selection
round, a capture session, an analysis stage.  Spans take their clock
from the observability layer's clock (:class:`~repro.obs.clock.SimClock`
inside a run, :class:`~repro.obs.clock.WallClock` otherwise) and emit
``span-open`` / ``span-close`` events into the
:class:`~repro.obs.journal.RunJournal`, forming a trace tree per
run/site/instance.

Two APIs, because the control plane is event-driven:

* ``with tracer.span("analysis.digest", pcaps=4):`` -- lexical scopes.
  These push onto the tracer's current-span stack, so anything started
  inside them (including simulator callbacks fired while the scope is
  open) parents correctly.
* ``span = tracer.start_span("capture"); ...; span.end()`` -- manual
  spans for regions that open in one simulator event and close in a
  later one (a capture session, an instance lifetime).  Manual spans
  default their parent to the innermost open lexical span but do not
  become the current span themselves -- concurrent instances would
  otherwise steal each other's children.

Distributed identity: a span id is process-local (a counter from 0), so
two shard workers' journals both contain a span ``0`` and naive
concatenation cross-links their trees.  A :class:`TraceContext` --
minted by the parent campaign runner and pickled into each shard task --
namespaces every id the shard's tracer hands out as ``"<site>/<n>"`` and
re-parents the shard's top-level spans under the campaign root span, so
the merged journal reads as one coherent campaign-rooted trace tree.
:meth:`repro.obs.journal.RunJournal.merge` applies the same
qualification to un-namespaced segments as a backstop, exactly as it
already rebases ``seq``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

#: A span identity as journaled: a bare process-local counter (``int``)
#: or a ``"<site>/<n>"`` string qualified by a :class:`TraceContext`.
SpanId = Union[int, str]


def qualify_span_id(site: str, span_id: SpanId) -> SpanId:
    """Namespace a process-local span id under a site label.

    Already-qualified (string) ids pass through unchanged, so the
    operation is idempotent -- merging a merged journal is safe.
    """
    if isinstance(span_id, str):
        return span_id
    return f"{site}/{span_id}"


@dataclass(frozen=True)
class TraceContext:
    """Cross-process trace identity for one shard worker.

    ``site`` namespaces every span id the shard's tracer mints
    (``"<site>/<n>"``); ``root`` is the qualified id of the campaign
    root span the shard's top-level spans parent under.  Frozen and
    picklable: the parent builds it, the shard task carries it.
    """

    site: str
    root: Optional[SpanId] = None

    def qualify(self, span_id: int) -> str:
        return f"{self.site}/{span_id}"

    def to_dict(self) -> Dict[str, Any]:
        return {"site": self.site, "root": self.root}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        return cls(site=str(data["site"]), root=data.get("root"))


class Span:
    """One open (or closed) trace region."""

    __slots__ = ("span_id", "name", "parent_id", "attrs", "opened_at",
                 "closed_at", "opened_wall", "_tracer")

    def __init__(self, span_id: SpanId, name: str,
                 parent_id: Optional[SpanId],
                 attrs: Dict[str, Any], opened_at: Optional[float],
                 tracer: "Optional[Tracer]",
                 opened_wall: Optional[float] = None):
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.attrs = attrs
        self.opened_at = opened_at
        self.closed_at: Optional[float] = None
        # Wall-clock open reading (perf_counter); only taken when the
        # journal keeps volatile values, so deterministic runs pay one
        # attribute check and journal nothing wall-derived.
        self.opened_wall = opened_wall
        self._tracer = tracer

    @property
    def open(self) -> bool:
        return self._tracer is not None

    def end(self, **attrs: Any) -> None:
        """Close the span, optionally attaching final attributes."""
        if self._tracer is None:
            return
        tracer, self._tracer = self._tracer, None
        tracer._close(self, attrs)

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return f"<Span #{self.span_id} {self.name!r} {state}>"


class _NullSpan:
    """Shared inert span handed out when observability is disabled."""

    __slots__ = ()

    span_id = -1
    name = ""
    parent_id = None
    attrs: Dict[str, Any] = {}
    opened_at = None
    closed_at = None
    opened_wall = None
    open = False

    def end(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and journals their open/close events."""

    def __init__(self, journal, clock, enabled: bool = True,
                 context: Optional[TraceContext] = None):
        self.journal = journal
        self.clock = clock
        self.enabled = enabled
        # Cross-process identity (shard workers): namespaces span ids
        # and re-parents top-level spans under the campaign root.
        self.context = context
        self._next_id = 0
        self._stack: List[Span] = []  # innermost lexical span last

    # -- span creation -------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open lexical span, if any."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **attrs: Any):
        """Open a manual span (close it with ``span.end()``).

        The parent defaults to the innermost open lexical span.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = self.current
        parent_id: Optional[SpanId] = None
        if parent is not None and parent.span_id != NULL_SPAN.span_id:
            parent_id = parent.span_id
        elif self.context is not None:
            # Shard top-level spans hang off the campaign root so the
            # merged journal forms one campaign-rooted tree.
            parent_id = self.context.root
        span_id: SpanId = self._next_id
        self._next_id += 1
        if self.context is not None:
            span_id = self.context.qualify(span_id)
        opened_at = self._now()
        opened_wall = None
        if not self.journal.deterministic:
            # reprolint: disable=RL001 -- wall duration; journaled volatile-only
            opened_wall = time.perf_counter()
        span_attrs = dict(attrs)
        self.journal.emit("span-open", t=opened_at, span=span_id,
                          parent=parent_id, name=name, attrs=span_attrs)
        return Span(span_id, name, parent_id, span_attrs, opened_at, self,
                    opened_wall=opened_wall)

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None, **attrs: Any):
        """Lexical span: becomes the current span for its duration."""
        opened = self.start_span(name, parent=parent, **attrs)
        is_real = isinstance(opened, Span)
        if is_real:
            self._stack.append(opened)
        try:
            yield opened
        finally:
            if is_real:
                self._stack.remove(opened)
            opened.end()

    # -- internals -----------------------------------------------------------

    def _now(self) -> Optional[float]:
        if self.clock is None:
            return None
        if self.clock.deterministic or not self.journal.deterministic:
            return self.clock.now()
        return None

    def _close(self, span: Span, attrs: Dict[str, Any]) -> None:
        span.attrs.update(attrs)
        span.closed_at = self._now()
        volatile = None
        if span.opened_wall is not None:
            # reprolint: disable=RL001 -- wall duration; journaled volatile-only
            volatile = {"wall_s": time.perf_counter() - span.opened_wall}
        self.journal.emit("span-close", t=span.closed_at, span=span.span_id,
                          name=span.name, attrs=attrs or {},
                          volatile=volatile)


def trace_tree(journal) -> Dict[Optional[SpanId], List[Dict[str, Any]]]:
    """Rebuild the span tree from a journal: parent id -> child spans.

    A flat adjacency view kept for quick interactive inspection; the
    full reconstruction (durations, critical path, dangling spans,
    rotated-segment id reuse) lives in :mod:`repro.obs.trace`.
    """
    children: Dict[Optional[SpanId], List[Dict[str, Any]]] = {}
    closes = {e.data["span"]: e for e in journal.of_kind("span-close")}
    for event in journal.of_kind("span-open"):
        span_id = event.data["span"]
        close = closes.get(span_id)
        children.setdefault(event.data.get("parent"), []).append({
            "span": span_id,
            "name": event.data["name"],
            "attrs": event.data.get("attrs", {}),
            "opened_at": event.t,
            "closed_at": close.t if close is not None else None,
        })
    return children
