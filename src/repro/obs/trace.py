"""Trace reconstruction: span trees, durations, and the critical path.

:mod:`repro.obs.tracing` journals ``span-open`` / ``span-close`` events;
this module turns any journal -- serial, sharded-and-merged, or a series
of rotated campaign segments -- back into a coherent tree of
:class:`TraceSpan` nodes and answers the questions the ROADMAP's scale
items need answered: where does campaign time go, and which chain of
spans bounds the run.

Reconstruction rules (the parts that earn their keep):

* **Qualified identities.**  Sharded journals carry ``"<site>/<n>"``
  span ids (see :class:`~repro.obs.tracing.TraceContext`); serial
  journals carry bare integers.  Both resolve here; a span's *site* is
  its id's namespace prefix when qualified, its ``site`` attribute when
  present, else inherited from its parent.
* **Generations.**  Rotated segments restart the tracer's id counter,
  so one campaign journal legitimately contains several opens of span
  ``0``.  Every ``span-open`` starts a *new* node; a ``span-close``
  matches the most recent still-open instance of its id.  Id reuse
  never merges two distinct spans.
* **Damage tolerance.**  A close without an open (truncated segment
  head) is counted, not fatal; an open without a close (crash, torn
  tail, salvage-abort) leaves a *dangling* span that :func:`repro
  .obs.audit.audit_journal` surfaces as a warning.  A parent id with no
  open event in the journal (a shard segment inspected standalone)
  gets a synthetic placeholder root so its children still group.

The *critical path* is defined in sim time: starting from the root
whose subtree ends last, repeatedly descend into the child whose
subtree ends last.  That chain is exactly the sequence of spans that
bounds when the run finishes -- shortening any span off the path cannot
move the end time.  Per-stage aggregates feed the existing
:class:`~repro.obs.registry.MetricsRegistry` so the Prometheus/JSONL
exporters and quantile rendering apply unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import SpanId

#: Bucket bounds (seconds) for per-stage duration histograms: spans
#: range from sub-millisecond port polls to multi-hour occasions.
STAGE_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0, 3600.0)


@dataclass
class TraceSpan:
    """One reconstructed span (a node in the trace tree)."""

    span_id: SpanId
    name: str
    site: str
    attrs: Dict[str, Any]
    opened_at: Optional[float]
    seq: int
    closed_at: Optional[float] = None
    #: Wall-clock duration in seconds, present only when the source
    #: journal was non-deterministic (``wall_s`` volatile payload).
    wall_s: Optional[float] = None
    closed: bool = False
    #: True for placeholder nodes invented for parent ids that have no
    #: open event in the journal (standalone shard segments).
    synthetic: bool = False
    parent: Optional["TraceSpan"] = field(default=None, repr=False)
    children: List["TraceSpan"] = field(default_factory=list, repr=False)

    @property
    def dangling(self) -> bool:
        """Opened but never closed (crash / salvage-abort signature)."""
        return not self.closed and not self.synthetic

    @property
    def sim_duration(self) -> Optional[float]:
        """Inclusive sim-time duration; None when either edge is missing."""
        if self.opened_at is None or self.closed_at is None:
            return None
        return self.closed_at - self.opened_at

    @property
    def sim_self(self) -> Optional[float]:
        """Exclusive sim time: inclusive minus children's inclusive.

        Clamped at zero -- concurrent children (parallel instances under
        one occasion) can legitimately overlap their parent's window.
        """
        total = self.sim_duration
        if total is None:
            return None
        spent = sum(c.sim_duration or 0.0 for c in self.children)
        return max(0.0, total - spent)

    @property
    def wall_self(self) -> Optional[float]:
        if self.wall_s is None:
            return None
        spent = sum(c.wall_s or 0.0 for c in self.children)
        return max(0.0, self.wall_s - spent)

    def end_time(self) -> float:
        """When this span's subtree ends: its close, or -- while dangling
        -- the latest close among descendants, else its open."""
        best = self.closed_at
        if best is None:
            best = self.opened_at if self.opened_at is not None else 0.0
            for child in self.children:
                best = max(best, child.end_time())
        return best

    def path(self) -> List["TraceSpan"]:
        """Ancestors from the outermost real span down to this one."""
        nodes: List[TraceSpan] = []
        node: Optional[TraceSpan] = self
        while node is not None and not node.synthetic:
            nodes.append(node)
            node = node.parent
        return list(reversed(nodes))

    def walk(self) -> Iterable["TraceSpan"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span": self.span_id,
            "name": self.name,
            "site": self.site,
            "attrs": self.attrs,
            "opened_at": self.opened_at,
            "closed_at": self.closed_at,
            "sim_duration": self.sim_duration,
            "wall_s": self.wall_s,
            "dangling": self.dangling,
            "children": [c.to_dict() for c in self.children],
        }


class TraceTree:
    """The reconstructed forest of spans from one or more journals."""

    def __init__(self) -> None:
        self.roots: List[TraceSpan] = []
        self.spans: List[TraceSpan] = []  # open order, synthetics excluded
        #: span-close events whose id had no still-open instance
        #: (truncated segment head); counted, never fatal.
        self.orphan_closes: int = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_journal(cls, journal) -> "TraceTree":
        return cls.from_journals([journal])

    @classmethod
    def from_journals(cls, journals: Iterable[Any]) -> "TraceTree":
        """Rebuild the tree from journal segments *in order*.

        Pass rotated campaign segments in their sequence order: the
        event stream is treated as one concatenated journal, which is
        exactly what campaign resume guarantees the segments to be.
        """
        tree = cls()
        placeholders: Dict[SpanId, TraceSpan] = {}
        latest: Dict[SpanId, TraceSpan] = {}
        instances: Dict[SpanId, List[TraceSpan]] = {}
        seq = 0
        for journal in journals:
            for event in journal.events:
                if event.kind == "span-open":
                    tree._open(event, seq, placeholders, latest, instances)
                    seq += 1
                elif event.kind == "span-close":
                    tree._close(event, instances)
        return tree

    def _open(self, event, seq: int, placeholders, latest, instances) -> None:
        span_id = event.data["span"]
        parent_id = event.data.get("parent")
        attrs = dict(event.data.get("attrs", {}))
        parent: Optional[TraceSpan] = None
        if parent_id is not None:
            parent = latest.get(parent_id)
            if parent is None:
                parent = placeholders.get(parent_id)
            if parent is None:
                # Parent opened outside this journal (e.g. a shard
                # segment read standalone): group its children under a
                # synthetic root rather than scattering them.
                parent = TraceSpan(span_id=parent_id, name="<missing>",
                                   site=_site_of(parent_id, {}, None),
                                   attrs={}, opened_at=None, seq=-1,
                                   synthetic=True)
                placeholders[parent_id] = parent
                self.roots.append(parent)
        node = TraceSpan(span_id=span_id, name=event.data.get("name", ""),
                         site=_site_of(span_id, attrs, parent),
                         attrs=attrs, opened_at=event.t, seq=seq,
                         parent=parent)
        if parent is None:
            self.roots.append(node)
        else:
            parent.children.append(node)
        latest[span_id] = node
        instances.setdefault(span_id, []).append(node)
        self.spans.append(node)

    def _close(self, event, instances) -> None:
        span_id = event.data["span"]
        node = None
        for candidate in reversed(instances.get(span_id, [])):
            if not candidate.closed:
                node = candidate
                break
        if node is None:
            self.orphan_closes += 1
            return
        node.closed = True
        node.closed_at = event.t
        node.attrs.update(event.data.get("attrs", {}))
        wall = event.data.get("wall_s")
        if wall is not None:
            node.wall_s = float(wall)

    # -- queries -------------------------------------------------------------

    def dangling(self) -> List[TraceSpan]:
        """Spans opened but never closed, in open order."""
        return [s for s in self.spans if s.dangling]

    def sites(self) -> List[str]:
        return sorted({s.site for s in self.spans})

    def critical_path(self) -> List[TraceSpan]:
        """The chain of spans that bounds the run's end, in sim time.

        Start from the root whose subtree ends last; at every level
        descend into the child whose subtree ends last (ties break on
        open time then journal order, so the path is deterministic).
        Only spans *on* this chain can move the end of the run.
        """
        real_roots = [r for r in self.roots if not r.synthetic] + [
            c for r in self.roots if r.synthetic for c in r.children]
        if not real_roots:
            return []
        node = max(real_roots, key=_path_key)
        path = [node]
        while node.children:
            node = max(node.children, key=_path_key)
            path.append(node)
        return path

    def stage_stats(self) -> List[Dict[str, Any]]:
        """Per-stage (span-name) aggregates, sorted by total sim time."""
        stages: Dict[str, Dict[str, Any]] = {}
        for span in self.spans:
            row = stages.setdefault(span.name, {
                "stage": span.name, "count": 0, "dangling": 0,
                "sim_total": 0.0, "sim_self": 0.0,
                "wall_total": 0.0, "wall_known": 0})
            row["count"] += 1
            if span.dangling:
                row["dangling"] += 1
            if span.sim_duration is not None:
                row["sim_total"] += span.sim_duration
                row["sim_self"] += span.sim_self or 0.0
            if span.wall_s is not None:
                row["wall_total"] += span.wall_s
                row["wall_known"] += 1
        return sorted(stages.values(),
                      key=lambda r: (-r["sim_total"], r["stage"]))

    def to_registry(self,
                    registry: Optional[MetricsRegistry] = None
                    ) -> MetricsRegistry:
        """Aggregate per-stage latency histograms into a registry.

        One sim-time histogram per span name plus a dangling-span
        counter; wall-time histograms (volatile) only when the journal
        carried wall durations.  Rendered by the existing Prometheus /
        JSONL exporters, quantiles included.
        """
        registry = registry if registry is not None else MetricsRegistry()
        for span in self.spans:
            if span.sim_duration is not None:
                registry.histogram(
                    f"trace.stage.{span.name}.sim_seconds",
                    buckets=STAGE_BUCKETS,
                    help=f"sim-time span durations for {span.name}",
                ).observe(span.sim_duration)
            if span.wall_s is not None:
                registry.histogram(
                    f"trace.stage.{span.name}.wall_seconds",
                    buckets=STAGE_BUCKETS, volatile=True,
                    help=f"wall-time span durations for {span.name}",
                ).observe(span.wall_s)
            if span.dangling:
                registry.counter(
                    "trace.spans.dangling",
                    help="spans opened but never closed").inc()
        return registry

    def render(self, max_depth: Optional[int] = None) -> str:
        """An indented text rendering of the forest."""
        lines: List[str] = []
        for root in self.roots:
            self._render_node(root, 0, lines, max_depth)
        return "\n".join(lines) + ("\n" if lines else "")

    def _render_node(self, node: TraceSpan, depth: int, lines: List[str],
                     max_depth: Optional[int]) -> None:
        if max_depth is not None and depth > max_depth:
            return
        dur = node.sim_duration
        label = f"{dur:.3f}s" if dur is not None else (
            "synthetic" if node.synthetic else "DANGLING")
        site = f" @{node.site}" if node.site else ""
        lines.append(f"{'  ' * depth}{node.name}{site} "
                     f"[{node.span_id}] {label}")
        for child in node.children:
            self._render_node(child, depth + 1, lines, max_depth)


def _site_of(span_id: SpanId, attrs: Dict[str, Any],
             parent: Optional[TraceSpan]) -> str:
    """A span's site: explicit attr > qualified-id prefix > inherited."""
    site = attrs.get("site")
    if site:
        return str(site)
    if isinstance(span_id, str) and "/" in span_id:
        return span_id.split("/", 1)[0]
    if parent is not None and parent.site:
        return parent.site
    return "main"


def _path_key(node: TraceSpan) -> Tuple[float, float, int]:
    opened = node.opened_at if node.opened_at is not None else 0.0
    return (node.end_time(), opened, node.seq)


def critical_path_summary(path: List[TraceSpan]) -> Dict[str, Any]:
    """Per-stage shares of the critical path (the benchmark's payload).

    Each path span's *exclusive* sim time is attributed to its stage;
    shares are fractions of the path root's inclusive duration.
    """
    if not path:
        return {"total_sim": 0.0, "stages": {}}
    total = path[0].sim_duration or 0.0
    stages: Dict[str, float] = {}
    for span in path:
        exclusive = span.sim_self if span is not path[-1] \
            else span.sim_duration
        stages[span.name] = stages.get(span.name, 0.0) + (exclusive or 0.0)
    shares = {name: (value / total if total else 0.0)
              for name, value in sorted(stages.items())}
    return {
        "total_sim": total,
        "stages": shares,
        "path": [{"span": s.span_id, "name": s.name, "site": s.site,
                  "sim_duration": s.sim_duration} for s in path],
    }


# -- exporters ----------------------------------------------------------------

def to_chrome_trace(tree: TraceTree) -> Dict[str, Any]:
    """Chrome Trace Event JSON (Perfetto-loadable): pid per site, tid
    per instance.

    Timestamps are sim time in microseconds, so the export is a pure
    function of the (deterministic) journal: byte-identical at any
    ``--shard-workers N``.  Dangling spans export with ``dur=0`` and a
    ``dangling`` arg rather than an unmatched begin event.
    """
    sites = tree.sites()
    pids = {site: i + 1 for i, site in enumerate(sites)}
    threads: Dict[str, Dict[str, int]] = {site: {} for site in sites}

    def tid_of(span: TraceSpan) -> Tuple[int, str]:
        node: Optional[TraceSpan] = span
        while node is not None:
            instance = node.attrs.get("instance")
            if instance is not None:
                label = f"instance {instance}"
                tids = threads[span.site]
                if label not in tids:
                    tids[label] = len(tids) + 1
                return tids[label], label
            node = node.parent
        return 0, "main"

    events: List[Dict[str, Any]] = []
    span_events: List[Dict[str, Any]] = []
    seen_threads = set()
    for span in tree.spans:
        pid = pids[span.site]
        tid, label = tid_of(span)
        seen_threads.add((span.site, tid, label))
        opened = span.opened_at if span.opened_at is not None else 0.0
        duration = span.sim_duration
        args = dict(span.attrs)
        if span.dangling:
            args["dangling"] = True
        span_events.append({
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": span.name,
            "cat": span.site,
            "ts": opened * 1e6,
            "dur": (duration or 0.0) * 1e6,
            "args": args,
        })
    for site in sites:
        events.append({"ph": "M", "pid": pids[site], "tid": 0,
                       "name": "process_name", "args": {"name": site}})
    for site, tid, label in sorted(seen_threads):
        events.append({"ph": "M", "pid": pids[site], "tid": tid,
                       "name": "thread_name", "args": {"name": label}})
    events.extend(span_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(tree: TraceTree) -> str:
    """Canonical serialization of :func:`to_chrome_trace` (stable bytes)."""
    return json.dumps(to_chrome_trace(tree), sort_keys=True,
                      separators=(",", ":")) + "\n"


def to_folded_stacks(tree: TraceTree) -> str:
    """Folded-stacks flamegraph lines: ``root;child;leaf <usec>``.

    Values are each span's *exclusive* sim time in integer microseconds
    (the flamegraph convention); zero-weight frames are dropped.  Lines
    are sorted, so the export is deterministic.
    """
    weights: Dict[str, int] = {}
    for span in tree.spans:
        exclusive = span.sim_self
        if exclusive is None:
            continue
        usec = int(round(exclusive * 1e6))
        if usec <= 0:
            continue
        stack = ";".join(node.name for node in span.path())
        weights[stack] = weights.get(stack, 0) + usec
    return "".join(f"{stack} {value}\n"
                   for stack, value in sorted(weights.items()))
