"""The Linux page-cache write-back model (paper Section 8.1.3, Appendix B).

Writing pcap files at 100 Gbps hits a host bottleneck the paper
dissects: pcap writes land in the page cache, the kernel flushes dirty
pages in the background once usage passes ``vm.dirty_background_ratio``,
and -- the paper's key finding, confirmed in kernel code -- the writing
process is *throttled from the midpoint* between
``dirty_background_ratio`` and ``dirty_ratio``, well before
``dirty_ratio`` itself.

The model reproduces the paper's measurement procedure: batches of 128
frames are written with ``sys_writev``; each call's latency is recorded
in a log2-bucketed histogram (their bpftrace methodology); the *summed
latency* per cache-usage percentage uses each bucket's upper bound and
ignores the sub-floor "average case" buckets, exactly as Appendix B
describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List


from repro.util.rng import derive_rng

NSEC = 1e-9
DEFAULT_BATCH_FRAMES = 128

# The paper's summed-latency calculation excludes low buckets; the
# [32K, 64K] ns bucket (upper bound 2**16) is the first one it counts.
DEFAULT_SUM_FLOOR_EXP = 16


class WritevLatencyHistogram:
    """A log2-bucketed latency histogram (bpftrace ``hist()`` style)."""

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}  # exponent -> count
        self.calls = 0

    def add(self, latency_ns: float) -> None:
        if latency_ns <= 0:
            raise ValueError("latency must be positive")
        exponent = max(0, math.ceil(math.log2(latency_ns)))
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1
        self.calls += 1

    def summed_latency_ms(self, floor_exp: int = DEFAULT_SUM_FLOOR_EXP) -> float:
        """Sum of bucket upper bounds for buckets at/above the floor.

        A call in the [32K, 64K] ns bucket contributes 64 us, and so on
        upward -- the paper's convention of weighting the high-latency
        cases that actually stall the writer while excluding the
        "average case" buckets below them.
        """
        total_ns = sum(
            (1 << exp) * count
            for exp, count in self.buckets.items()
            if exp >= floor_exp
        )
        return total_ns * 1e-6

    def merge(self, other: "WritevLatencyHistogram") -> None:
        for exp, count in other.buckets.items():
            self.buckets[exp] = self.buckets.get(exp, 0) + count
        self.calls += other.calls


@dataclass
class StorageSweepPoint:
    """One x-position of Fig 14: summed latency at a cache-usage percent."""

    usage_percent: int
    usage_ram_gb: float
    summed_latency_ms: float
    writev_calls: int


class PageCacheModel:
    """Dirty-page accounting plus the writev latency regimes.

    Thresholds are expressed the way the sysctls are: percentages of
    *free cache memory* (the paper: a 128 GB host has ~100 GB of free
    cache by default).

    Latency regimes, as fractions ``d`` of free cache dirtied:

    ======================  =========================================
    ``d < bg``              page-cache memcpy, microseconds
    ``bg <= d < midpoint``  background flusher active; rare spikes
    ``d >= midpoint``       writer throttled by balance_dirty_pages();
                            frequent 100 us - 10 ms stalls
    ======================  =========================================

    The *midpoint* is ``(bg + ratio) / 2`` -- the paper's kernel-code
    finding.  Crossing ``dirty_ratio`` does not add another cliff; the
    writer is already being paced (also the paper's observation).
    """

    def __init__(
        self,
        ram_gb: float = 128.0,
        free_cache_fraction: float = 0.78,
        dirty_background_ratio: float = 10.0,
        dirty_ratio: float = 20.0,
        flush_rate_bps: float = 3e9 * 8,  # 3 GB/s of NVMe write-back
        seed: int = 1234,
    ):
        if not 0 < dirty_background_ratio < dirty_ratio <= 100:
            raise ValueError("need 0 < dirty_background_ratio < dirty_ratio <= 100")
        self.ram_gb = ram_gb
        self.free_cache_bytes = ram_gb * 1e9 * free_cache_fraction
        self.bg_fraction = dirty_background_ratio / 100.0
        self.ratio_fraction = dirty_ratio / 100.0
        self.midpoint_fraction = (self.bg_fraction + self.ratio_fraction) / 2.0
        self.flush_rate_Bps = flush_rate_bps / 8.0
        self.rng = derive_rng(seed, f"storage/{dirty_background_ratio}:{dirty_ratio}")
        self.dirty_bytes = 0.0
        self.histogram = WritevLatencyHistogram()

    # -- state ------------------------------------------------------------

    @property
    def dirty_fraction(self) -> float:
        return self.dirty_bytes / self.free_cache_bytes

    def flush(self, dt: float) -> None:
        """Background write-back over ``dt`` seconds (active above bg)."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if self.dirty_fraction >= self.bg_fraction:
            self.dirty_bytes = max(0.0, self.dirty_bytes - self.flush_rate_Bps * dt)

    # -- the writer ------------------------------------------------------

    def writev(self, nbytes: int) -> float:
        """One ``sys_writev`` call of ``nbytes``; returns latency (s).

        Latency is drawn from the current regime and recorded in the
        histogram; the bytes become dirty pages.
        """
        latency_ns = self._sample_latency_ns()
        self.histogram.add(latency_ns)
        self.dirty_bytes += nbytes
        return latency_ns * NSEC

    def _sample_latency_ns(self) -> float:
        d = self.dirty_fraction
        u = self.rng.random()
        if d < self.bg_fraction:
            return float(self.rng.uniform(2_000, 8_000))
        if d < self.midpoint_fraction:
            # Flusher contention: the occasional above-floor spike.
            if u < 0.005:
                return float(self.rng.uniform(33_000, 64_000))
            return float(self.rng.uniform(8_000, 30_000))
        # Throttled by balance_dirty_pages(): stalls dominate the sum.
        if u < 0.002:
            return float(self.rng.uniform(4.2e6, 8.4e6))
        if u < 0.05:
            return float(self.rng.uniform(0.6e6, 1.04e6))
        if u < 0.35:
            return float(self.rng.uniform(70_000, 130_000))
        return float(self.rng.uniform(10_000, 31_000))

    # -- the Fig 14 measurement ----------------------------------------------

    def fill_sweep(
        self,
        write_rate_Bps: float = 1.1e9,
        batch_bytes: int = DEFAULT_BATCH_FRAMES * 200,
        max_usage_percent: int = 60,
        flush_while_filling: bool = False,
    ) -> List[StorageSweepPoint]:
        """Fill the cache while recording per-usage-percent summed latency.

        Models the Appendix-B experiment: DPDK Pktgen pushes 100 Gbps,
        the writer appends 200 B truncations in 128-frame batches, and
        the latency of every writev is attributed to the cache-usage
        percentage at which it happened.  ``flush_while_filling``
        defaults to False because at 100 Gbps the ingest rate dwarfs
        write-back ("the page caching mechanism is overwhelmed").
        """
        per_bin: Dict[int, WritevLatencyHistogram] = {}
        batch_interval = batch_bytes / write_rate_Bps
        while True:
            percent = int(self.dirty_fraction * 100)
            if percent >= max_usage_percent:
                break
            latency_ns = self._sample_latency_ns()
            per_bin.setdefault(percent, WritevLatencyHistogram()).add(latency_ns)
            self.histogram.add(latency_ns)
            self.dirty_bytes += batch_bytes
            if flush_while_filling:
                self.flush(batch_interval)
        return [
            StorageSweepPoint(
                usage_percent=percent,
                usage_ram_gb=percent / 100.0 * self.free_cache_bytes / 1e9,
                summed_latency_ms=hist.summed_latency_ms(),
                writev_calls=hist.calls,
            )
            for percent, hist in sorted(per_bin.items())
        ]

    def seconds_until_throttle(self, write_rate_Bps: float) -> float:
        """How long a fresh cache absorbs writes before the midpoint.

        The paper's back-of-envelope: 8.5 GB/s into ~100 GB of free
        cache with a 60:80 threshold stalls the writer in ~8-9 s.
        """
        if write_rate_Bps <= 0:
            raise ValueError("write rate must be positive")
        headroom = self.midpoint_fraction * self.free_cache_bytes - self.dirty_bytes
        return max(0.0, headroom) / write_rate_Bps
