"""Capture-path models.

The paper captures frames three ways (Section 6.2.2): tcpdump with an
enlarged buffer, a custom DPDK application, and Alveo-FPGA
pre-processing feeding the DPDK writer.  All three produce pcap files.
Their performance envelopes -- the content of Section 8.1, Tables 1-2,
and Fig 14 -- come from host effects we model explicitly:

* :mod:`repro.capture.storage` -- the Linux page-cache write-back
  model: ``vm.dirty_background_ratio`` / ``vm.dirty_ratio`` thresholds,
  the midpoint throttle, and the log2 ``sys_writev`` latency histogram.
* :mod:`repro.capture.tcpdump` -- the kernel capture path: a fixed
  per-packet cost bounds loss-free capture near 8.5 Gbps for 1500 B
  frames.
* :mod:`repro.capture.dpdk` -- the multicore kernel-bypass writer,
  calibrated to the paper's measured host (16 cores, 128 GB RAM,
  single NUMA node).
* :mod:`repro.capture.fpga` -- Alveo offload: filter/truncate/sample at
  line rate ahead of the DPDK writer.
* :mod:`repro.capture.session` -- the online capture session Patchwork
  uses inside the simulation: frames in, pcap files + logs out.
"""

from repro.capture.storage import PageCacheModel, WritevLatencyHistogram
from repro.capture.tcpdump import TcpdumpModel
from repro.capture.dpdk import DpdkCaptureModel, OfferedLoad, LoadResult
from repro.capture.fpga import FpgaOffloadModel
from repro.capture.session import CaptureSession, CaptureStats, CaptureMethod

__all__ = [
    "PageCacheModel",
    "WritevLatencyHistogram",
    "TcpdumpModel",
    "DpdkCaptureModel",
    "OfferedLoad",
    "LoadResult",
    "FpgaOffloadModel",
    "CaptureSession",
    "CaptureStats",
    "CaptureMethod",
]
