"""The software (kernel-path) capture model.

Patchwork's default capture method is tcpdump with its buffer raised to
32 MB (paper Section 8.1.2): mature, simple, no special requirements --
but bounded by the kernel path's per-packet cost.  The paper measured
the bound on FABRIC: with 1500 B frames and 64 B truncation, capture is
loss-free "until about 8.5 Gbps", while the iperf3 pair itself sustained
11 Gbps.

The model is a single-server queue with deterministic service:

* Each frame costs ``per_packet_ns`` plus ``per_byte_ns`` for the bytes
  actually copied (after truncation).  The defaults put loss-free
  capture of 1500 B frames at ~8.5 Gbps.
* The 32 MB capture buffer absorbs bursts; when it is full, frames are
  dropped ("packets dropped by kernel").

The model supports both *online* use (frame by frame, inside the
simulation) and *offline* analytic evaluation at full line rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import parse_size


@dataclass
class TcpdumpLoadResult:
    """Outcome of offering a constant load to the model."""

    offered_pps: float
    offered_bps: float
    captured_pps: float
    loss_fraction: float

    @property
    def lossless(self) -> bool:
        return self.loss_fraction <= 0.0


class TcpdumpModel:
    """Kernel-path capture with a finite ring buffer."""

    def __init__(
        self,
        buffer_bytes: "int | str" = "32MB",
        snaplen: int = 64,
        per_packet_ns: float = 1350.0,
        per_byte_ns: float = 0.55,
    ):
        self.buffer_bytes = parse_size(buffer_bytes)
        self.snaplen = snaplen
        self.per_packet_ns = per_packet_ns
        self.per_byte_ns = per_byte_ns
        # Online state: a virtual backlog drained at the service rate.
        self._backlog_bytes = 0.0
        self._last_time = 0.0
        self.received = 0
        self.captured = 0
        self.dropped = 0

    # -- capacity ------------------------------------------------------------

    def service_time(self, frame_bytes: int) -> float:
        """Seconds of kernel-path work for one frame."""
        copied = min(frame_bytes, self.snaplen)
        return (self.per_packet_ns + self.per_byte_ns * copied) * 1e-9

    def capacity_pps(self, frame_bytes: int) -> float:
        """Sustainable packets per second for a given frame size."""
        return 1.0 / self.service_time(frame_bytes)

    def max_lossless_rate_bps(self, frame_bytes: int) -> float:
        """Highest loss-free line rate for a given frame size."""
        return self.capacity_pps(frame_bytes) * frame_bytes * 8.0

    def offer_constant_load(
        self, rate_bps: float, frame_bytes: int, duration: float = 10.0
    ) -> TcpdumpLoadResult:
        """Analytic steady-state outcome of a constant offered load.

        The buffer absorbs the first moments of overload; for a
        sustained run the loss fraction is the excess over capacity.
        """
        if rate_bps <= 0 or frame_bytes <= 0 or duration <= 0:
            raise ValueError("rate, frame size, and duration must be positive")
        offered_pps = rate_bps / (frame_bytes * 8.0)
        capacity = self.capacity_pps(frame_bytes)
        if offered_pps <= capacity:
            return TcpdumpLoadResult(offered_pps, rate_bps, offered_pps, 0.0)
        # Excess packets beyond what the buffer can hold are dropped.
        excess_pps = offered_pps - capacity
        buffered_packets = self.buffer_bytes / min(frame_bytes, self.snaplen + 66)
        absorbed = min(buffered_packets, excess_pps * duration)
        dropped = excess_pps * duration - absorbed
        loss = dropped / (offered_pps * duration)
        return TcpdumpLoadResult(offered_pps, rate_bps, offered_pps * (1 - loss), loss)

    # -- online (simulation) path ----------------------------------------------

    def on_frame(self, frame_bytes: int, now: float) -> bool:
        """Process one frame arrival; True if captured, False if dropped.

        Maintains a virtual backlog: work arrives with each frame and
        drains continuously at one second of service per second.
        """
        if now < self._last_time:
            raise ValueError("time went backwards")
        elapsed = now - self._last_time
        self._last_time = now
        self._backlog_bytes = max(0.0, self._backlog_bytes - elapsed * self._drain_Bps())
        self.received += 1
        stored = min(frame_bytes, self.snaplen) + 66  # pcap + kernel overhead
        if self._backlog_bytes + stored > self.buffer_bytes:
            self.dropped += 1
            return False
        self._backlog_bytes += stored
        self.captured += 1
        return True

    def _drain_Bps(self) -> float:
        """Backlog drain rate in stored-bytes per second.

        Stored bytes per frame are roughly constant (truncation), so the
        drain rate is capacity_pps x stored bytes.  We use the snaplen
        as the reference frame size.
        """
        stored = self.snaplen + 66
        return self.capacity_pps(1500) * stored

    def reset(self) -> None:
        """Clear online state between capture sessions."""
        self._backlog_bytes = 0.0
        self._last_time = 0.0
        self.received = self.captured = self.dropped = 0
