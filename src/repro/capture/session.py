"""Online capture sessions.

A :class:`CaptureSession` is the receiving half of one Patchwork sample:
it subscribes to a NIC port, runs each arriving frame through the chosen
capture-method model, and writes what survives to a real pcap file.  At
the end it reports :class:`CaptureStats`, which Patchwork folds into its
per-run logs ("Patchwork creates logs at every instance to capture a
variety of network- and host-related statistics").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.capture.dpdk import DpdkCaptureModel
from repro.capture.fpga import FpgaOffloadConfig, FpgaOffloadModel
from repro.capture.tcpdump import TcpdumpModel
from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.obs import get_obs
from repro.packets.pcap import PcapRecord, PcapWriter
from repro.telemetry.query.inband import StampLog, peel
from repro.testbed.nic import NicPort

FrameTransform = Callable[[bytes], bytes]


class CaptureMethod(enum.Enum):
    """The paper's three capture methods (Section 6.2.2)."""

    TCPDUMP = "tcpdump"
    DPDK = "dpdk"
    FPGA_DPDK = "fpga+dpdk"


@dataclass
class CaptureStats:
    """Counters for one completed capture session."""

    method: CaptureMethod
    pcap_path: Optional[Path]
    started_at: float = 0.0
    ended_at: float = 0.0
    frames_seen: int = 0
    frames_captured: int = 0
    frames_dropped: int = 0
    bytes_captured: int = 0
    bytes_on_wire: int = 0
    # Cause breakdown.  frames_dropped == ring_drops + writer_drops;
    # frames_filtered is intentional removal by the FPGA front-end and
    # deliberately NOT part of frames_dropped (loss_fraction keeps its
    # "unintended loss" meaning) -- the conservation ledger accounts for
    # filtered frames separately.
    ring_drops: int = 0
    writer_drops: int = 0
    frames_filtered: int = 0

    @property
    def loss_fraction(self) -> float:
        if self.frames_seen == 0:
            return 0.0
        return self.frames_dropped / self.frames_seen

    @property
    def duration(self) -> float:
        return max(0.0, self.ended_at - self.started_at)


class CaptureSession:
    """Captures one port's mirrored traffic into a pcap file."""

    def __init__(
        self,
        sim: Simulator,
        nic_port: NicPort,
        pcap_path: Union[str, Path, None],
        method: CaptureMethod = CaptureMethod.TCPDUMP,
        snaplen: int = 200,
        transform: Optional[FrameTransform] = None,
        tcpdump_model: Optional[TcpdumpModel] = None,
        dpdk_model: Optional[DpdkCaptureModel] = None,
        fpga_config: Optional[FpgaOffloadConfig] = None,
        int_strip: bool = False,
    ):
        if snaplen <= 0:
            raise ValueError("snaplen must be positive")
        self.sim = sim
        self.nic_port = nic_port
        self.pcap_path = Path(pcap_path) if pcap_path is not None else None
        self.method = method
        self.snaplen = snaplen
        self.transform = transform
        # In-band telemetry: when enabled, a trailing telemetry shim is
        # peeled off each arriving frame *before* any capture processing,
        # so pcap bytes and wire lengths match an unstamped run exactly.
        self.int_strip = int_strip
        self.int_stamps = StampLog()
        self._tcpdump = tcpdump_model or TcpdumpModel(snaplen=snaplen)
        self._dpdk = dpdk_model or DpdkCaptureModel(truncation=snaplen)
        if method is CaptureMethod.FPGA_DPDK:
            config = fpga_config or FpgaOffloadConfig(truncation=snaplen)
            self._fpga: Optional[FpgaOffloadModel] = FpgaOffloadModel(config)
        else:
            self._fpga = None
        self._writer: Optional[PcapWriter] = None
        self._active = False
        self._obs_span = None
        self.stats = CaptureStats(method=method, pcap_path=self.pcap_path)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin capturing (subscribes to the NIC port now)."""
        if self._active:
            raise RuntimeError("capture session already active")
        self._tcpdump.reset()
        self._dpdk.reset()
        self.int_stamps = StampLog()
        if self.pcap_path is not None:
            self.pcap_path.parent.mkdir(parents=True, exist_ok=True)
            self._writer = PcapWriter(self.pcap_path, snaplen=self.snaplen)
        self.stats.started_at = self.sim.now
        # The pcap *name* (never the absolute path) keeps span attrs
        # independent of the output directory, so journals stay
        # byte-identical across differently-rooted runs.
        self._obs_span = get_obs().tracer.start_span(
            "capture", method=self.method.value,
            pcap=self.pcap_path.name if self.pcap_path is not None else "")
        self.nic_port.receive(self._on_frame)
        self._active = True

    def stop(self) -> CaptureStats:
        """Stop capturing and return the final statistics."""
        if self._active:
            self.nic_port.stop_receiving(self._on_frame)
            self._active = False
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self.stats.ended_at = self.sim.now
        if self._obs_span is not None:
            self._flush_metrics()
            self._obs_span.end(frames_seen=self.stats.frames_seen,
                               frames_captured=self.stats.frames_captured,
                               frames_dropped=self.stats.frames_dropped)
            self._obs_span = None
        return self.stats

    def _flush_metrics(self) -> None:
        """Batch the per-frame counters into the registry at stop time.

        The dataplane path stays instrument-free (``_on_frame`` already
        accumulates into :class:`CaptureStats`); one flush per session
        publishes the totals, so capture costs the same with and without
        observability.
        """
        registry = get_obs().registry
        registry.counter("capture.sessions",
                         help="capture sessions completed").inc()
        registry.counter("capture.frames_seen",
                         help="frames offered to capture").inc(
            self.stats.frames_seen)
        registry.counter("capture.frames_captured",
                         help="frames written to pcaps").inc(
            self.stats.frames_captured)
        registry.counter("capture.frames_dropped",
                         help="frames dropped by the capture model").inc(
            self.stats.frames_dropped)
        registry.counter("capture.bytes_captured",
                         help="post-truncation bytes captured").inc(
            self.stats.bytes_captured)
        registry.counter("capture.frames_filtered",
                         help="frames removed by the FPGA filter/sampler").inc(
            self.stats.frames_filtered)

    def run_for(self, duration: float) -> None:
        """Convenience: schedule stop after ``duration`` (start first)."""
        if not self._active:
            self.start()
        self.sim.schedule(duration, self.stop)

    # -- dataplane ------------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        if not self._active:
            return
        if self.int_strip:
            frame, shim = peel(frame)
            if shim is not None:
                self.int_stamps.add(self.sim.now, shim)
        self.stats.frames_seen += 1
        self.stats.bytes_on_wire += frame.wire_len
        if self.method is CaptureMethod.TCPDUMP:
            kept = self._tcpdump.on_frame(frame.wire_len, self.sim.now)
            if not kept:
                self.stats.writer_drops += 1
            data = frame.captured_bytes(self.snaplen) if kept else None
        elif self.method is CaptureMethod.DPDK:
            kept = self._dpdk.on_frame(frame.wire_len, self.sim.now)
            if not kept:
                self.stats.ring_drops += 1
            data = frame.captured_bytes(self.snaplen) if kept else None
        else:  # FPGA front-end, then the DPDK writer
            processed = self._fpga.process(frame.captured_bytes(self.snaplen))
            if processed is None:
                # Filtered/sampled out by the card: not a loss.
                self.stats.frames_filtered += 1
                return
            kept = self._dpdk.on_frame(len(processed), self.sim.now)
            if not kept:
                self.stats.ring_drops += 1
            data = processed if kept else None
        if data is None:
            self.stats.frames_dropped += 1
            return
        if self.transform is not None:
            data = self.transform(data)
        if self._writer is not None:
            self._writer.write(PcapRecord(self.sim.now, data, orig_len=frame.wire_len))
        self.stats.frames_captured += 1
        self.stats.bytes_captured += len(data)
