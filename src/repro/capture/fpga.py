"""The Alveo FPGA offload model.

For line-rate capture Patchwork "offloads operations like sampling,
truncation, filtering, and pre-processing to Alveo FPGA cards" (Section
6.2.1); a P4 program compiled with the ESnet smart-NIC framework runs on
the card, and the host-side DPDK application only serializes what the
card lets through.

The card operates at line rate, so it introduces no loss of its own;
what it changes is the load the host sees:

* **filtering** removes non-matching frames entirely;
* **sampling** passes 1-in-N frames;
* **truncation** shrinks every frame to the capture length *before* it
  crosses PCIe, cutting both bus and writev pressure.

Pre-processing (the paper's close-to-source anonymization) is applied
to the frame bytes the host receives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.capture.dpdk import DpdkCaptureModel, LoadResult, OfferedLoad

FrameFilter = Callable[[bytes], bool]
FrameTransform = Callable[[bytes], bytes]


@dataclass
class FpgaOffloadConfig:
    """What the P4 bitstream is configured to do."""

    truncation: int = 200
    sample_one_in: int = 1
    frame_filter: Optional[FrameFilter] = None
    transform: Optional[FrameTransform] = None
    bitstream: str = "patchwork-esnet-smartnic"

    def __post_init__(self) -> None:
        if self.truncation <= 0:
            raise ValueError("truncation must be positive")
        if self.sample_one_in < 1:
            raise ValueError("sample_one_in must be >= 1")


class FpgaOffloadModel:
    """Line-rate front-end ahead of the DPDK writer."""

    def __init__(self, config: Optional[FpgaOffloadConfig] = None,
                 line_rate_bps: float = 100e9):
        self.config = config or FpgaOffloadConfig()
        self.line_rate_bps = line_rate_bps
        self.seen = 0
        self.passed = 0
        self.filtered = 0
        self.sampled_out = 0

    # -- per-frame path (online use) --------------------------------------

    def process(self, data: bytes) -> Optional[bytes]:
        """Run one frame through the card; None if it does not pass."""
        self.seen += 1
        config = self.config
        if config.frame_filter is not None and not config.frame_filter(data):
            self.filtered += 1
            return None
        if config.sample_one_in > 1 and (self.seen % config.sample_one_in) != 0:
            self.sampled_out += 1
            return None
        out = data[: config.truncation]
        if config.transform is not None:
            out = config.transform(out)
        self.passed += 1
        return out

    # -- load transformation (offline analysis) -------------------------------

    def host_load(self, offered: OfferedLoad, match_fraction: float = 1.0) -> OfferedLoad:
        """The load the DPDK writer sees after offload.

        ``match_fraction`` is the filter's pass rate.  The FPGA truncates
        in hardware, so the host-side frame size becomes the truncation
        length (this is what makes FPGA-assisted capture cheaper than
        raw DPDK for the same wire rate).
        """
        if not 0.0 <= match_fraction <= 1.0:
            raise ValueError("match_fraction must be a fraction")
        pass_pps = offered.pps * match_fraction / self.config.sample_one_in
        host_frame = min(self.config.truncation, offered.frame_bytes)
        return OfferedLoad(
            rate_bps=pass_pps * host_frame * 8.0,
            frame_bytes=host_frame,
            duration=offered.duration,
        )

    def offer_through(self, writer: DpdkCaptureModel, offered: OfferedLoad,
                      match_fraction: float = 1.0) -> LoadResult:
        """Evaluate an offered wire load end-to-end (card + writer).

        Frames beyond the card's line rate never arrive (the mirror
        port cannot exceed it), so the card itself is lossless; the
        result is the writer's outcome on the reduced load.
        """
        return writer.offer(self.host_load(offered, match_fraction))
