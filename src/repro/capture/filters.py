"""Capture filters: a small BPF-like predicate language.

The paper's first requirement for usable port mirroring is "filtering
to exclude unwanted traffic", and the FPGA path "offloads operations
like sampling, truncation, filtering".  This module provides the filter
expression language both software capture and the FPGA offload config
accept -- a deliberately tcpdump-flavoured subset:

========================  =========================================
``tcp`` / ``udp`` / ...    protocol presence (any dissected layer)
``port 443``               TCP/UDP source or destination port
``src 10.0.0.1``           IP source address
``dst 10.0.0.2``           IP destination address
``host 10.0.0.1``          IP source or destination
``vlan 100``               802.1Q VLAN ID present in the tag stack
``mpls 16001``             MPLS label present in the stack
``ip`` / ``ip6``           IPv4 / IPv6
``not EXPR``               negation
``EXPR and EXPR``          conjunction (binds tighter than ``or``)
``EXPR or EXPR``           disjunction
``( EXPR )``               grouping
==========================================================

Compilation produces a plain ``bytes -> bool`` predicate (frames are
dissected once per evaluation), directly usable as
:class:`~repro.capture.session.CaptureSession`'s or
:class:`~repro.capture.fpga.FpgaOffloadConfig`'s ``frame_filter``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis.acap import AcapRecord, abstract
from repro.analysis.dissect import Dissector

FramePredicate = Callable[[bytes], bool]
RecordPredicate = Callable[[AcapRecord], bool]

_TOKEN_RE = re.compile(r"\(|\)|[\w.:]+")

_PROTO_KEYWORDS = {
    "tcp", "udp", "icmp", "arp", "tls", "ssh", "dns", "http", "ntp",
    "iperf", "eth", "vlan", "mpls", "pw", "data",
}


class FilterSyntaxError(ValueError):
    """The filter expression could not be parsed."""


@dataclass
class CaptureFilter:
    """A compiled filter: evaluate on raw frames or acap records."""

    expression: str
    _record_predicate: RecordPredicate

    _dissector = Dissector()

    def matches_record(self, record: AcapRecord) -> bool:
        return self._record_predicate(record)

    def __call__(self, data: bytes) -> bool:
        dissected = self._dissector.dissect(data)
        record = abstract(dissected, 0.0, max(len(data), 1), len(data))
        return self._record_predicate(record)


def compile_filter(expression: str) -> CaptureFilter:
    """Parse and compile a filter expression.

    >>> f = compile_filter("vlan 100 and tcp and not port 22")
    """
    tokens = _TOKEN_RE.findall(expression.lower())
    if not tokens:
        raise FilterSyntaxError("empty filter expression")
    parser = _Parser(tokens)
    predicate = parser.parse_or()
    if parser.peek() is not None:
        raise FilterSyntaxError(f"unexpected token {parser.peek()!r}")
    return CaptureFilter(expression=expression, _record_predicate=predicate)


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise FilterSyntaxError("unexpected end of expression")
        self.position += 1
        return token

    # Grammar: or := and ("or" and)* ; and := unary ("and" unary)* ;
    #          unary := "not" unary | "(" or ")" | primitive

    def parse_or(self) -> RecordPredicate:
        left = self.parse_and()
        while self.peek() == "or":
            self.take()
            right = self.parse_and()
            left = _or(left, right)
        return left

    def parse_and(self) -> RecordPredicate:
        left = self.parse_unary()
        while self.peek() == "and":
            self.take()
            right = self.parse_unary()
            left = _and(left, right)
        return left

    def parse_unary(self) -> RecordPredicate:
        token = self.peek()
        if token == "not":
            self.take()
            inner = self.parse_unary()
            return lambda r: not inner(r)
        if token == "(":
            self.take()
            inner = self.parse_or()
            if self.take() != ")":
                raise FilterSyntaxError("missing closing parenthesis")
            return inner
        return self.parse_primitive()

    def parse_primitive(self) -> RecordPredicate:
        token = self.take()
        if token == "ip":
            return lambda r: r.ip_version == 4
        if token == "ip6":
            return lambda r: r.ip_version == 6
        if token == "port":
            port = self._int_argument("port")
            return lambda r, p=port: p in (r.sport, r.dport)
        # "vlan"/"mpls" are both presence tests ("vlan") and
        # parameterized ("vlan 100"); a numeric lookahead disambiguates.
        if token == "vlan" and self._next_is_number():
            vid = self._int_argument("vlan")
            return lambda r, v=vid: v in r.vlan_ids
        if token == "mpls" and self._next_is_number():
            label = self._int_argument("mpls")
            return lambda r, l=label: l in r.mpls_labels
        if token in _PROTO_KEYWORDS:
            return lambda r, name=token: name in r.stack
        if token == "src":
            addr = self.take()
            return lambda r, a=addr: r.src == a
        if token == "dst":
            addr = self.take()
            return lambda r, a=addr: r.dst == a
        if token == "host":
            addr = self.take()
            return lambda r, a=addr: a in (r.src, r.dst)
        raise FilterSyntaxError(f"unknown filter keyword {token!r}")

    def _next_is_number(self) -> bool:
        token = self.peek()
        return token is not None and token.isdigit()

    def _int_argument(self, keyword: str) -> int:
        token = self.take()
        try:
            return int(token)
        except ValueError:
            raise FilterSyntaxError(
                f"{keyword} expects a number, got {token!r}") from None


def _and(a: RecordPredicate, b: RecordPredicate) -> RecordPredicate:
    return lambda r: a(r) and b(r)


def _or(a: RecordPredicate, b: RecordPredicate) -> RecordPredicate:
    return lambda r: a(r) or b(r)
