"""The DPDK kernel-bypass capture model (paper Sections 8.1.3-8.1.4).

Patchwork's custom DPDK application polls NIC Rx queues on dedicated
cores, truncates each frame, and appends batches to a pcap file through
the filesystem (whose page-cache behaviour is modelled in
:mod:`repro.capture.storage`).

The multicore packet-rate envelope is calibrated against the paper's
measured host (16 cores, 128 GB RAM, single NUMA node; Tables 1-2):

* capacity in packets/s is ``A(trunc) * cores ** alpha(trunc)``;
* truncating to 64 B instead of 200 B both raises per-core throughput
  and improves scaling, because the per-packet writev payload shrinks
  ("the more data written per packet, the greater is this minimum
  latency");
* capture is CPU-bound until the page cache crosses the write-back
  throttle midpoint, at which point the writer stalls and loss follows
  (Appendix B's 8-9 second budget at 100 Gbps).

The anchor points (A, alpha) were fitted so that the published rows of
Tables 1 and 2 fall at the observed core counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.capture.storage import PageCacheModel
from repro.util.rng import derive_rng

# Calibration anchors: (truncation bytes, A in Mpps, alpha).
_ANCHOR_64 = (64.0, 3.60, 0.765)
_ANCHOR_200 = (200.0, 3.36, 0.562)

MAX_WORKER_CORES = 15  # one core of the 16 is reserved for the OS


@dataclass(frozen=True)
class OfferedLoad:
    """A constant synthetic load (what DPDK Pktgen generates)."""

    rate_bps: float
    frame_bytes: int
    duration: float = 10.0

    @property
    def pps(self) -> float:
        return self.rate_bps / (self.frame_bytes * 8.0)

    @property
    def frames(self) -> float:
        return self.pps * self.duration


@dataclass(frozen=True)
class LoadResult:
    """Outcome of offering a load to a capture configuration."""

    offered: OfferedLoad
    cores: int
    truncation: int
    capacity_pps: float
    loss_percent: float
    throttled: bool

    @property
    def achieved_rate_bps(self) -> float:
        return self.offered.rate_bps * (1.0 - self.loss_percent / 100.0)

    @property
    def acceptable(self) -> bool:
        """The paper's implicit success criterion: loss below 1 %."""
        return self.loss_percent < 1.0


def _interpolate(truncation: int) -> tuple:
    """(A, alpha) for a truncation length, between the fitted anchors."""
    t = float(np.clip(truncation, 32, 512))
    t0, a0, alpha0 = _ANCHOR_64
    t1, a1, alpha1 = _ANCHOR_200
    w = (t - t0) / (t1 - t0)
    return a0 + w * (a1 - a0), alpha0 + w * (alpha1 - alpha0)


class DpdkCaptureModel:
    """Multicore DPDK capture + pcap-writer performance model."""

    def __init__(
        self,
        cores: int = 5,
        truncation: int = 200,
        rx_queue_depth: int = 4096,
        storage: Optional[PageCacheModel] = None,
        seed: int = 99,
    ):
        if cores < 1:
            raise ValueError("need at least one core")
        if not 1 <= rx_queue_depth <= 65536:
            raise ValueError("implausible rx queue depth")
        self.cores = cores
        self.truncation = truncation
        self.rx_queue_depth = rx_queue_depth
        self.storage = storage
        self.rng = derive_rng(seed, f"dpdk/{cores}/{truncation}/{rx_queue_depth}")
        # Online state: Rx queue occupancy drained at the capacity rate.
        self._backlog_packets = 0.0
        self._last_time = 0.0
        self.received = 0
        self.captured = 0
        self.dropped = 0

    # -- capacity ------------------------------------------------------------

    def capacity_pps(self, cores: Optional[int] = None) -> float:
        """Sustainable packet rate for this truncation at ``cores``."""
        c = cores if cores is not None else self.cores
        a_mpps, alpha = _interpolate(self.truncation)
        return a_mpps * 1e6 * c ** alpha

    def max_rate_bps(self, frame_bytes: int, cores: Optional[int] = None) -> float:
        """Highest acceptable line rate for a frame size."""
        return self.capacity_pps(cores) * frame_bytes * 8.0

    def write_rate_Bps(self, offered: OfferedLoad) -> float:
        """Bytes/s the pcap writer pushes into the page cache."""
        per_frame = min(self.truncation, offered.frame_bytes) + 16  # pcap record header
        return offered.pps * per_frame

    # -- evaluation ------------------------------------------------------------

    def offer(self, offered: OfferedLoad) -> LoadResult:
        """Steady-state result of a constant offered load.

        Loss has three contributors: CPU overload (offered > capacity),
        page-cache throttling (the run outlives the write-back budget),
        and a small microburst residue that shrinks with Rx queue depth.
        """
        capacity = self.capacity_pps()
        utilization = offered.pps / capacity
        loss_fraction = 0.0
        throttled = False
        if utilization > 1.0:
            loss_fraction += 1.0 - 1.0 / utilization
        if self.storage is not None:
            write_rate = self.write_rate_Bps(offered)
            # Above the background threshold the flusher works against
            # the writer; the cache only fills (and the midpoint throttle
            # only triggers) when writes outpace write-back.
            net_fill = write_rate - self.storage.flush_rate_Bps
            if net_fill > 0:
                budget = self.storage.seconds_until_throttle(net_fill)
                if offered.duration > budget:
                    throttled = True
                    # While throttled the writer advances at the flush rate.
                    stalled = offered.duration - budget
                    flush_fraction = self.storage.flush_rate_Bps / write_rate
                    loss_fraction += (stalled / offered.duration) * (1.0 - flush_fraction)
        # Microburst residue: sub-1% at sane utilizations, worse with
        # shallow Rx queues; reproducibly noisy like the tables' Loss column.
        depth_factor = np.sqrt(4096.0 / self.rx_queue_depth)
        residue = 0.001 * utilization ** 2 * depth_factor
        residue *= float(self.rng.uniform(0.5, 2.0))
        loss_fraction = float(np.clip(loss_fraction + residue, 0.0001, 1.0))
        return LoadResult(
            offered=offered,
            cores=self.cores,
            truncation=self.truncation,
            capacity_pps=capacity,
            loss_percent=loss_fraction * 100.0,
            throttled=throttled,
        )

    # -- online (simulation) path ------------------------------------------

    def on_frame(self, frame_bytes: int, now: float) -> bool:
        """Process one frame arrival inside the simulation.

        Returns True if the frame was enqueued and captured, False if
        the Rx queue overflowed.  The queue drains at the model's
        capacity; per-frame work is folded into that rate.
        """
        if now < self._last_time:
            raise ValueError("time went backwards")
        elapsed = now - self._last_time
        self._last_time = now
        self._backlog_packets = max(
            0.0, self._backlog_packets - elapsed * self.capacity_pps()
        )
        self.received += 1
        if self._backlog_packets + 1 > self.rx_queue_depth:
            self.dropped += 1
            return False
        self._backlog_packets += 1
        self.captured += 1
        return True

    def reset(self) -> None:
        """Clear online state between capture sessions."""
        self._backlog_packets = 0.0
        self._last_time = 0.0
        self.received = self.captured = self.dropped = 0

    def min_cores_for(self, offered: OfferedLoad, max_cores: int = MAX_WORKER_CORES) -> Optional[int]:
        """Fewest cores whose result is acceptable (<1 % loss), or None."""
        for cores in range(1, max_cores + 1):
            model = DpdkCaptureModel(
                cores, self.truncation, self.rx_queue_depth, self.storage
            )
            if model.offer(offered).acceptable:
                return cores
        return None
