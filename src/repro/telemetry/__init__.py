"""Switch telemetry: SNMP polling, time-series storage, MFlib queries.

FABRIC's Measurement Framework polls switch counters over SNMP into a
Prometheus database and exposes them through the MFlib API (paper
Section 3).  Patchwork uses this pipeline twice: the Section-5 study
characterizes network activity from 5-minute Tx/Rx rate samples, and at
runtime Patchwork queries recent port rates to pick the busiest port for
cycling and to detect mirroring congestion.

The reproduction keeps the same three stages:

* :class:`~repro.telemetry.snmp.SNMPPoller` walks every switch's port
  counters on a fixed interval (default 300 s, the paper's 5 minutes).
* :class:`~repro.telemetry.timeseries.CounterStore` stores the samples.
* :class:`~repro.telemetry.mflib.MFlib` answers rate/utilization/drop
  queries from the stored counters, never from live simulator state --
  like the real MFlib, it can only see what was polled.
"""

from repro.telemetry.timeseries import CounterSample, CounterStore
from repro.telemetry.snmp import SNMPPoller
from repro.telemetry.mflib import MFlib, PortRates
from repro.telemetry.netflow import NetFlowExporter, NetFlowRecord

__all__ = [
    "CounterSample",
    "CounterStore",
    "SNMPPoller",
    "MFlib",
    "PortRates",
    "NetFlowExporter",
    "NetFlowRecord",
]
