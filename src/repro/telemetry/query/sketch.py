"""Sketch reducers: count-min and heavy-hitter pre-aggregation.

Sonata-style telemetry compiles reduce stages into *sketches* so the
switch ships a compact, fixed-size summary per window instead of a full
counter dump.  Two sketches back :mod:`repro.telemetry.query`:

* :class:`CountMinSketch` -- the classic Cormode/Muthukrishnan
  structure.  ``width = ceil(e / epsilon)`` columns and
  ``depth = ceil(ln(1 / delta))`` rows give the standard guarantee:
  the estimate **never undercounts**, and overcounts by more than
  ``epsilon * total_weight`` with probability at most ``delta``.
* :class:`HeavyHitters` -- a top-k tracker over a count-min substrate:
  every update refreshes the key's estimate and the k largest keys are
  retained with deterministic ``(-estimate, key)`` ordering.

Determinism: hash rows use pairwise-independent multiply-add hashing
over the Mersenne prime ``2**61 - 1``.  The per-row coefficients are
drawn from :func:`repro.util.rng.derive_rng` under a caller-supplied
``(seed, label)`` pair, so the same query under the same campaign seed
hashes identically in every process -- sketch reports are byte-identical
across runs and across ``--shard-workers`` counts.  Key strings are
folded to integers with BLAKE2b, which is keyless and stable.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Tuple

from repro.util.rng import derive_rng

#: Modulus for the multiply-add hash family (a Mersenne prime, so the
#: ``mod p`` reduction is exact for 61-bit coefficients).
_MERSENNE_P = (1 << 61) - 1

#: Serialized counter size: a switch ships 32-bit column counters.
COUNTER_BYTES = 4

#: Fixed per-report framing: site/query ids, window bounds, frame count.
REPORT_HEADER_BYTES = 16

#: One serialized heavy-hitter entry: 8-byte key digest + 32-bit count.
HH_ENTRY_BYTES = 12


def key_to_int(key: str) -> int:
    """Fold a key string into a stable 64-bit integer (BLAKE2b)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class CountMinSketch:
    """A count-min sketch with deterministic, seed-derived hash rows."""

    def __init__(self, epsilon: float = 0.05, delta: float = 0.05,
                 seed: int = 0, label: str = "cm"):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        self.epsilon = epsilon
        self.delta = delta
        self.width = max(1, math.ceil(math.e / epsilon))
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        rng = derive_rng(seed, f"{label}/hash-rows")
        # Draw (a, b) per row; a must be nonzero for pairwise independence.
        self._rows: List[Tuple[int, int]] = [
            (int(rng.integers(1, _MERSENNE_P)), int(rng.integers(0, _MERSENNE_P)))
        ]
        for _ in range(self.depth - 1):
            self._rows.append((int(rng.integers(1, _MERSENNE_P)),
                               int(rng.integers(0, _MERSENNE_P))))
        self._table: List[List[int]] = [[0] * self.width
                                        for _ in range(self.depth)]
        self.total_weight = 0
        self.updates = 0

    def _columns(self, key: str) -> List[int]:
        x = key_to_int(key)
        return [((a * x + b) % _MERSENNE_P) % self.width
                for a, b in self._rows]

    def update(self, key: str, weight: int = 1) -> int:
        """Add ``weight`` to ``key``; returns the new estimate."""
        if weight < 0:
            raise ValueError("sketch weights cannot be negative")
        self.total_weight += weight
        self.updates += 1
        estimate: Optional[int] = None
        for row, column in enumerate(self._columns(key)):
            cell = self._table[row][column] + weight
            self._table[row][column] = cell
            if estimate is None or cell < estimate:
                estimate = cell
        return int(estimate or 0)

    def estimate(self, key: str) -> int:
        """Point estimate for ``key`` (never below the true count)."""
        return min(self._table[row][column]
                   for row, column in enumerate(self._columns(key)))

    def reset(self) -> None:
        """Zero the counters for the next window (tumbling windows)."""
        for row in self._table:
            for i in range(self.width):
                row[i] = 0
        self.total_weight = 0
        self.updates = 0

    @property
    def table_bytes(self) -> int:
        """Serialized size of the counter table a switch would ship."""
        return self.width * self.depth * COUNTER_BYTES

    def state(self) -> Tuple[Tuple[int, ...], ...]:
        """The raw counter table (for byte-identity assertions)."""
        return tuple(tuple(row) for row in self._table)

    def __repr__(self) -> str:
        return (f"<CountMinSketch {self.width}x{self.depth} "
                f"eps={self.epsilon} delta={self.delta}>")


class HeavyHitters:
    """Top-k keys by estimated weight, over a count-min substrate."""

    def __init__(self, k: int = 8, epsilon: float = 0.05,
                 delta: float = 0.05, seed: int = 0, label: str = "hh"):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.sketch = CountMinSketch(epsilon=epsilon, delta=delta,
                                     seed=seed, label=label)
        self._candidates: Dict[str, int] = {}

    def update(self, key: str, weight: int = 1) -> None:
        estimate = self.sketch.update(key, weight)
        self._candidates[key] = estimate
        if len(self._candidates) > 2 * self.k:
            self._prune()

    def _prune(self) -> None:
        keep = sorted(self._candidates.items(),
                      key=lambda item: (-item[1], item[0]))[: self.k]
        self._candidates = dict(keep)

    def top(self) -> List[Tuple[str, int]]:
        """The k heaviest keys, ordered by ``(-estimate, key)``."""
        return sorted(self._candidates.items(),
                      key=lambda item: (-item[1], item[0]))[: self.k]

    def reset(self) -> None:
        self.sketch.reset()
        self._candidates = {}

    @property
    def total_weight(self) -> int:
        return self.sketch.total_weight

    @property
    def report_bytes(self) -> int:
        """A heavy-hitter report ships only the top-k entries."""
        return len(self.top()) * HH_ENTRY_BYTES

    def __repr__(self) -> str:
        return f"<HeavyHitters k={self.k} over {self.sketch!r}>"
