"""The declarative query language: ``Query(...).filter(...).map(...).reduce(...)``.

A telemetry query is a Sonata-style dataflow over the frames crossing a
set of switch channels::

    plan = (Query("egress-load")
            .filter(("direction", "==", "tx"))
            .map(key="port", value="wire_len")
            .reduce("count-min", epsilon=0.05, delta=0.05)
            .every(1.0)
            .watch(ports=("p-mirror",), directions=("tx",)))

The builder produces an immutable :class:`QueryPlan`; the compiler in
:mod:`repro.telemetry.query.operators` lowers the plan into incremental
operators that run switch-side in the netsim dataplane.  Keeping the
plan declarative (tuples and strings, no callables) is what makes it
journal-able and byte-stable: the compiled operators are a pure function
of ``(plan, campaign seed, site)``.

Frame fields available to ``filter``/``map`` stages (see
:class:`FrameView`): ``port``, ``direction``, ``wire_len``, ``src_mac``,
``dst_mac``, ``ethertype``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Fields a predicate or map stage may reference.
FRAME_FIELDS = ("port", "direction", "wire_len", "src_mac", "dst_mac",
                "ethertype")

#: Comparison operators a filter predicate may use.
FILTER_OPS = ("==", "!=", "in", ">", ">=", "<", "<=")

#: Reduce stages the compiler knows how to lower.
REDUCE_KINDS = ("sum", "count-min", "heavy-hitter")

#: Value expressions a map stage may aggregate.
MAP_VALUES = ("wire_len", "frames")


@dataclass(frozen=True)
class FilterSpec:
    """One declarative predicate: ``field <op> value``."""

    fld: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.fld not in FRAME_FIELDS:
            raise ValueError(f"unknown frame field {self.fld!r}; "
                             f"expected one of {FRAME_FIELDS}")
        if self.op not in FILTER_OPS:
            raise ValueError(f"unknown filter op {self.op!r}; "
                             f"expected one of {FILTER_OPS}")
        if self.op == "in" and not isinstance(self.value, (tuple, frozenset)):
            object.__setattr__(self, "value", tuple(self.value))


@dataclass(frozen=True)
class MapSpec:
    """The map stage: group frames by ``key``, aggregate ``value``."""

    key: str
    value: str = "wire_len"

    def __post_init__(self) -> None:
        if self.key not in FRAME_FIELDS:
            raise ValueError(f"unknown map key {self.key!r}")
        if self.value not in MAP_VALUES:
            raise ValueError(f"unknown map value {self.value!r}; "
                             f"expected one of {MAP_VALUES}")


@dataclass(frozen=True)
class ReduceSpec:
    """The reduce stage and its sketch parameters."""

    kind: str
    epsilon: float = 0.05
    delta: float = 0.05
    k: int = 8

    def __post_init__(self) -> None:
        if self.kind not in REDUCE_KINDS:
            raise ValueError(f"unknown reduce kind {self.kind!r}; "
                             f"expected one of {REDUCE_KINDS}")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if self.k < 1:
            raise ValueError("k must be at least 1")


@dataclass(frozen=True)
class QueryPlan:
    """A fully-specified, immutable telemetry query."""

    name: str
    filters: Tuple[FilterSpec, ...]
    map: MapSpec
    reduce: ReduceSpec
    window: float
    ports: Tuple[str, ...] = ()
    directions: Tuple[str, ...] = ("tx",)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("query needs a name")
        if self.window <= 0:
            raise ValueError("query window must be positive")
        for direction in self.directions:
            if direction not in ("rx", "tx"):
                raise ValueError(f"bad watch direction {direction!r}")

    def describe(self) -> str:
        """A one-line human-readable rendering of the plan."""
        preds = " and ".join(f"{f.fld} {f.op} {f.value!r}"
                             for f in self.filters) or "true"
        return (f"{self.name}: filter({preds}) | "
                f"map(key={self.map.key}, value={self.map.value}) | "
                f"reduce({self.reduce.kind}) every {self.window}s")


class Query:
    """Fluent builder for :class:`QueryPlan`.

    Each method returns ``self`` so stages chain; :meth:`build` (or any
    compiler entry point) freezes the result.  A query must have a map
    and a reduce stage; filters, window, and watch scope have defaults.
    """

    def __init__(self, name: str):
        self._name = name
        self._filters: list = []
        self._map: MapSpec | None = None
        self._reduce: ReduceSpec | None = None
        self._window = 1.0
        self._ports: Tuple[str, ...] = ()
        self._directions: Tuple[str, ...] = ("tx",)

    def filter(self, *predicates: Tuple[str, str, object]) -> "Query":
        """Add ``(field, op, value)`` predicates (AND-ed together)."""
        for fld, op, value in predicates:
            self._filters.append(FilterSpec(fld, op, value))
        return self

    def map(self, key: str, value: str = "wire_len") -> "Query":
        """Group by ``key``; aggregate ``value`` per group."""
        self._map = MapSpec(key, value)
        return self

    def reduce(self, kind: str, epsilon: float = 0.05, delta: float = 0.05,
               k: int = 8) -> "Query":
        """Choose the reducer: ``sum``, ``count-min`` or ``heavy-hitter``."""
        self._reduce = ReduceSpec(kind, epsilon, delta, k)
        return self

    def every(self, window: float) -> "Query":
        """Tumbling-window period in sim seconds."""
        self._window = float(window)
        return self

    def watch(self, ports: Tuple[str, ...] = (),
              directions: Tuple[str, ...] = ("tx",)) -> "Query":
        """Restrict the query to specific switch ports / directions.

        An empty ``ports`` tuple means "every port on the switch" --
        the runtime expands it at install time.
        """
        self._ports = tuple(ports)
        self._directions = tuple(directions)
        return self

    def build(self) -> QueryPlan:
        if self._map is None:
            raise ValueError(f"query {self._name!r} is missing a map stage")
        if self._reduce is None:
            raise ValueError(f"query {self._name!r} is missing a reduce stage")
        return QueryPlan(
            name=self._name,
            filters=tuple(self._filters),
            map=self._map,
            reduce=self._reduce,
            window=self._window,
            ports=self._ports,
            directions=self._directions,
        )


@dataclass
class FrameView:
    """Lazily-derived frame fields the operators evaluate against.

    The view is built once per tap callback and shared by every query
    watching that channel, so header parsing happens at most once per
    frame regardless of how many queries are installed.
    """

    port: str
    direction: str
    wire_len: int
    head: bytes = field(repr=False, default=b"")

    @property
    def dst_mac(self) -> str:
        return self.head[0:6].hex() if len(self.head) >= 6 else ""

    @property
    def src_mac(self) -> str:
        return self.head[6:12].hex() if len(self.head) >= 12 else ""

    @property
    def ethertype(self) -> int:
        if len(self.head) >= 14:
            return int.from_bytes(self.head[12:14], "big")
        return 0

    def value(self, fld: str) -> object:
        return getattr(self, fld)
