"""Congestion detectors driven by the streaming-telemetry paths.

Both detectors answer the same question as the SNMP-based
:class:`repro.core.congestion.CongestionDetector` -- "did this sample
window overload the mirror-egress port?" -- so all three are judged
against the identical ledger ground truth
(:attr:`SampleLedger.mirror_overloaded_truth`).  What differs is the
signal, and therefore the *latency to detect* and the *telemetry bytes*
each pays:

* **sketch-report**: the ``egress-load`` query meters bytes offered to
  the mirror-destination Tx channel per window; a window whose offered
  rate exceeds the line rate flags overload.  Evidence arrives at window
  boundaries (seconds), not poll boundaries (minutes).
* **in-band**: stamped clones carry egress-queue occupancy to the
  capture host; the first stamp at/above the occupancy threshold flags
  overload the moment it *arrives* -- no window to wait out at all.

Every check returns a :class:`DetectorReading`; the instance attaches
the readings of all three detectors to the sample's ledger row, where
:func:`repro.obs.ledger.detector_scorecards_from_ledgers` turns them
into the three-way scorecard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.telemetry.query.inband import StampLog
from repro.telemetry.query.operators import SketchReport

#: Query name the sketch detector consumes.
EGRESS_LOAD_QUERY = "egress-load"


@dataclass(frozen=True)
class DetectorReading:
    """One detector's answer for one sample window."""

    name: str
    overloaded: Optional[bool]      # None = signal could not answer
    latency: Optional[float]        # seconds from window start; None
                                    # unless overloaded is True
    telemetry_bytes: int            # signal cost charged to this sample

    def to_dict(self) -> Dict[str, object]:
        return {
            "overloaded": self.overloaded,
            "latency": self.latency,
            "bytes": self.telemetry_bytes,
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, object]) -> "DetectorReading":
        latency = data.get("latency")
        return cls(
            name=name,
            overloaded=data.get("overloaded"),
            latency=float(latency) if latency is not None else None,
            telemetry_bytes=int(data.get("bytes", 0)),
        )


class SketchCongestionDetector:
    """Flags overload from periodic ``egress-load`` sketch reports."""

    name = "sketch"

    def __init__(self, headroom: float = 1.0):
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        self.headroom = headroom

    def check(self, reports: Iterable[SketchReport], dest_port: str,
              dest_rate_bps: float, start: float, end: float) -> DetectorReading:
        """Scan the sample's reports for an over-rate window.

        ``reports`` is every sketch report the runtime shipped for this
        sample (any query); only ``egress-load`` windows overlapping
        ``[start, end]`` are consulted, but *all* report bytes shipped in
        the window are charged -- the switch sent them whether or not the
        detector used them.
        """
        total_bytes = 0
        overloaded = False
        latency: Optional[float] = None
        consulted = 0
        for report in reports:
            if report.window_end <= start or report.window_start >= end:
                continue
            total_bytes += report.report_bytes
            if report.query != EGRESS_LOAD_QUERY:
                continue
            consulted += 1
            duration = report.window_end - report.window_start
            if duration <= 0:
                continue
            est_bytes = report.estimate(dest_port)
            rate_bps = est_bytes * 8.0 / duration
            if rate_bps > dest_rate_bps * self.headroom and not overloaded:
                overloaded = True
                # The evidence exists only once the window closes.
                latency = report.window_end - start
        if consulted == 0:
            return DetectorReading(self.name, None, None, total_bytes)
        return DetectorReading(self.name, overloaded, latency, total_bytes)


class InbandCongestionDetector:
    """Flags overload from in-band occupancy stamps.

    The default threshold sits well below saturation on purpose: a
    stamp that would read ~1.0 occupancy rides a frame the full queue
    is about to tail-drop, so near-saturation stamps rarely *survive*
    to the capture host (survivor bias).  Healthy mirrors run their
    egress queue nearly empty -- clean traffic stamps read well under
    0.2 occupancy -- so 0.6 keeps a wide margin on both sides.
    """

    name = "inband"

    def __init__(self, occupancy_threshold: float = 0.6):
        if not 0.0 < occupancy_threshold <= 1.0:
            raise ValueError("occupancy threshold must be in (0, 1]")
        self.threshold_milli = int(round(occupancy_threshold * 1000))

    def check(self, stamps: StampLog, frames_seen: int, start: float,
              end: float) -> DetectorReading:
        """Judge the sample from the stamps its capture host peeled.

        With zero frames seen the in-band channel carried no signal at
        all (mirror dead or window empty): unanswerable.  Frames without
        stamps mean the stamper ran and saw low occupancy throughout --
        a confident "not overloaded" is only claimed when at least one
        stamp arrived; otherwise the signal is absent and the reading is
        unanswerable rather than a blind negative.
        """
        if frames_seen == 0 or len(stamps) == 0:
            return DetectorReading(self.name, None, None,
                                   stamps.telemetry_bytes)
        crossing = stamps.first_crossing(self.threshold_milli)
        if crossing is None:
            return DetectorReading(self.name, False, None,
                                   stamps.telemetry_bytes)
        return DetectorReading(self.name, True, max(0.0, crossing - start),
                               stamps.telemetry_bytes)


def snmp_reading(verdict_overloaded: Optional[bool], latency: Optional[float],
                 telemetry_bytes: int) -> DetectorReading:
    """Wrap the existing SNMP verdict in the common reading shape."""
    if not verdict_overloaded:
        latency = None
    return DetectorReading("snmp", verdict_overloaded, latency,
                           telemetry_bytes)
