"""Query-driven streaming telemetry.

Three layers, built to beat 5-minute SNMP polling on the
latency-to-detect vs telemetry-bytes tradeoff:

1. A declarative query language (:mod:`~repro.telemetry.query.plan`)
   compiled into incremental switch-side operators with sketch
   pre-aggregation (:mod:`~repro.telemetry.query.operators`,
   :mod:`~repro.telemetry.query.sketch`).
2. An INT-style in-band path stamping per-frame egress queue state into
   a telemetry shim (:mod:`~repro.telemetry.query.inband`).
3. Congestion detectors over both streams
   (:mod:`~repro.telemetry.query.detectors`), scored on the same ledger
   ground truth as the SNMP verdict.
"""

from repro.telemetry.query.detectors import (
    EGRESS_LOAD_QUERY,
    DetectorReading,
    InbandCongestionDetector,
    SketchCongestionDetector,
    snmp_reading,
)
from repro.telemetry.query.inband import (
    SHIM_LEN,
    IntStamper,
    StampLog,
    TelemetryShim,
    peel,
)
from repro.telemetry.query.operators import (
    CompiledQuery,
    QueryRuntime,
    SketchReport,
    compile_plan,
)
from repro.telemetry.query.plan import Query, QueryPlan
from repro.telemetry.query.sketch import CountMinSketch, HeavyHitters

__all__ = [
    "EGRESS_LOAD_QUERY",
    "SHIM_LEN",
    "CompiledQuery",
    "CountMinSketch",
    "DetectorReading",
    "HeavyHitters",
    "InbandCongestionDetector",
    "IntStamper",
    "Query",
    "QueryPlan",
    "QueryRuntime",
    "SketchCongestionDetector",
    "SketchReport",
    "StampLog",
    "TelemetryShim",
    "compile_plan",
    "peel",
    "snmp_reading",
]
