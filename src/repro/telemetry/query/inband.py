"""The INT-style in-band telemetry path.

"Millions of Little Minions"-style in-band state: the mirror-egress
switch appends a small telemetry shim to (a deterministic subsample of)
the mirrored clones it emits, recording the egress queue state *at the
moment the clone was offered*.  The capture host peels the shim off
before any snaplen/pcap processing -- the captured bytes stay identical
to a run without stamping -- and publishes the stamps as an in-band
congestion signal.

Shim layout (:data:`SHIM_LEN` = 20 bytes, appended to the frame tail)::

    0  2   magic   0xC2 0x1A
    2  1   version 1
    3  1   flags   (reserved, 0)
    4  8   t_ns    stamp sim-time in integer nanoseconds
    12 4   queue_depth_bytes   egress queue depth when offered
    16 2   occupancy_milli     round(1000 * (depth + wire_len) / limit),
                               saturated at 1000
    18 2   port_hash           16-bit BLAKE2b fold of the egress port id

The stamp rides the frame through the egress queue, so a stamped frame
that is tail-dropped takes its evidence with it -- exactly the bias a
real in-band scheme has, and one reason the detector thresholds on
occupancy rather than waiting for a "queue full" stamp that may never
arrive.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.netsim.frame import Frame

#: struct layout: magic, version, flags, t_ns, depth, occupancy, port.
_SHIM_STRUCT = struct.Struct("!2sBBQIHH")
SHIM_MAGIC = b"\xc2\x1a"
SHIM_VERSION = 1
SHIM_LEN = _SHIM_STRUCT.size  # 20 bytes


def _port_hash(port_id: str) -> int:
    digest = hashlib.blake2b(port_id.encode("utf-8"), digest_size=2).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class TelemetryShim:
    """One decoded in-band stamp."""

    t: float
    queue_depth_bytes: int
    occupancy_milli: int
    port_hash: int

    @property
    def occupancy(self) -> float:
        """Queue occupancy as a fraction of the egress queue limit."""
        return self.occupancy_milli / 1000.0

    def encode(self) -> bytes:
        return _SHIM_STRUCT.pack(
            SHIM_MAGIC,
            SHIM_VERSION,
            0,
            int(round(self.t * 1e9)),
            self.queue_depth_bytes,
            self.occupancy_milli,
            self.port_hash,
        )

    @classmethod
    def decode(cls, blob: bytes) -> Optional["TelemetryShim"]:
        if len(blob) != SHIM_LEN:
            return None
        magic, version, _flags, t_ns, depth, occupancy, port = \
            _SHIM_STRUCT.unpack(blob)
        if magic != SHIM_MAGIC or version != SHIM_VERSION:
            return None
        return cls(t=t_ns / 1e9, queue_depth_bytes=depth,
                   occupancy_milli=occupancy, port_hash=port)


def peel(frame: Frame) -> Tuple[Frame, Optional[TelemetryShim]]:
    """Strip a trailing shim from ``frame`` if one is present.

    Returns ``(clean_frame, shim)``.  Frames without a valid shim come
    back unchanged with ``shim=None``, so the capture path can call this
    unconditionally.  The clean frame restores the original ``wire_len``
    and head bytes, keeping pcap output byte-identical to an unstamped
    run.
    """
    if len(frame.head) < SHIM_LEN or frame.wire_len < SHIM_LEN + 1:
        return frame, None
    shim = TelemetryShim.decode(frame.head[-SHIM_LEN:])
    if shim is None:
        return frame, None
    clean = Frame(
        wire_len=frame.wire_len - SHIM_LEN,
        head=frame.head[:-SHIM_LEN],
        created_at=frame.created_at,
        flow_id=frame.flow_id,
        slice_id=frame.slice_id,
        site=frame.site,
    )
    return clean, shim


class IntStamper:
    """Stamps every k-th mirrored clone with egress queue state.

    Installed on a :class:`~repro.testbed.switch.Switch` as
    ``switch.int_stamper``; the mirror tap consults it when cloning.
    ``stamp_every=1`` stamps every clone (maximum signal, maximum
    overhead); the default subsamples 1-in-8, which is still dozens of
    stamps per congested window at paper frame rates.  The first clone
    per egress port is always stamped so short windows are never blind.
    """

    def __init__(self, stamp_every: int = 8):
        if stamp_every < 1:
            raise ValueError("stamp_every must be at least 1")
        self.stamp_every = stamp_every
        self._counters: dict = {}
        self.frames_stamped = 0
        self.frames_seen = 0

    def reset(self) -> None:
        self._counters = {}
        self.frames_stamped = 0
        self.frames_seen = 0

    def stamp(self, clone: Frame, dest_port_id: str, now: float,
              queue_depth_bytes: int, queue_limit_bytes: int) -> Frame:
        """Maybe append a shim to ``clone``; returns the frame to offer.

        ``queue_depth_bytes`` is the egress queue depth *before* this
        clone is enqueued; occupancy counts the clone itself, so a clone
        that would land exactly at the limit reads 1000 milli.
        """
        self.frames_seen += 1
        count = self._counters.get(dest_port_id, 0)
        self._counters[dest_port_id] = count + 1
        if count % self.stamp_every != 0:
            return clone
        self.frames_stamped += 1
        fill = queue_depth_bytes + clone.wire_len
        if queue_limit_bytes > 0:
            occupancy_milli = min(1000, int(round(1000.0 * fill / queue_limit_bytes)))
        else:
            occupancy_milli = 1000
        shim = TelemetryShim(
            t=now,
            queue_depth_bytes=queue_depth_bytes,
            occupancy_milli=occupancy_milli,
            port_hash=_port_hash(dest_port_id),
        )
        return Frame(
            wire_len=clone.wire_len + SHIM_LEN,
            head=clone.head + shim.encode(),
            created_at=clone.created_at,
            flow_id=clone.flow_id,
            slice_id=clone.slice_id,
            site=clone.site,
        )


@dataclass
class StampRecord:
    """One shim as observed at the capture host."""

    arrival_t: float
    shim: TelemetryShim


class StampLog:
    """Accumulates peeled shims for one capture sample."""

    def __init__(self) -> None:
        self.records: List[StampRecord] = []

    def add(self, arrival_t: float, shim: TelemetryShim) -> None:
        self.records.append(StampRecord(arrival_t, shim))

    def __len__(self) -> int:
        return len(self.records)

    @property
    def telemetry_bytes(self) -> int:
        """In-band overhead: every shim that reached the capture host."""
        return len(self.records) * SHIM_LEN

    def max_occupancy_milli(self) -> int:
        return max((r.shim.occupancy_milli for r in self.records), default=0)

    def first_crossing(self, threshold_milli: int) -> Optional[float]:
        """Arrival time of the first stamp at/above ``threshold_milli``."""
        for record in self.records:
            if record.shim.occupancy_milli >= threshold_milli:
                return record.arrival_t
        return None
