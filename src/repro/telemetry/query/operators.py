"""Compiling query plans into incremental switch-side operators.

:func:`compile_plan` lowers a :class:`~repro.telemetry.query.plan.QueryPlan`
into a :class:`CompiledQuery` -- the filter predicates become closures, the
map stage a field projection, and the reduce stage one of three
incremental state holders (exact sum dict, count-min sketch, heavy-hitter
sketch).  :class:`QueryRuntime` owns the compiled queries for one switch:
it taps the watched channels, tumbles the window on the simulator clock,
and ships one :class:`SketchReport` per non-empty window to a caller
supplied callback (the Patchwork instance journals them and feeds the
sketch-report congestion detector).

Operator placement is the point: the per-frame work runs *inside* the
dataplane (a channel tap, exactly like mirroring) and only the compact
window report leaves the switch -- the telemetry-bytes accounting in
:attr:`SketchReport.report_bytes` is what the tradeoff benchmark charges
each detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.engine import Event, Simulator
from repro.netsim.frame import Frame
from repro.netsim.link import Channel
from repro.telemetry.query.plan import (
    FilterSpec,
    FrameView,
    QueryPlan,
    ReduceSpec,
)
from repro.telemetry.query.sketch import (
    HH_ENTRY_BYTES,
    REPORT_HEADER_BYTES,
    CountMinSketch,
    HeavyHitters,
)


def _predicate(spec: FilterSpec) -> Callable[[FrameView], bool]:
    fld, op, value = spec.fld, spec.op, spec.value
    if op == "==":
        return lambda view: view.value(fld) == value
    if op == "!=":
        return lambda view: view.value(fld) != value
    if op == "in":
        members = frozenset(value) if not isinstance(value, frozenset) else value
        return lambda view: view.value(fld) in members
    if op == ">":
        return lambda view: view.value(fld) > value
    if op == ">=":
        return lambda view: view.value(fld) >= value
    if op == "<":
        return lambda view: view.value(fld) < value
    return lambda view: view.value(fld) <= value


@dataclass
class SketchReport:
    """One window's pre-aggregated summary, as shipped off-switch."""

    site: str
    query: str
    kind: str
    window_start: float
    window_end: float
    frames: int
    total_weight: int
    report_bytes: int
    #: ``(key, estimate)`` pairs in deterministic order.  Exhaustive for
    #: ``sum``, the full table is *not* shipped for count-min (only the
    #: watched keys' estimates, resolved at flush time), top-k for
    #: heavy-hitter.
    estimates: Tuple[Tuple[str, int], ...]

    def estimate(self, key: str) -> int:
        for k, v in self.estimates:
            if k == key:
                return v
        return 0

    def to_event(self) -> Dict[str, object]:
        """The journal payload (canonical key order comes from emit)."""
        return {
            "query": self.query,
            "reducer": self.kind,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "frames": self.frames,
            "total_weight": self.total_weight,
            "report_bytes": self.report_bytes,
            "estimates": [[k, v] for k, v in self.estimates],
        }


class _SumState:
    """Exact per-key sums -- the 'full counter dump' baseline reducer."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self.total_weight = 0

    def update(self, key: str, weight: int) -> None:
        self._counts[key] = self._counts.get(key, 0) + weight
        self.total_weight += weight

    def reset(self) -> None:
        self._counts = {}
        self.total_weight = 0

    def estimates(self, watched: Tuple[str, ...]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self._counts.items()))

    def report_bytes(self) -> int:
        return REPORT_HEADER_BYTES + len(self._counts) * HH_ENTRY_BYTES


class _CountMinState:
    """Count-min reducer: fixed-size table regardless of key cardinality."""

    def __init__(self, spec: ReduceSpec, seed: int, label: str) -> None:
        self.sketch = CountMinSketch(epsilon=spec.epsilon, delta=spec.delta,
                                     seed=seed, label=label)
        self._keys_seen: Dict[str, None] = {}

    @property
    def total_weight(self) -> int:
        return self.sketch.total_weight

    def update(self, key: str, weight: int) -> None:
        self.sketch.update(key, weight)
        self._keys_seen[key] = None

    def reset(self) -> None:
        self.sketch.reset()
        self._keys_seen = {}

    def estimates(self, watched: Tuple[str, ...]) -> Tuple[Tuple[str, int], ...]:
        # The report resolves point estimates for the watched keys (the
        # consumer-declared keys of interest); with no watch list, every
        # key seen this window is resolved -- still from sketch state, so
        # estimates carry the count-min overcount, never an undercount.
        keys = watched or tuple(sorted(self._keys_seen))
        return tuple((key, self.sketch.estimate(key)) for key in sorted(keys))

    def report_bytes(self) -> int:
        return REPORT_HEADER_BYTES + self.sketch.table_bytes


class _HeavyHitterState:
    """Heavy-hitter reducer: top-k entries only leave the switch."""

    def __init__(self, spec: ReduceSpec, seed: int, label: str) -> None:
        self.hh = HeavyHitters(k=spec.k, epsilon=spec.epsilon,
                               delta=spec.delta, seed=seed, label=label)

    @property
    def total_weight(self) -> int:
        return self.hh.total_weight

    def update(self, key: str, weight: int) -> None:
        self.hh.update(key, weight)

    def reset(self) -> None:
        self.hh.reset()

    def estimates(self, watched: Tuple[str, ...]) -> Tuple[Tuple[str, int], ...]:
        return tuple(self.hh.top())

    def report_bytes(self) -> int:
        return REPORT_HEADER_BYTES + self.hh.report_bytes


class CompiledQuery:
    """One plan lowered to incremental operators over a frame stream."""

    def __init__(self, plan: QueryPlan, site: str, seed: int):
        self.plan = plan
        self.site = site
        self._predicates = [_predicate(f) for f in plan.filters]
        label = f"telemetry/{site}/{plan.name}"
        if plan.reduce.kind == "sum":
            self._state: object = _SumState()
        elif plan.reduce.kind == "count-min":
            self._state = _CountMinState(plan.reduce, seed, label)
        else:
            self._state = _HeavyHitterState(plan.reduce, seed, label)
        self.frames_observed = 0

    def observe(self, view: FrameView) -> None:
        """The per-frame operator chain: filter -> map -> reduce."""
        for predicate in self._predicates:
            if not predicate(view):
                return
        self.frames_observed += 1
        key = str(view.value(self.plan.map.key))
        if self.plan.map.value == "frames":
            weight = 1
        else:
            weight = view.wire_len
        self._state.update(key, weight)

    def flush(self, window_start: float, window_end: float) -> Optional[SketchReport]:
        """Emit this window's report and reset for the next one.

        Empty windows (no frames matched) produce no report -- a real
        switch would suppress them too, and skipping them keeps journals
        compact and deterministic.
        """
        if self.frames_observed == 0:
            return None
        report = SketchReport(
            site=self.site,
            query=self.plan.name,
            kind=self.plan.reduce.kind,
            window_start=window_start,
            window_end=window_end,
            frames=self.frames_observed,
            total_weight=int(self._state.total_weight),
            report_bytes=int(self._state.report_bytes()),
            estimates=self._state.estimates(self.plan.ports),
        )
        self.reset()
        return report

    def reset(self) -> None:
        self.frames_observed = 0
        self._state.reset()


ReportSink = Callable[[SketchReport], None]


@dataclass
class _TapBinding:
    channel: Channel
    tap: Callable[[Frame], None]


class QueryRuntime:
    """Runs compiled queries switch-side and tumbles their windows.

    Lifecycle: :meth:`install` once per switch (adds the channel taps),
    :meth:`arm` at the start of each capture sample (resets sketch state
    and starts the window clock), :meth:`finalize` at sample end (force
    flushes the partial window and stops the clock).  Between samples the
    taps stay in place but :meth:`observe` returns immediately -- the
    operators only meter traffic while a sample is open, mirroring how
    the capture slots work.
    """

    def __init__(self, sim: Simulator, site: str, seed: int,
                 on_report: ReportSink):
        self.sim = sim
        self.site = site
        self.seed = seed
        self.on_report = on_report
        self.queries: List[CompiledQuery] = []
        self._bindings: List[_TapBinding] = []
        self._armed = False
        self._window_start = 0.0
        self._flush_event: Optional[Event] = None
        self.reports_emitted = 0
        self.report_bytes_total = 0

    # -- installation ----------------------------------------------------

    def install(self, switch, plans: List[QueryPlan]) -> None:
        """Compile ``plans`` and tap the watched channels on ``switch``."""
        for plan in plans:
            compiled = CompiledQuery(plan, self.site, self.seed)
            self.queries.append(compiled)
            port_ids = plan.ports or tuple(sorted(switch.ports))
            for port_id in port_ids:
                port = switch.ports[port_id]
                for direction in plan.directions:
                    channel = port.link.tx if direction == "tx" else port.link.rx
                    tap = self._make_tap(compiled, port_id, direction)
                    channel.add_tap(tap)
                    self._bindings.append(_TapBinding(channel, tap))

    def _make_tap(self, compiled: CompiledQuery, port_id: str,
                  direction: str) -> Callable[[Frame], None]:
        def tap(frame: Frame) -> None:
            if not self._armed:
                return
            view = FrameView(port=port_id, direction=direction,
                             wire_len=frame.wire_len, head=frame.head)
            compiled.observe(view)

        return tap

    def uninstall(self) -> None:
        """Remove every tap (instance teardown)."""
        for binding in self._bindings:
            binding.channel.remove_tap(binding.tap)
        self._bindings = []
        self.queries = []

    # -- window clock ----------------------------------------------------

    @property
    def window(self) -> float:
        return min(q.plan.window for q in self.queries) if self.queries else 1.0

    def arm(self, now: float) -> None:
        """Start metering: reset all sketch state, begin the first window."""
        if self._armed:
            return
        self._armed = True
        self._window_start = now
        for query in self.queries:
            query.reset()
        self._flush_event = self.sim.schedule_at(
            now + self.window, self._on_window)

    def _on_window(self) -> None:
        if not self._armed:
            return
        window_end = self.sim.now
        self._flush_window(self._window_start, window_end)
        self._window_start = window_end
        self._flush_event = self.sim.schedule_at(
            window_end + self.window, self._on_window)

    def _flush_window(self, start: float, end: float) -> None:
        for query in self.queries:
            report = query.flush(start, end)
            if report is not None:
                self.reports_emitted += 1
                self.report_bytes_total += report.report_bytes
                self.on_report(report)

    def finalize(self, now: float) -> None:
        """Stop metering; force-flush the partial window if non-empty."""
        if not self._armed:
            return
        self._armed = False
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        if now > self._window_start:
            self._flush_window(self._window_start, now)


def compile_plan(plan: QueryPlan, site: str, seed: int) -> CompiledQuery:
    """Lower one plan for one site (convenience for tests)."""
    return CompiledQuery(plan, site, seed)
