"""The MFlib-style query front-end.

FABRIC users query switch telemetry through MFlib; Patchwork uses it to
(a) rank ports by recent traffic for the busiest-port cycling heuristic,
(b) detect congestion at the mirror destination (is Mirrored(Tx) +
Mirrored(Rx) above the egress line rate?), and (c) drive the Section-5
network-activity study.

All answers are computed from *polled counters only*.  Rates are counter
deltas over the sample interval, just like PromQL ``rate()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.telemetry.timeseries import CounterSample, CounterStore


@dataclass(frozen=True)
class PortRates:
    """Average Tx/Rx rates of one port over one query window."""

    site: str
    port_id: str
    window_start: float
    window_end: float
    tx_bps: float
    rx_bps: float
    tx_drops: int
    rx_drops: int

    @property
    def total_bps(self) -> float:
        return self.tx_bps + self.rx_bps


class MFlib:
    """Rate and utilization queries over a counter store."""

    def __init__(self, store: CounterStore):
        self.store = store

    # -- rates ------------------------------------------------------------

    def port_rates(self, site: str, port_id: str, start: float, end: float) -> Optional[PortRates]:
        """Average rates between the polls nearest ``start`` and ``end``.

        Returns None when the window cannot be answered: fewer than two
        samples cover it (the counters were not polled often enough), or
        the window itself is degenerate (zero or negative duration, e.g.
        a caller bracketing an instantaneous event).  Degenerate windows
        are a query-data problem, not a programming error, so they get
        the same "telemetry cannot answer" None as a missing poll --
        never a zero-delta division.
        """
        if end <= start:
            return None
        first_tx = self._anchor(site, port_id, "tx_bytes", start, end)
        last_tx = self.store.latest_before(site, port_id, "tx_bytes", end)
        first_rx = self._anchor(site, port_id, "rx_bytes", start, end)
        last_rx = self.store.latest_before(site, port_id, "rx_bytes", end)
        if None in (first_tx, last_tx, first_rx, last_rx):
            return None
        if last_tx.time <= first_tx.time:
            return None
        interval = last_tx.time - first_tx.time
        tx_bps = self._increase(site, port_id, "tx_bytes",
                                first_tx.time, last_tx.time) * 8.0 / interval
        rx_bps = self._increase(site, port_id, "rx_bytes",
                                first_rx.time, last_rx.time) * 8.0 / interval
        tx_drops = self._delta(site, port_id, "tx_drops", first_tx.time, last_tx.time)
        rx_drops = self._delta(site, port_id, "rx_drops", first_tx.time, last_tx.time)
        return PortRates(
            site=site,
            port_id=port_id,
            window_start=first_tx.time,
            window_end=last_tx.time,
            tx_bps=tx_bps,
            rx_bps=rx_bps,
            tx_drops=int(tx_drops),
            rx_drops=int(rx_drops),
        )

    def all_port_rates(self, site: str, start: float, end: float) -> List[PortRates]:
        """Rates for every polled port at a site (skips unanswerable)."""
        rates = []
        for port_id in self.store.ports(site):
            r = self.port_rates(site, port_id, start, end)
            if r is not None:
                rates.append(r)
        return rates

    # -- rankings used by port cycling --------------------------------------

    def busiest_ports(
        self,
        site: str,
        start: float,
        end: float,
        restrict_to: Optional[Sequence[str]] = None,
    ) -> List[PortRates]:
        """Ports sorted by descending Tx+Rx rate over the window."""
        rates = self.all_port_rates(site, start, end)
        if restrict_to is not None:
            allowed = set(restrict_to)
            rates = [r for r in rates if r.port_id in allowed]
        return sorted(rates, key=lambda r: (-r.total_bps, r.port_id))

    def non_idle_ports(
        self,
        site: str,
        start: float,
        end: float,
        idle_threshold_bps: float = 1_000.0,
        restrict_to: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Port ids whose Tx+Rx rate exceeded the idle threshold."""
        return [
            r.port_id
            for r in self.busiest_ports(site, start, end, restrict_to)
            if r.total_bps > idle_threshold_bps
        ]

    # -- drop / congestion queries ------------------------------------------

    def drop_delta(self, site: str, port_id: str, start: float, end: float) -> int:
        """Frames dropped at a port's Tx queue during the window."""
        return int(self._delta(site, port_id, "tx_drops", start, end))

    def mirror_overload(
        self,
        site: str,
        mirrored_port_id: str,
        dest_rate_bps: float,
        start: float,
        end: float,
        headroom: float = 1.0,
    ) -> Optional[bool]:
        """Patchwork's congestion inference (paper Section 6.2.2).

        True when the mirrored port's Tx + Rx rate exceeded
        ``dest_rate_bps * headroom``, i.e. the mirror destination's line
        rate cannot carry both cloned directions and frames are being
        dropped at the switch.  None when telemetry cannot answer.
        """
        rates = self.port_rates(site, mirrored_port_id, start, end)
        if rates is None:
            return None
        return rates.total_bps > dest_rate_bps * headroom

    # -- utilization (study queries) ------------------------------------------

    def utilization(
        self, site: str, port_id: str, line_rate_bps: float, start: float, end: float
    ) -> Optional[float]:
        """Tx utilization fraction of a port over the window."""
        rates = self.port_rates(site, port_id, start, end)
        if rates is None:
            return None
        return rates.tx_bps / line_rate_bps

    def _anchor(self, site: str, port_id: str, counter: str,
                start: float, end: float) -> Optional[CounterSample]:
        """The sample anchoring a window's start.

        Prefer the last poll at/before ``start``; when telemetry began
        after ``start`` (a query window reaching before the collector
        started), fall back to the earliest poll inside the window --
        like PromQL's ``rate()`` over a partially-covered range.
        """
        sample = self.store.latest_before(site, port_id, counter, start)
        if sample is not None:
            return sample
        window = self.store.window(site, port_id, counter, start, end)
        return window[0] if window else None

    def _delta(self, site: str, port_id: str, counter: str, start: float, end: float) -> float:
        first = self._anchor(site, port_id, counter, start, end)
        last = self.store.latest_before(site, port_id, counter, end)
        if first is None or last is None:
            return 0.0
        return self._increase(site, port_id, counter, first.time, last.time)

    def _increase(self, site: str, port_id: str, counter: str,
                  start: float, end: float) -> float:
        """Reset-aware counter increase over [start, end], both inclusive.

        Cumulative counters restart from zero when a switch or collector
        restarts (a fault-injected poller outage, say).  A plain
        last-minus-first delta then goes negative and poisons every rate
        built on it.  Like PromQL's ``increase()``, sum only the
        positive per-poll deltas: a reset boundary contributes nothing
        and the later sample becomes the new baseline.
        """
        samples = self.store.window(site, port_id, counter, start, end)
        if len(samples) < 2:
            return 0.0
        total = 0.0
        for prev, cur in zip(samples, samples[1:]):
            step = cur.value - prev.value
            if step > 0:
                total += step
        return total
