"""The telemetry time-series store.

A deliberately Prometheus-shaped design: series are identified by
``(site, port, counter-name)`` and hold monotonically-timestamped
``(time, value)`` samples.  Queries return raw samples or windowed
slices; *rate* computation from cumulative counters lives in the MFlib
layer, mirroring how PromQL's ``rate()`` works over raw counters.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

SeriesKey = Tuple[str, str, str]  # (site, port_id, counter)


@dataclass(frozen=True)
class CounterSample:
    """One polled value of one counter."""

    time: float
    value: float


class CounterStore:
    """In-memory store of counter samples."""

    def __init__(self) -> None:
        self._series: Dict[SeriesKey, List[CounterSample]] = {}

    def append(self, site: str, port_id: str, counter: str, time: float, value: float) -> None:
        """Add a sample; timestamps within a series must not go backward."""
        key = (site, port_id, counter)
        series = self._series.setdefault(key, [])
        if series and time < series[-1].time:
            raise ValueError(
                f"sample for {key} at {time} precedes last sample at {series[-1].time}"
            )
        series.append(CounterSample(time, value))

    def series(self, site: str, port_id: str, counter: str) -> List[CounterSample]:
        """All samples of one series (empty list if never polled)."""
        return list(self._series.get((site, port_id, counter), []))

    def window(
        self, site: str, port_id: str, counter: str, start: float, end: float
    ) -> List[CounterSample]:
        """Samples with ``start <= time <= end``."""
        samples = self._series.get((site, port_id, counter), [])
        times = [s.time for s in samples]
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, end)
        return samples[lo:hi]

    def latest(self, site: str, port_id: str, counter: str) -> Optional[CounterSample]:
        """Most recent sample of a series, or None."""
        samples = self._series.get((site, port_id, counter))
        return samples[-1] if samples else None

    def latest_before(
        self, site: str, port_id: str, counter: str, time: float
    ) -> Optional[CounterSample]:
        """Most recent sample at or before ``time``, or None."""
        samples = self._series.get((site, port_id, counter), [])
        times = [s.time for s in samples]
        index = bisect.bisect_right(times, time) - 1
        return samples[index] if index >= 0 else None

    def ports(self, site: str) -> List[str]:
        """Port ids that have at least one sample at a site."""
        return sorted({port for (s, port, _c) in self._series if s == site})

    def sites(self) -> List[str]:
        """Sites that have at least one sample."""
        return sorted({s for (s, _p, _c) in self._series})

    def keys(self) -> Iterator[SeriesKey]:
        """All series keys."""
        return iter(self._series.keys())

    def __len__(self) -> int:
        return sum(len(samples) for samples in self._series.values())
