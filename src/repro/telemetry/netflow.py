"""A NetFlow-style exporter, for the paper's "asymmetry" comparison.

Section 4 motivates Patchwork by the inadequacy of operator-oriented
telemetry: "Today's approaches include obtaining information from
network switches using standards like NetFlow, sFlow, IPFIX, and SNMP.
This information does not distinguish between testbed users and
provides coarse statistics."

This module implements that baseline so the claim is measurable: a
classic NetFlow-v5-style exporter that taps switch ports and keeps a
flow cache keyed on the **outer IP five-tuple only** -- v5 has no
VLAN/MPLS fields, so:

* two slices reusing the same 10/8 addresses *merge* into one flow;
* pseudowire-encapsulated traffic (Ethernet inside MPLS) exposes no
  parseable IP header at all and is lumped into a non-IP bucket.

The ablation benchmark contrasts this exporter's view with Patchwork's
tag-aware flow classification over identical traffic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.packets.headers import EtherType, IPProto
from repro.testbed.switch import Switch

FiveTuple = Tuple[str, str, int, int, int]


@dataclass
class NetFlowRecord:
    """One exported flow record (v5-style fields)."""

    src: str
    dst: str
    sport: int
    dport: int
    proto: int
    packets: int
    octets: int
    first: float
    last: float


@dataclass
class _CacheEntry:
    packets: int = 0
    octets: int = 0
    first: float = 0.0
    last: float = 0.0


class NetFlowExporter:
    """A flow cache with active/inactive timeouts over switch taps."""

    def __init__(self, sim: Simulator, active_timeout: float = 60.0,
                 inactive_timeout: float = 15.0):
        if active_timeout <= 0 or inactive_timeout <= 0:
            raise ValueError("timeouts must be positive")
        self.sim = sim
        self.active_timeout = active_timeout
        self.inactive_timeout = inactive_timeout
        self.cache: Dict[FiveTuple, _CacheEntry] = {}
        self.exported: List[NetFlowRecord] = []
        self.non_ip_frames = 0
        self.non_ip_octets = 0
        self.frames_seen = 0

    # -- attachment ------------------------------------------------------------

    def attach_to_switch(self, switch: Switch) -> None:
        """Observe every frame entering the switch (all-port tap)."""
        for port in switch.ports.values():
            port.link.rx.add_tap(self.observe)

    # -- the dataplane path ------------------------------------------------

    def observe(self, frame: Frame) -> None:
        """Account one frame into the flow cache."""
        self.frames_seen += 1
        key = self._outer_five_tuple(frame.head)
        if key is None:
            self.non_ip_frames += 1
            self.non_ip_octets += frame.wire_len
            return
        now = self.sim.now
        entry = self.cache.get(key)
        if entry is None:
            entry = _CacheEntry(first=now)
            self.cache[key] = entry
        elif now - entry.last > self.inactive_timeout or \
                now - entry.first > self.active_timeout:
            self._export(key, entry)
            entry = _CacheEntry(first=now)
            self.cache[key] = entry
        entry.packets += 1
        entry.octets += frame.wire_len
        entry.last = now

    def flush(self) -> List[NetFlowRecord]:
        """Export everything still cached (end of collection)."""
        for key, entry in list(self.cache.items()):
            self._export(key, entry)
        self.cache.clear()
        return self.exported

    def distinct_flow_keys(self) -> int:
        """Distinct five-tuples seen (cached + already exported).

        NetFlow is unidirectional, so a TCP conversation counts twice.
        """
        return len(self._all_keys())

    def distinct_conversations(self) -> int:
        """Distinct *bidirectional* conversations (direction-merged).

        Useful for apples-to-apples comparison with flow analyses that
        count a conversation once.
        """
        merged = set()
        for src, dst, sport, dport, proto in self._all_keys():
            a, b = (src, sport), (dst, dport)
            if a > b:
                a, b = b, a
            merged.add((a, b, proto))
        return len(merged)

    def _all_keys(self) -> set:
        keys = set(self.cache)
        keys.update((r.src, r.dst, r.sport, r.dport, r.proto)
                    for r in self.exported)
        return keys

    def _export(self, key: FiveTuple, entry: _CacheEntry) -> None:
        src, dst, sport, dport, proto = key
        self.exported.append(NetFlowRecord(
            src=src, dst=dst, sport=sport, dport=dport, proto=proto,
            packets=entry.packets, octets=entry.octets,
            first=entry.first, last=entry.last,
        ))

    # -- v5-style header walking ------------------------------------------------

    @staticmethod
    def _outer_five_tuple(head: bytes) -> Optional[FiveTuple]:
        """The five-tuple a v5 metering process would extract.

        Walks Ethernet and VLAN tags (hardware does), but stops at MPLS
        unless the payload directly under the stack is IP -- and it
        cannot see through a pseudowire's inner Ethernet.  Returns None
        for anything it cannot classify as IP.
        """
        view = memoryview(head)
        if len(view) < 14:
            return None
        (ethertype,) = struct.unpack_from("!H", view, 12)
        offset = 14
        while ethertype == EtherType.VLAN and len(view) >= offset + 4:
            (ethertype,) = struct.unpack_from("!H", view, offset + 2)
            offset += 4
        if ethertype == EtherType.MPLS_UNICAST:
            # Pop the label stack; then only a bare IP payload counts.
            bottom = False
            while not bottom and len(view) >= offset + 4:
                (entry,) = struct.unpack_from("!I", view, offset)
                bottom = bool((entry >> 8) & 1)
                offset += 4
            if len(view) <= offset:
                return None
            nibble = view[offset] >> 4
            if nibble == 4:
                ethertype = EtherType.IPV4
            elif nibble == 6:
                ethertype = EtherType.IPV6
            else:
                return None  # pseudowire: opaque to NetFlow
        if ethertype == EtherType.IPV4 and len(view) >= offset + 20:
            proto = view[offset + 9]
            src = ".".join(str(b) for b in view[offset + 12:offset + 16])
            dst = ".".join(str(b) for b in view[offset + 16:offset + 20])
            ihl = (view[offset] & 0xF) * 4
            offset += ihl
        elif ethertype == EtherType.IPV6 and len(view) >= offset + 40:
            proto = view[offset + 6]
            src = bytes(view[offset + 8:offset + 24]).hex()
            dst = bytes(view[offset + 24:offset + 40]).hex()
            offset += 40
        else:
            return None
        sport = dport = 0
        if proto in (IPProto.TCP, IPProto.UDP) and len(view) >= offset + 4:
            sport, dport = struct.unpack_from("!HH", view, offset)
        return (src, dst, sport, dport, proto)
