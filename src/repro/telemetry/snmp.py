"""The SNMP counter poller.

Walks every switch in the federation on a fixed interval and appends
each port's cumulative Tx/Rx byte, frame, and drop counters to the
:class:`~repro.telemetry.timeseries.CounterStore`.  The default interval
is the paper's 5 minutes.

The poller is a simulation process: :meth:`start` arms the first poll on
the simulator, and each poll re-arms the next one.  Anything that only
looks at the store therefore sees the network with telemetry's inherent
staleness -- queries between polls return the previous poll's truth,
which is exactly the fidelity limit the real Patchwork lives with.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.engine import Event, Simulator
from repro.telemetry.timeseries import CounterStore

POLLED_COUNTERS = (
    "tx_bytes",
    "tx_frames",
    "tx_drops",
    "tx_dropped_bytes",
    "rx_bytes",
    "rx_frames",
    "rx_drops",
    "rx_dropped_bytes",
)

#: Cost model for one polled counter on the wire: OID + Counter64 value
#: in the SNMP response varbind, amortized.  Used by the telemetry-bytes
#: accounting that compares the poller against sketch reports and
#: in-band stamps.
SNMP_BYTES_PER_COUNTER = 16


def walk_bytes(port_count: int, walks: int = 1) -> int:
    """Telemetry bytes one switch ships for ``walks`` full counter walks."""
    return walks * port_count * len(POLLED_COUNTERS) * SNMP_BYTES_PER_COUNTER


class SNMPPoller:
    """Periodic counter collection for a whole federation."""

    def __init__(self, federation, store: Optional[CounterStore] = None,
                 interval: float = 300.0):
        if interval <= 0:
            raise ValueError("poll interval must be positive")
        self.federation = federation
        self.store = store or CounterStore()
        self.interval = interval
        self.polls_completed = 0
        self._next_event: Optional[Event] = None
        self._running = False

    @property
    def sim(self) -> Simulator:
        return self.federation.sim

    @property
    def running(self) -> bool:
        """True while polling is armed (outages toggle this)."""
        return self._running

    def start(self, first_poll_delay: float = 0.0) -> None:
        """Begin polling (first walk after ``first_poll_delay``)."""
        if self._running:
            raise RuntimeError("poller already running")
        self._running = True
        self._next_event = self.sim.schedule(first_poll_delay, self._poll)

    def stop(self) -> None:
        """Stop polling (safe to call repeatedly)."""
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def poll_now(self) -> None:
        """Take one immediate, out-of-schedule walk of all switches."""
        self._walk()

    def _poll(self) -> None:
        if not self._running:
            return
        self._walk()
        self._next_event = self.sim.schedule(self.interval, self._poll)

    def _walk(self) -> None:
        now = self.sim.now
        for site_name, site in self.federation.sites.items():
            for port_id, counters in site.switch.port_counters().items():
                for counter in POLLED_COUNTERS:
                    self.store.append(site_name, port_id, counter, now, counters[counter])
        self.polls_completed += 1
