"""Fig 2: port distribution across sites.

"We analyzed FABRIC's information model to count ports at each site.
We found that most sites have a similar number of uplinks, and all
sites have many more downlinks than uplinks."  (This answers R1.Q1 --
the profiler must be able to sample both.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


from repro.testbed.federation import Federation
from repro.testbed.information_model import InformationModel, SitePortCount
from repro.util.tables import Table


def port_distribution_table(federation: Federation) -> Table:
    """The Fig 2 data as a table (one row per site)."""
    model = InformationModel(federation)
    table = Table(["site", "downlinks", "uplinks"],
                  title="Distribution of ports across sites")
    for count in model.port_distribution():
        table.add_row([count.site, count.downlinks, count.uplinks])
    return table


@dataclass(frozen=True)
class UplinkSummary:
    """Aggregate facts the paper draws from Fig 2."""

    sites: int
    total_downlinks: int
    total_uplinks: int
    min_uplinks: int
    max_uplinks: int
    uplink_spread: int               # max - min: "similar across sites"
    every_site_downlink_heavy: bool  # downlinks > uplinks at every site


def uplink_summary(federation: Federation) -> UplinkSummary:
    """Check Fig 2's two claims over a federation."""
    counts: List[SitePortCount] = InformationModel(federation).port_distribution()
    uplinks = [c.uplinks for c in counts]
    return UplinkSummary(
        sites=len(counts),
        total_downlinks=sum(c.downlinks for c in counts),
        total_uplinks=sum(uplinks),
        min_uplinks=min(uplinks),
        max_uplinks=max(uplinks),
        uplink_spread=max(uplinks) - min(uplinks),
        every_site_downlink_heavy=all(c.downlinks > c.uplinks for c in counts),
    )
