"""Fig 10: Patchwork's behaviour across a campaign of runs.

The paper analyzed Patchwork's own logs over four months of scheduled
runs: 79 % of site-runs succeeded, ~20 % failed for lack of site
resources or transient back-end trouble (including incident clusters
like 10-15 Sept), and a few crashed ("Incomplete").

:func:`run_campaign` reproduces the experiment: it schedules a series
of profiling occasions against a federation while injecting the same
three disturbance classes -- competitor slices that drain dedicated
NICs (total or partial shortages), back-end outage windows, and a small
instance-crash probability -- then mines the run records exactly as the
paper mined its logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


from repro.core.config import PatchworkConfig
from repro.core.coordinator import Coordinator
from repro.core.status import RunOutcome, RunRecord, outcome_fractions, success_rate
from repro.testbed.api import TestbedAPI
from repro.testbed.errors import AllocationError, TestbedError
from repro.testbed.slice_model import NodeRequest, SliceRequest
from repro.util.rng import SeedSequenceFactory
from repro.util.tables import Table


@dataclass
class CampaignResult:
    """All run records plus the Fig 10 aggregates."""

    records: List[RunRecord] = field(default_factory=list)
    occasions: int = 0

    @property
    def success_rate(self) -> float:
        return success_rate(self.records)

    def fractions(self) -> Dict[RunOutcome, float]:
        return outcome_fractions(self.records)

    def to_table(self) -> Table:
        table = Table(["outcome", "site_runs", "fraction"],
                      title="Patchwork behaviour across the campaign")
        fractions = self.fractions()
        counts = {o: sum(1 for r in self.records if r.outcome is o) for o in RunOutcome}
        for outcome in RunOutcome:
            table.add_row([outcome.value, counts[outcome], round(fractions[outcome], 4)])
        return table

    def timeline_table(self) -> Table:
        """Per-occasion outcome counts (the Fig 10 time series)."""
        table = Table(["occasion", "success", "degraded", "failed", "incomplete"],
                      title="Per-occasion outcomes")
        by_occasion: Dict[float, List[RunRecord]] = {}
        for record in self.records:
            by_occasion.setdefault(record.started_at, []).append(record)
        for i, (_start, records) in enumerate(sorted(by_occasion.items())):
            row = [i]
            for outcome in (RunOutcome.SUCCESS, RunOutcome.DEGRADED,
                            RunOutcome.FAILED, RunOutcome.INCOMPLETE):
                row.append(sum(1 for r in records if r.outcome is outcome))
            table.add_row(row)
        return table


def _drain_site_nics(api: TestbedAPI, site: str, leave: int,
                     tag: str) -> Optional[str]:
    """Occupy a site's dedicated NICs with a competitor slice.

    ``leave`` NICs are left free.  Returns the competitor slice name
    (to delete later), or None if nothing needed draining.
    """
    free = api.available_resources(site).dedicated_nics
    take = max(0, int(free) - leave)
    if take == 0:
        return None
    request = SliceRequest(
        site=site,
        nodes=[NodeRequest(name=f"user{i}", cores=2, ram_gb=4, disk_gb=10,
                           dedicated_nics=1) for i in range(take)],
        name=f"competitor-{tag}-{site}",
    )
    try:
        return api.create_slice(request).name
    except (AllocationError, TestbedError):
        return None


def _delete_slices(api: TestbedAPI, names: List[str]) -> List[str]:
    """Best-effort slice deletion; returns the names that still remain.

    ``delete_slice`` consults the fault injector, so a teardown attempted
    during an outage window raises transiently -- those slices are kept
    and retried on the next sweep rather than leaked into later
    occasions (which would skew the shortage fractions).
    """
    remaining = []
    for name in names:
        try:
            api.delete_slice(name)
        except TestbedError:
            remaining.append(name)
    return remaining


def run_campaign(
    api: TestbedAPI,
    config: PatchworkConfig,
    occasions: int = 12,
    seed: int = 23,
    total_shortage_fraction: float = 0.14,
    partial_shortage_fraction: float = 0.12,
    outage_fraction: float = 0.12,
    outage_site_fraction: float = 0.5,
    crash_probability: float = 0.004,
    occasion_gap: float = 3600.0,
    outage_duration: Optional[float] = None,
) -> CampaignResult:
    """Run a Fig 10 campaign.

    Each occasion, a random subset of sites loses all its dedicated
    NICs to competitors (-> FAILED at those sites), another subset is
    left with a single NIC (-> DEGRADED via back-off), and with
    probability ``outage_fraction`` a back-end incident covers part of
    the federation for the occasion's start (-> FAILED).  The crash
    probability feeds the watchdog (-> INCOMPLETE).

    ``outage_duration`` bounds each back-end incident; the default
    (None) keeps the paper's behaviour of an incident covering the
    whole occasion.  Short incidents are what the recovery layer's
    sim-time retries are built to outlast (the ablation benchmark uses
    this knob to compare recovery on/off).
    """
    seeds = SeedSequenceFactory(seed)
    rng = seeds.rng("campaign")
    coordinator = Coordinator(api, config, seed=seeds.integer("coord", 0, 2**31))
    result = CampaignResult(occasions=occasions)
    sites = coordinator.target_sites()
    sim = api.federation.sim
    pending_deletes: List[str] = []
    for occasion in range(occasions):
        tag = f"occ{occasion}"
        shuffled = list(sites)
        rng.shuffle(shuffled)
        n_total = int(round(total_shortage_fraction * len(shuffled)))
        n_partial = int(round(partial_shortage_fraction * len(shuffled)))
        starved = shuffled[:n_total]
        pinched = shuffled[n_total:n_total + n_partial]
        competitors = []
        for site in starved:
            name = _drain_site_nics(api, site, leave=0, tag=tag)
            if name:
                competitors.append(name)
        for site in pinched:
            name = _drain_site_nics(api, site, leave=1, tag=tag)
            if name:
                competitors.append(name)
        if rng.random() < outage_fraction:
            affected = {
                s for s in sites
                if rng.random() < outage_site_fraction
            }
            incident_end = (
                sim.now + outage_duration if outage_duration is not None
                else sim.now + config.plan.approximate_duration + 600.0
            )
            api.federation.faults.add_outage(
                sim.now, incident_end,
                reason=f"backend incident ({tag})", sites=affected,
            )
        bundle = coordinator.run_profile(crash_probability=crash_probability)
        result.records.extend(bundle.run_records)
        pending_deletes = _delete_slices(api, pending_deletes + competitors)
        sim.run(until=sim.now + occasion_gap)
        if pending_deletes:
            # The occasion gap has passed any incident window; retry.
            pending_deletes = _delete_slices(api, pending_deletes)
    return result
