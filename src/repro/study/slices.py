"""Figs 3-5: slice spread, duration, and concurrency.

Wraps the generative model in :mod:`repro.traffic.schedule` with the
analyses the paper reports: the fraction of single-site slices
(Fig 3's 66.5 %), the duration CDF (Fig 4's "75 % of slices last for
24 hours"), and the concurrency statistics (Fig 5's mean 85, sigma 52,
max 272).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.traffic.schedule import SliceSchedule, SliceScheduleModel
from repro.util.tables import Table


@dataclass
class SliceStudyResult:
    """The generated history plus its headline statistics."""

    schedule: SliceSchedule
    single_site_fraction: float
    p_duration_le_24h: float
    concurrency_mean: float
    concurrency_std: float
    concurrency_max: int
    total_slices: int


def slice_study(site_names: Sequence[str], weeks: int = 52,
                seed: int = 11) -> SliceStudyResult:
    """Generate a slice history and compute the Fig 3-5 statistics."""
    model = SliceScheduleModel(site_names, seed=seed)
    schedule = model.generate(weeks=weeks)
    _times, counts = schedule.concurrency_series()
    return SliceStudyResult(
        schedule=schedule,
        single_site_fraction=schedule.single_site_fraction(),
        p_duration_le_24h=schedule.duration_cdf([24.0])[0],
        concurrency_mean=float(np.mean(counts)),
        concurrency_std=float(np.std(counts)),
        concurrency_max=int(np.max(counts)) if len(counts) else 0,
        total_slices=len(schedule.records),
    )


def spread_table(schedule: SliceSchedule, max_sites: int = 10) -> Table:
    """Fig 3: fraction of slices by number of sites used."""
    table = Table(["sites_used", "fraction_of_slices", "cumulative"],
                  title="Slice spread across sites")
    histogram = schedule.spread_histogram()
    cumulative = 0.0
    for k in range(1, max_sites + 1):
        fraction = histogram.get(k, 0.0)
        cumulative += fraction
        table.add_row([k, round(fraction, 5), round(cumulative, 5)])
    return table


def duration_table(schedule: SliceSchedule,
                   probe_hours: Sequence[float] = (1, 3, 6, 12, 24, 48, 96,
                                                   168, 336, 672)) -> Table:
    """Fig 4: the slice-duration CDF at standard probe points."""
    table = Table(["duration_hours", "cdf"], title="Duration of slices")
    for hours, cdf in zip(probe_hours, schedule.duration_cdf(probe_hours)):
        table.add_row([hours, round(cdf, 5)])
    return table


def concurrency_summary(schedule: SliceSchedule) -> Table:
    """Fig 5's summary statistics."""
    _times, counts = schedule.concurrency_series()
    table = Table(["statistic", "value"], title="Simultaneous slices")
    table.add_row(["mean", round(float(np.mean(counts)), 2)])
    table.add_row(["std", round(float(np.std(counts)), 2)])
    table.add_row(["max", int(np.max(counts))])
    table.add_row(["min", int(np.min(counts))])
    return table
