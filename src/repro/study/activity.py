"""Fig 6 and the network-activity facts (R1.Q3, R4.Q1).

The paper's Fig 6 sums 5-minute byte-rate samples from every switch
port into weekly activity for 2024: activity ramps into deadline
seasons and peaks the week before Supercomputing'24, when an average of
3.968 Tbps crossed FABRIC's network.  For R4.Q1 it finds that 50 % of
switch ports are <= 38 % utilized but some run at line rate -- hence
"expect to need to capture traffic at line rate".

We regenerate both from the slice-history model: weekly traffic is the
sum of per-slice offered rates (heavy-tailed -- a few slices move
terabits) modulated by the deadline calendar, and per-port utilization
is a mixture of mostly-quiet ports and a saturated tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.traffic.schedule import SliceSchedule, WEEKS
from repro.util.rng import SeedSequenceFactory
from repro.util.tables import Table

SC24_WEEK = 46  # the week before Supercomputing'24


@dataclass(frozen=True)
class WeeklyActivity:
    """One bar of Fig 6."""

    week: int
    mean_tbps: float
    has_data: bool = True


class NetworkActivityModel:
    """Weekly network activity derived from a slice history."""

    def __init__(
        self,
        schedule: SliceSchedule,
        seed: int = 13,
        per_slice_rate_median_bps: float = 3.9e9,
        per_slice_rate_sigma: float = 1.6,
        missing_weeks: Sequence[int] = (0, 1, 5, 6),
    ):
        self.schedule = schedule
        self.seeds = SeedSequenceFactory(seed)
        self.per_slice_rate_median_bps = per_slice_rate_median_bps
        self.per_slice_rate_sigma = per_slice_rate_sigma
        self.missing_weeks: Set[int] = set(missing_weeks)

    def weekly_series(self) -> List[WeeklyActivity]:
        """Mean testbed-wide rate per week, with the paper's data gaps."""
        rng = self.seeds.rng("activity/weekly")
        weeks = int(np.ceil(self.schedule.horizon / WEEKS))
        # Per-slice offered rates are heavy-tailed and redrawn weekly:
        # most slices idle along; a few run line-rate experiments.
        mu = np.log(self.per_slice_rate_median_bps)
        series = []
        starts = np.array([r.start for r in self.schedule.records])
        ends = np.array([r.end for r in self.schedule.records])
        for week in range(weeks):
            mid = (week + 0.5) * WEEKS
            active = int(np.count_nonzero((starts <= mid) & (ends > mid)))
            if week in self.missing_weeks:
                series.append(WeeklyActivity(week, 0.0, has_data=False))
                continue
            # The deadline calendar already modulates *how many* slices
            # are active (via the arrival process), so weekly traffic is
            # just the sum of the active slices' offered rates.
            rates = rng.lognormal(mu, self.per_slice_rate_sigma, size=active)
            series.append(WeeklyActivity(week, float(rates.sum()) / 1e12))
        return series

    def peak(self) -> WeeklyActivity:
        """The busiest week (the paper's SC'24 observation)."""
        series = [w for w in self.weekly_series() if w.has_data]
        return max(series, key=lambda w: w.mean_tbps)

    def to_table(self) -> Table:
        table = Table(["week", "mean_tbps", "has_data"],
                      title="Weekly utilization of the testbed network")
        for w in self.weekly_series():
            table.add_row([w.week, round(w.mean_tbps, 4), int(w.has_data)])
        return table


def port_utilization_quantiles(
    ports: int = 1200,
    seed: int = 17,
    saturated_fraction: float = 0.03,
) -> Dict[str, float]:
    """R4.Q1's port-utilization distribution.

    A Beta-distributed quiet majority (median ~0.38) plus a small
    fraction of ports pinned at line rate.  Returns the quantiles the
    paper quotes plus the maximum.
    """
    if ports <= 0:
        raise ValueError("need at least one port")
    rng = SeedSequenceFactory(seed).rng("activity/ports")
    quiet = rng.beta(1.05, 1.75, size=ports)
    saturated = rng.random(ports) < saturated_fraction
    utilization = np.where(saturated, 1.0, quiet)
    return {
        "p25": float(np.quantile(utilization, 0.25)),
        "p50": float(np.quantile(utilization, 0.50)),
        "p75": float(np.quantile(utilization, 0.75)),
        "p99": float(np.quantile(utilization, 0.99)),
        "max": float(np.max(utilization)),
        "fraction_at_line_rate": float(np.mean(utilization >= 0.999)),
    }
