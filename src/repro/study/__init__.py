"""The Section-5 resource & infrastructure study.

Before designing Patchwork, the paper studies FABRIC to answer the open
questions of Section 4: the uplink/downlink balance (Fig 2), how spread
out slices are (Fig 3), how long they live (Fig 4), how many run at
once (Fig 5), and how the network's utilization evolves over the year
(Fig 6).  The study's three data sources were the information model,
operator-shared slice statistics, and MFlib telemetry; here they are
the federation model, the synthetic slice history
(:mod:`repro.traffic.schedule`), and the activity model below.

* :mod:`repro.study.ports` -- Fig 2.
* :mod:`repro.study.slices` -- Figs 3-5.
* :mod:`repro.study.activity` -- Fig 6 and the port-utilization facts
  behind R4.Q1 (50 % of ports <= 38 % utilized; some at line rate).
* :mod:`repro.study.behavior` -- the Fig 10 campaign driver (runs
  Patchwork occasions under injected faults and shortages).
"""

from repro.study.ports import port_distribution_table, uplink_summary
from repro.study.slices import (
    concurrency_summary,
    duration_table,
    slice_study,
    spread_table,
    SliceStudyResult,
)
from repro.study.activity import (
    NetworkActivityModel,
    WeeklyActivity,
    port_utilization_quantiles,
)
from repro.study.behavior import CampaignResult, run_campaign

__all__ = [
    "port_distribution_table",
    "uplink_summary",
    "concurrency_summary",
    "duration_table",
    "slice_study",
    "spread_table",
    "SliceStudyResult",
    "NetworkActivityModel",
    "WeeklyActivity",
    "port_utilization_quantiles",
    "CampaignResult",
    "run_campaign",
]
