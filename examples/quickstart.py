#!/usr/bin/env python3
"""Quickstart: profile a small federated testbed end to end.

Builds a four-site FABRIC-like federation, lets researcher workloads
run on it, starts Patchwork in all-experiment mode, and pushes the
captures through the full analysis pipeline -- printing the same kinds
of tables the paper's Section 8.2 reports.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import quickstart_federation
from repro.analysis import AnalysisPipeline
from repro.core import Coordinator, PatchworkConfig, SamplingPlan


def main() -> None:
    # 1. A testbed with live traffic.  Each site gets a workload
    #    personality (bulk iperf, protocol-diverse apps, chatty, quiet).
    federation, api, poller, orchestrator = quickstart_federation(
        site_names=["STAR", "MICH", "UTAH", "TACC"], traffic_scale=0.05)
    for window in range(3):
        orchestrator.generate_window(window * 100.0, 100.0)

    # 2. Configure Patchwork: 5-second samples every 30 s, two cycles of
    #    port cycling, 200-byte truncation, tcpdump capture (defaults).
    out = Path(tempfile.mkdtemp(prefix="patchwork-quickstart-"))
    config = PatchworkConfig(
        output_dir=out,
        plan=SamplingPlan(sample_duration=5, sample_interval=30,
                          samples_per_run=2, runs_per_cycle=1, cycles=2),
        desired_instances=2,
    )

    # 3. Run one profiling occasion: the coordinator starts an
    #    independent instance at every site, gathers pcaps + logs.
    coordinator = Coordinator(api, config, poller=poller)
    bundle = coordinator.run_profile()
    print("=== Patchwork occasion complete ===")
    for record in bundle.run_records:
        print(f"  {record.site}: {record.outcome.value}, "
              f"{record.samples_taken} samples, {record.pcap_files} pcaps")
    print(f"  captures under {out}")

    # 4. Offline analysis: Digest -> acap -> Index -> Analyze -> Process.
    report = AnalysisPipeline(acap_dir=out / "acap").run(bundle.pcap_paths)
    print(f"\n=== Profile of {report.total_frames} captured frames ===\n")
    print(report.tables["frame_sizes_overall"].render())
    print()
    print(report.tables["header_occurrence"].render(max_rows=12))
    print()
    print(report.tables["header_diversity"].render())
    print(f"\nIPv6 share: {report.ipv6_fraction:.2%}   "
          f"jumbo share: {report.jumbo_fraction:.2%}")
    csvs = report.write_csvs(out / "csv")
    print(f"\nwrote {len(csvs)} CSV files to {out / 'csv'}")


if __name__ == "__main__":
    main()
