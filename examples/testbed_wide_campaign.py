#!/usr/bin/env python3
"""All-experiment mode: a recurring testbed-wide profiling campaign.

Reproduces the paper's deployment pattern (Section 8.3): Patchwork runs
on a schedule across every site, under real-world disturbances --
competitor slices exhausting dedicated NICs, transient back-end
incidents, occasional crashes -- and the campaign's logs are mined into
the Fig 10 outcome accounting.

Run:  python examples/testbed_wide_campaign.py
"""

import tempfile
from pathlib import Path

from repro.core import PatchworkConfig, SamplingPlan
from repro.study.behavior import run_campaign
from repro.testbed import FederationBuilder, TestbedAPI

SITES = ["STAR", "MICH", "UTAH", "TACC", "NCSA", "WASH", "DALL", "SALT",
         "MASS", "MAXG"]


def main() -> None:
    federation = FederationBuilder(seed=42).build(site_names=SITES)
    api = TestbedAPI(federation)
    out = Path(tempfile.mkdtemp(prefix="patchwork-campaign-"))
    config = PatchworkConfig(
        output_dir=out,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=1, runs_per_cycle=1, cycles=1),
        desired_instances=2,
    )
    print(f"running 6 occasions across {len(SITES)} sites "
          f"(with injected shortages, outages, and crashes)...")
    result = run_campaign(
        api, config, occasions=6, seed=23,
        total_shortage_fraction=0.15, partial_shortage_fraction=0.15,
        outage_fraction=0.3, crash_probability=0.01,
    )

    print()
    print(result.to_table().render())
    print()
    print(result.timeline_table().render())
    print(f"\noverall success rate: {result.success_rate:.1%} "
          f"(the paper's year-one figure was 79%)")
    failures = [r for r in result.records if not r.profiled]
    print("example failure reasons:")
    for record in failures[:5]:
        print(f"  {record.site}: {record.outcome.value} ({record.reason})")


if __name__ == "__main__":
    main()
