#!/usr/bin/env python3
"""Single-experiment mode: a researcher profiles their own experiment.

The paper's first user story (Section 4): a researcher running a
congestion-control experiment between two sites wants to see their own
traffic -- header behaviour, ACK streams, RSTs -- without touching
anyone else's.  Patchwork in single-experiment mode mirrors only the
switch ports the researcher's slice is attached to.

Run:  python examples/single_experiment_profile.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import quickstart_federation
from repro.analysis import AnalysisPipeline
from repro.core import Coordinator, PatchworkConfig, SamplingPlan
from repro.traffic.encapsulation import EncapKind
from repro.traffic.flows import STANDARD_APPS, Flow


def main() -> None:
    federation, api, poller, orchestrator = quickstart_federation(
        site_names=["STAR", "TOKY", "AMST"], traffic_scale=0.05)
    # Background: other researchers' experiments keep running.
    orchestrator.generate_window(0.0, 240.0)

    # --- The researcher's own experiment: a WAN transfer STAR -> TOKY.
    my_src = orchestrator.registry.create("STAR", slice_name="my-cc-exp")
    my_dst = orchestrator.registry.create("TOKY", slice_name="my-cc-exp")
    rng = np.random.default_rng(99)
    for i in range(6):
        Flow(sim=federation.sim, flow_id=10_000 + i, src=my_src, dst=my_dst,
             app=STANDARD_APPS["iperf-tcp"], total_bytes=400_000, rng=rng,
             encap=EncapKind.VLAN_MPLS, vlan_id=2900, mpls_label=19000,
             start_time=10.0 + i * 15.0, rate_scale=0.05).start()

    # --- Point Patchwork at the experiment's attachment ports only.
    star = federation.site("STAR")
    my_port = star.switch_port_for(my_src.nic_port)
    out = Path(tempfile.mkdtemp(prefix="patchwork-single-"))
    config = PatchworkConfig(
        output_dir=out,
        all_experiment=False,
        slice_name="my-cc-exp",
        sites=["STAR"],
        selector="fixed",
        fixed_ports=[my_port],
        desired_instances=1,
        plan=SamplingPlan(sample_duration=10, sample_interval=30,
                          samples_per_run=3, runs_per_cycle=1, cycles=1),
    )
    bundle = Coordinator(api, config, poller=poller).run_profile()
    record = bundle.run_records[0]
    print(f"profiled port {my_port} at STAR: {record.outcome.value}, "
          f"{record.samples_taken} samples")

    # --- Analyze: flow composition and TCP control information.
    report = AnalysisPipeline().run(bundle.pcap_paths)
    print(f"\ncaptured {report.total_frames} frames in "
          f"{len(bundle.pcap_paths)} samples")
    print()
    print(report.tables["frame_sizes_overall"].render())
    print()
    print(report.tables["tcp_flags"].render())
    my_flows = [
        (key, stats) for key, stats in report.aggregated_flows.items()
        if 2900 in key.vlan_ids
    ]
    print(f"\nflows on my slice's VLAN (2900): {len(my_flows)}")
    for key, stats in sorted(my_flows, key=lambda kv: -kv[1].wire_bytes)[:5]:
        print(f"  {key.endpoint_a} <-> {key.endpoint_b}: "
              f"{stats.frames} frames, {stats.wire_bytes} bytes, "
              f"syn={stats.syn_seen} fin={stats.fin_seen} rst={stats.rst_seen}")


if __name__ == "__main__":
    main()
