#!/usr/bin/env python3
"""Capture planning: choose a capture path for a target workload.

Uses the calibrated capture-path models (Sections 8.1.2-8.1.4) the way
an operator would: given an expected traffic rate and frame-size mix,
which capture method suffices, how many DPDK cores does it need, what
truncation should be used, and how long until the page-cache write-back
throttle bites?

Run:  python examples/capture_planning.py
"""

from repro.capture.dpdk import DpdkCaptureModel, MAX_WORKER_CORES, OfferedLoad
from repro.capture.fpga import FpgaOffloadConfig, FpgaOffloadModel
from repro.capture.storage import PageCacheModel
from repro.capture.tcpdump import TcpdumpModel
from repro.util.tables import Table
from repro.util.units import format_rate, parse_rate

SCENARIOS = [
    ("light diagnostic tap", "5Gbps", 1514),
    ("10G experiment link", "10Gbps", 1514),
    ("100G bulk transfer", "100Gbps", 1514),
    ("100G small-frame stress", "100Gbps", 128),
]


def plan(rate_text: str, frame: int, truncation: int = 200) -> str:
    rate = parse_rate(rate_text)
    tcpdump = TcpdumpModel(snaplen=truncation)
    if tcpdump.offer_constant_load(rate, frame, 30.0).loss_fraction < 0.01:
        return "tcpdump (default; no special setup)"
    load = OfferedLoad(rate, frame, duration=30.0)
    cores = DpdkCaptureModel(truncation=truncation).min_cores_for(load)
    if cores is not None:
        return f"DPDK with {cores} cores"
    fpga = FpgaOffloadModel(FpgaOffloadConfig(truncation=truncation,
                                              sample_one_in=8))
    writer = DpdkCaptureModel(cores=MAX_WORKER_CORES, truncation=truncation)
    if fpga.offer_through(writer, load).loss_percent < 1.0:
        return "FPGA offload (1-in-8 hardware sampling) + DPDK, 15 cores"
    return "not capturable on this host; reduce rate or sample harder"


def main() -> None:
    table = Table(["scenario", "rate", "frame", "recommendation"],
                  title="Capture-method planning (200 B truncation)")
    for name, rate, frame in SCENARIOS:
        table.add_row([name, rate, frame, plan(rate, frame)])
    print(table.render())

    # Storage budget: how long can the writer run before the page-cache
    # throttle stalls it?  (Appendix B's back-of-envelope.)
    print("\nWrite-back budgets at full 100 Gbps of 1514 B frames:")
    for bg, ratio in ((10, 20), (20, 50), (60, 80)):
        cache = PageCacheModel(dirty_background_ratio=bg, dirty_ratio=ratio)
        load = OfferedLoad(100e9, 1514)
        writer = DpdkCaptureModel(truncation=200, storage=cache)
        write_rate = writer.write_rate_Bps(load)
        budget = cache.seconds_until_throttle(write_rate)
        print(f"  vm.dirty thresholds {bg}:{ratio} -> "
              f"{format_rate(write_rate * 8)} to disk, "
              f"~{budget:.0f} s before the midpoint throttle")
    print("\n(the paper's production choice: 200 B truncation, 60:80 "
          "thresholds, samples bounded to 20 s -- well inside the budget)")


if __name__ == "__main__":
    main()
