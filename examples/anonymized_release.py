#!/usr/bin/env python3
"""Anonymized trace release: close-to-source anonymization.

The paper motivates "close-to-source traffic processing -- such as
anonymization" (intro, requirement 6) and proposes federated testbeds
as regular sources of anonymized high-fidelity traces.  This example
captures with the prefix-preserving anonymizer plugged into Patchwork's
pre-processing hook, then demonstrates that the released trace is both
scrubbed and still analyzable.

Run:  python examples/anonymized_release.py
"""

import tempfile
from pathlib import Path

from repro import quickstart_federation
from repro.analysis import AnalysisPipeline, Anonymizer
from repro.analysis.acap import digest_pcap
from repro.core import Coordinator, PatchworkConfig, SamplingPlan


def main() -> None:
    federation, api, poller, orchestrator = quickstart_federation(
        site_names=["STAR", "MICH"], traffic_scale=0.05)
    orchestrator.generate_window(0.0, 200.0)

    anonymizer = Anonymizer(key=b"release-2024-key")
    out = Path(tempfile.mkdtemp(prefix="patchwork-anon-"))
    config = PatchworkConfig(
        output_dir=out,
        plan=SamplingPlan(sample_duration=5, sample_interval=30,
                          samples_per_run=2, runs_per_cycle=1, cycles=1),
        desired_instances=1,
        transform=anonymizer.transform,  # runs before frames hit storage
    )
    bundle = Coordinator(api, config, poller=poller).run_profile()
    print(f"captured {len(bundle.pcap_paths)} anonymized pcaps under {out}")

    # --- Verify the release is scrubbed.
    real_prefixes = ("10.",)  # the testbed's experiment address space
    leaked = 0
    checked = 0
    for path in bundle.pcap_paths:
        for record in digest_pcap(path).records:
            if record.is_ip and record.ip_version == 4:
                checked += 1
                if record.src.startswith(real_prefixes) or \
                        record.dst.startswith(real_prefixes):
                    leaked += 1
    print(f"scrub check: {checked} IPv4 frames inspected, "
          f"{leaked} original 10/8 addresses visible")

    # --- And still useful: flows classify, sizes and protocols survive.
    report = AnalysisPipeline().run(bundle.pcap_paths)
    print(f"\npost-anonymization analysis: {report.total_frames} frames, "
          f"{len(report.aggregated_flows)} flows")
    print(report.tables["header_occurrence"].render(max_rows=10))
    print("\nprefix preservation means subnet structure survives: hosts "
          "sharing an original /24 still share an anonymized /24.")


if __name__ == "__main__":
    main()
