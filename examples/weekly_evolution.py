#!/usr/bin/env python3
"""Weekly evolution: tracking how the testbed's profile changes.

The deployed Patchwork "runs weekly to study the evolution of FABRIC's
network profile" (Section 8.3).  This example runs three consecutive
profiling occasions while the testbed's workloads shift underneath
(new experiments arrive between occasions), then diffs the profiles
and prints the longitudinal trends.

Run:  python examples/weekly_evolution.py
"""

import tempfile
from pathlib import Path

from repro import quickstart_federation
from repro.analysis import AnalysisPipeline
from repro.analysis.compare import ProfileHistory
from repro.analysis.visualize import sparkline
from repro.core import Coordinator, PatchworkConfig, SamplingPlan


def main() -> None:
    federation, api, poller, orchestrator = quickstart_federation(
        site_names=["STAR", "MICH", "UTAH"], traffic_scale=0.04)
    out = Path(tempfile.mkdtemp(prefix="patchwork-weekly-"))
    config = PatchworkConfig(
        output_dir=out,
        plan=SamplingPlan(sample_duration=4, sample_interval=20,
                          samples_per_run=2, runs_per_cycle=1, cycles=1),
        desired_instances=1,
    )
    coordinator = Coordinator(api, config, poller=poller)
    history = ProfileHistory()

    for week in range(3):
        # Fresh experiments arrive each "week" (compressed to sim-minutes).
        # The window must cover the occasion end-to-end: three serialized
        # slice acquisitions (~90 s each) plus the sampling phase.
        start = federation.sim.now
        orchestrator.generate_window(start, 420.0)
        config.output_dir = out / f"week{week}"
        bundle = coordinator.run_profile()
        report = AnalysisPipeline().run(bundle.pcap_paths)
        history.add(f"week{week}", report)
        print(f"week {week}: {report.total_frames} frames, "
              f"{len(report.aggregated_flows)} flows, "
              f"jumbo {report.jumbo_fraction:.0%}")

    print()
    print(history.trend_table().render())
    print("\ncaptured-frames trend:", sparkline(history.series("frames")))
    print("jumbo-share trend:    ", sparkline(history.series("jumbo")))

    delta = history.latest_delta()
    print("\nchange between the last two occasions:")
    print(delta.to_table().render())
    if delta.materially_different:
        print("\n=> the profile shifted materially; worth a closer look.")
    else:
        print("\n=> steady state: the workload mix is persistent "
              "(the paper's finding B1).")


if __name__ == "__main__":
    main()
