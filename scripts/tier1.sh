#!/bin/sh
# Tier-1 test suite (see ROADMAP.md).
#
# Uses pytest-xdist to spread the suite over all cores when the plugin
# is installed (CI installs it via the [test] extra); otherwise falls
# back to the plain serial run, so the command works in any
# environment that can run the tests at all.  Extra arguments are
# passed through to pytest.
set -eu
cd "$(dirname "$0")/.."

if PYTHONPATH=src python -c "import xdist" 2>/dev/null; then
    exec env PYTHONPATH=src python -m pytest -x -q -n auto "$@"
else
    echo "pytest-xdist not installed; running serially" >&2
    exec env PYTHONPATH=src python -m pytest -x -q "$@"
fi
