"""Tests for the slice schedule model (Figs 3-5 statistics)."""

import pytest

from repro.traffic.schedule import (
    HOURS, SliceRecord, SliceScheduleModel, deadline_intensity,
)

SITES = [f"S{i}" for i in range(30)]


@pytest.fixture(scope="module")
def schedule():
    return SliceScheduleModel(SITES, seed=11).generate(weeks=26)


class TestDeadlineIntensity:
    def test_autumn_peak_dominates(self):
        peak_week = max(range(52), key=deadline_intensity)
        assert 44 <= peak_week <= 48

    def test_spring_bump_exists(self):
        assert deadline_intensity(17) > deadline_intensity(8)

    def test_never_nonpositive(self):
        assert all(deadline_intensity(w) > 0 for w in range(52))


class TestGeneratedHistory:
    def test_records_within_horizon(self, schedule):
        assert all(0 <= r.start < schedule.horizon for r in schedule.records)

    def test_single_site_fraction_near_paper(self, schedule):
        assert schedule.single_site_fraction() == pytest.approx(0.665, abs=0.03)

    def test_duration_cdf_near_paper(self, schedule):
        p24 = schedule.duration_cdf([24.0])[0]
        assert p24 == pytest.approx(0.75, abs=0.06)

    def test_duration_cdf_monotone(self, schedule):
        cdf = schedule.duration_cdf([1, 6, 24, 168])
        assert cdf == sorted(cdf)

    def test_spread_histogram_sums_to_one(self, schedule):
        assert sum(schedule.spread_histogram().values()) == pytest.approx(1.0)

    def test_multi_site_slices_exist(self, schedule):
        histogram = schedule.spread_histogram()
        assert sum(v for k, v in histogram.items() if k >= 2) > 0.2

    def test_sites_unique_per_slice(self, schedule):
        for record in schedule.records[:500]:
            assert len(set(record.sites)) == len(record.sites)

    def test_concurrency_series(self, schedule):
        times, counts = schedule.concurrency_series(step=12 * HOURS)
        assert len(times) == len(counts)
        assert counts.max() > counts.min()

    def test_deterministic(self):
        a = SliceScheduleModel(SITES, seed=5).generate(weeks=4)
        b = SliceScheduleModel(SITES, seed=5).generate(weeks=4)
        assert len(a.records) == len(b.records)
        assert a.records[0].duration == b.records[0].duration

    def test_record_end(self):
        record = SliceRecord(1, 100.0, 50.0, ("A",))
        assert record.end == 150.0
        assert record.site_count == 1

    def test_rejects_empty_sites(self):
        with pytest.raises(ValueError):
            SliceScheduleModel([])
