"""Tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.obs import NULL_INSTRUMENT, MetricsRegistry
from repro.obs.registry import Counter, Gauge, Histogram


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(3)
        assert c.snapshot() == {"value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_observe_buckets(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(106.2)

    def test_boundary_value_goes_to_lower_bucket(self):
        # Prometheus buckets are `le` (inclusive upper bounds).
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_snapshot_has_inf_tail(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["buckets"] == {"1.0": 0, "+Inf": 1}
        assert snap["count"] == 1

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        a = registry.counter("hits")
        b = registry.counter("hits")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_disabled_registry_hands_out_null(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("hits")
        assert c is NULL_INSTRUMENT
        assert not c.enabled
        c.inc(100)  # no-op, no error
        assert len(registry) == 0

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "z" not in registry

    def test_snapshot_excludes_volatile_on_request(self):
        registry = MetricsRegistry()
        registry.counter("stable").inc()
        registry.gauge("wall_seconds", volatile=True).set(1.23)
        full = registry.snapshot()
        assert set(full) == {"stable", "wall_seconds"}
        det = registry.snapshot(include_volatile=False)
        assert set(det) == {"stable"}

    def test_reset_zeroes_but_keeps_handles(self):
        registry = MetricsRegistry()
        c = registry.counter("hits")
        h = registry.histogram("lat", buckets=(1.0,))
        c.inc(5)
        h.observe(0.5)
        registry.reset()
        assert c.value == 0
        assert h.count == 0 and h.bucket_counts == [0, 0]
        c.inc()
        assert registry.get("hits").value == 1
