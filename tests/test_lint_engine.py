"""Engine-level behavior: discovery, pragmas, config, CLI contract."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main
from repro.devtools.lint import (LintConfig, PARSE_ERROR, PROJECT_RULES,
                                 RULES, load_config, render_json, run_lint)


def write(tmp_path, name, body):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return path


SLEEPY = """\
    import time

    def wait():
        time.sleep(1.0)
    """


# -- discovery and results -----------------------------------------------


def test_clean_file_yields_clean_result(tmp_path):
    write(tmp_path, "ok.py", "def f(sim):\n    return sim.now\n")
    result = run_lint(paths=[tmp_path], config=LintConfig(root=tmp_path))
    assert result.ok
    assert result.files_checked == 1
    assert result.rules_run == sorted(set(RULES) | set(PROJECT_RULES))


def test_violation_found_and_located(tmp_path):
    path = write(tmp_path, "bad.py", SLEEPY)
    result = run_lint(paths=[path], config=LintConfig(root=tmp_path))
    assert not result.ok
    [violation] = result.violations
    assert violation.rule == "RL003"
    assert violation.path == "bad.py"
    assert violation.line == 4


def test_pycache_and_excludes_skipped(tmp_path):
    write(tmp_path, "__pycache__/junk.py", SLEEPY)
    write(tmp_path, "vendored/out.py", SLEEPY)
    write(tmp_path, "real.py", SLEEPY)
    config = LintConfig(root=tmp_path, exclude=["vendored/*"])
    result = run_lint(paths=[tmp_path], config=config)
    assert result.files_checked == 1
    assert {v.path for v in result.violations} == {"real.py"}


def test_syntax_error_reported_not_raised(tmp_path):
    write(tmp_path, "broken.py", "def f(:\n")
    result = run_lint(paths=[tmp_path], config=LintConfig(root=tmp_path))
    assert not result.ok
    [error] = result.errors
    assert error.rule == PARSE_ERROR
    assert "syntax error" in error.message


# -- pragmas -------------------------------------------------------------


def test_line_pragma_suppresses_and_is_reported(tmp_path):
    body = """\
        import time

        def wait():
            time.sleep(1.0)  # reprolint: disable=RL003 -- fixture sleep
        """
    write(tmp_path, "pragma.py", body)
    result = run_lint(paths=[tmp_path], config=LintConfig(root=tmp_path))
    assert result.ok
    [suppressed] = result.suppressed
    assert suppressed.rule == "RL003" and suppressed.suppressed


def test_line_pragma_only_names_its_rules(tmp_path):
    body = """\
        import time

        def wait():
            time.sleep(1.0)  # reprolint: disable=RL001 -- wrong rule named
        """
    write(tmp_path, "pragma.py", body)
    result = run_lint(paths=[tmp_path], config=LintConfig(root=tmp_path))
    assert [v.rule for v in result.violations] == ["RL003"]


def test_file_pragma_and_all(tmp_path):
    body = """\
        # reprolint: disable-file=all -- generated fixture
        import time

        def wait():
            time.sleep(1.0)
        """
    write(tmp_path, "generated.py", body)
    result = run_lint(paths=[tmp_path], config=LintConfig(root=tmp_path))
    assert result.ok and len(result.suppressed) == 1


def test_pragma_inside_string_ignored(tmp_path):
    body = '''\
        import time

        DOC = "# reprolint: disable=RL003"

        def wait():
            time.sleep(1.0)
        '''
    write(tmp_path, "strings.py", body)
    result = run_lint(paths=[tmp_path], config=LintConfig(root=tmp_path))
    assert [v.rule for v in result.violations] == ["RL003"]


# -- config --------------------------------------------------------------


def test_select_and_ignore(tmp_path):
    write(tmp_path, "bad.py", SLEEPY)
    only = run_lint(paths=[tmp_path],
                    config=LintConfig(root=tmp_path, select=["RL001"]))
    assert only.ok and only.rules_run == ["RL001"]
    skipped = run_lint(paths=[tmp_path],
                       config=LintConfig(root=tmp_path, ignore=["RL003"]))
    assert skipped.ok


def test_rule_allow_paths_from_config(tmp_path):
    write(tmp_path, "bench/timing.py", SLEEPY)
    config = LintConfig(
        root=tmp_path,
        rule_options={"RL003": {"allow": ["bench/timing.py"]}})
    assert run_lint(paths=[tmp_path], config=config).ok


def test_load_config_reads_pyproject(tmp_path):
    write(tmp_path, "pyproject.toml", """\
        [tool.reprolint]
        paths = ["pkg"]
        exclude = ["*/skip/*"]
        ignore = ["rl006"]

        [tool.reprolint.rules.RL007]
        extra-causes = ["experimental"]
        """)
    config = load_config(explicit=tmp_path / "pyproject.toml")
    assert config.root == tmp_path
    assert config.paths == ["pkg"]
    assert config.ignore == ["RL006"]
    assert config.options_for("RL007") == {"extra-causes": ["experimental"]}
    assert not config.rule_enabled("RL006")


def test_shipped_pyproject_allows_clock_boundary():
    config = load_config()
    assert "repro/obs/clock.py" in config.options_for("RL001").get("allow", [])


# -- JSON report ---------------------------------------------------------


def test_json_report_shape(tmp_path):
    write(tmp_path, "bad.py", SLEEPY)
    result = run_lint(paths=[tmp_path], config=LintConfig(root=tmp_path))
    document = json.loads(render_json(result))
    assert document["ok"] is False
    assert document["counts"] == {"RL003": 1}
    [violation] = document["violations"]
    assert {"path", "line", "col", "rule", "message", "snippet",
            "suppressed"} <= set(violation)


# -- CLI contract --------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    bad = write(tmp_path, "bad.py", SLEEPY)
    good = write(tmp_path, "good.py", "def f():\n    return 1\n")
    broken = write(tmp_path, "broken.py", "def f(:\n")
    assert main(["lint", str(good)]) == 0
    assert main(["lint", str(bad)]) == 1
    assert main(["lint", str(broken)]) == 2
    assert main(["lint", str(tmp_path / "missing.py")]) == 2
    capsys.readouterr()


def test_cli_unknown_rule_is_usage_error(tmp_path, capsys):
    good = write(tmp_path, "good.py", "x = 1\n")
    assert main(["lint", "--select", "RL999", str(good)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_json_output(tmp_path, capsys):
    bad = write(tmp_path, "bad.py", SLEEPY)
    assert main(["lint", "--json", str(bad)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["counts"] == {"RL003": 1}


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_select_filters(tmp_path, capsys):
    bad = write(tmp_path, "bad.py", SLEEPY)
    assert main(["lint", "--select", "RL001", str(bad)]) == 0
    capsys.readouterr()


@pytest.mark.parametrize("flag", ["--show-suppressed"])
def test_cli_show_suppressed(tmp_path, capsys, flag):
    write(tmp_path, "pragma.py", """\
import time

def wait():
    time.sleep(1.0)  # reprolint: disable=RL003 -- demo
""")
    assert main(["lint", flag, str(tmp_path / "pragma.py")]) == 0
    assert "(suppressed)" in capsys.readouterr().out
