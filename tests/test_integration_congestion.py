"""End-to-end mirror-congestion detection.

Builds the paper's exact hazard on a real simulated switch: a mirrored
port whose Rx + Tx exceed the mirror destination's line rate, with
frames genuinely dropping at the switch -- then verifies that the
telemetry-driven inference (SNMP counters -> MFlib rates -> detector)
flags it, and that it stays quiet when the mirror fits.
"""


from repro.core.congestion import CongestionDetector
from repro.netsim.engine import Simulator
from repro.netsim.frame import Frame
from repro.telemetry.mflib import MFlib
from repro.telemetry.timeseries import CounterStore
from repro.testbed.switch import DOWNLINK, Switch

MAC_A = b"\x02\x00\x00\x00\x00\x01"
MAC_B = b"\x02\x00\x00\x00\x00\x02"


def frame_to(dst, src, size=1000):
    return Frame(wire_len=size, head=dst + src + b"\x08\x00" + b"\x00" * 50)


def build_switch(sim):
    switch = Switch(sim, "tor", default_rate_bps=80_000.0,  # 10 kB/s
                    queue_limit_bytes=4000)
    switch.add_port("src", DOWNLINK)
    switch.add_port("dst", DOWNLINK)
    switch.add_port("mir", DOWNLINK)
    switch.register_mac(MAC_B, "dst")
    switch.register_mac(MAC_A, "src")
    switch.create_mirror("src", "mir")
    return switch


def poll_counters(store, switch, t):
    for port_id, counters in switch.port_counters().items():
        for name, value in counters.items():
            store.append("S", port_id, name, t, value)


def drive(sim, switch, rx_rate_fraction, tx_rate_fraction, duration=20.0):
    """Offer traffic on src's Rx and Tx at fractions of line rate."""
    line_Bps = 10_000.0
    size = 500
    store = CounterStore()
    poll_counters(store, switch, sim.now)
    for direction, fraction in (("rx", rx_rate_fraction),
                                ("tx", tx_rate_fraction)):
        rate_Bps = line_Bps * fraction
        if rate_Bps <= 0:
            continue
        count = int(rate_Bps * duration / size)
        interval = duration / max(count, 1)
        for i in range(count):
            if direction == "rx":
                sim.schedule_at(sim.now + i * interval,
                                switch.ports["src"].link.rx.offer,
                                frame_to(MAC_B, MAC_A, size))
            else:
                sim.schedule_at(sim.now + i * interval,
                                switch.ports["dst"].link.rx.offer,
                                frame_to(MAC_A, MAC_B, size))
    sim.run(until=sim.now + duration)
    poll_counters(store, switch, sim.now)
    return store


class TestEndToEndCongestion:
    def test_overload_detected_and_real(self):
        sim = Simulator()
        switch = build_switch(sim)
        # Rx 70% + Tx 70% of line rate: the mirror egress (100%) drowns.
        store = drive(sim, switch, 0.7, 0.7)
        detector = CongestionDetector(MFlib(store))
        verdict = detector.check("S", "src", 80_000.0, 0.0, sim.now)
        assert verdict.overloaded is True
        # And the inference corresponds to actual switch-side drops.
        assert switch.ports["mir"].counters()["tx_drops"] > 0

    def test_fitting_mirror_not_flagged(self):
        sim = Simulator()
        switch = build_switch(sim)
        # Rx 30% + Tx 30%: clones fit in the mirror port's line rate.
        store = drive(sim, switch, 0.3, 0.3)
        detector = CongestionDetector(MFlib(store))
        verdict = detector.check("S", "src", 80_000.0, 0.0, sim.now)
        assert verdict.overloaded is False
        assert switch.ports["mir"].counters()["tx_drops"] == 0

    def test_single_direction_at_line_rate_fits(self):
        """Mirroring only Rx of a saturated port still fits: the hazard
        is specifically Rx + Tx > line rate."""
        sim = Simulator()
        switch = build_switch(sim)
        store = drive(sim, switch, 0.9, 0.0)
        detector = CongestionDetector(MFlib(store))
        verdict = detector.check("S", "src", 80_000.0, 0.0, sim.now)
        assert verdict.overloaded is False
        assert switch.ports["mir"].counters()["tx_drops"] == 0
