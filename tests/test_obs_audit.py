"""Acceptance tests for ``repro audit``: a seeded end-to-end run
conserves every frame exactly, and the audit reconstructs the loss
waterfall byte-for-byte from the journal alone."""

import copy
import json

import pytest

from repro.analysis import AnalysisPipeline
from repro.cli import build_parser, main
from repro.core import Coordinator, PatchworkConfig, RecoveryConfig, SamplingPlan
from repro.obs import (
    Observability,
    RunJournal,
    audit_file,
    audit_journal,
    scoped,
)
from repro.obs.ledger import attach_digests
from repro.telemetry import SNMPPoller
from repro.testbed import FederationBuilder, TestbedAPI
from repro.traffic.workloads import TrafficOrchestrator

SITES = ["STAR", "MICH", "UTAH"]


@pytest.fixture(scope="module")
def audited_run(tmp_path_factory):
    """One observed occasion + analysis, journal written to disk.

    Includes a STAR outage and injected crashes so the audit covers
    fault-window and aborted-sample accounting, not just the happy path.
    """
    out = tmp_path_factory.mktemp("audit-e2e")
    federation = FederationBuilder(seed=42).build(site_names=SITES)
    api = TestbedAPI(federation)
    poller = SNMPPoller(federation, interval=30.0)
    poller.start()
    orchestrator = TrafficOrchestrator(federation, seed=7, scale=0.02)
    orchestrator.setup()
    for window in range(5):
        orchestrator.generate_window(window * 100.0, 100.0)
    config = PatchworkConfig(
        output_dir=out,
        plan=SamplingPlan(sample_duration=2, sample_interval=10,
                          samples_per_run=2, runs_per_cycle=1, cycles=2),
        desired_instances=1,
        recovery=RecoveryConfig(enabled=True, breaker_threshold=2),
    )
    federation.faults.add_outage(0.0, 300.0, reason="incident",
                                 sites={"STAR"})
    with scoped(Observability.create(sim=federation.sim)) as obs:
        coordinator = Coordinator(api, config, poller=poller, seed=5)
        bundle = coordinator.run_profile(crash_probability=0.01)
        pipeline = AnalysisPipeline(max_workers=1)
        pipeline.run(bundle.pcap_paths)
        attach_digests(bundle.ledgers, pipeline.acaps)
    path = obs.journal.write(out / "journal.jsonl")
    return obs, bundle, path


class TestEndToEndConservation:
    def test_every_sample_conserves_exactly(self, audited_run):
        obs, bundle, _ = audited_run
        result = audit_journal(obs.journal)
        assert result.ledgers, "the run produced no ledger rows"
        assert result.ok, result.violations
        for row in result.ledgers:
            assert row.conservation_error() == 0
            assert row.wiring_error() == 0

    def test_audit_agrees_with_live_rows(self, audited_run):
        obs, bundle, _ = audited_run
        result = audit_journal(obs.journal)
        live = bundle.ledgers
        assert len(result.ledgers) == len(live)
        assert result.generated == sum(r.generated for r in live)
        assert result.captured == sum(r.captured for r in live)

    def test_digests_reconciled_from_journal(self, audited_run):
        obs, _, _ = audited_run
        result = audit_journal(obs.journal)
        digested = [r for r in result.ledgers if r.digested is not None]
        assert digested, "no ledger-digest events reached the journal"

    def test_scorecard_covers_profiled_sites(self, audited_run):
        obs, bundle, _ = audited_run
        result = audit_journal(obs.journal)
        assert set(result.scorecards) == {r.site for r in result.ledgers}
        assert result.scorecard.samples == len(result.ledgers)

    def test_scorecard_events_journaled(self, audited_run):
        obs, _, _ = audited_run
        events = obs.journal.of_kind("scorecard")
        assert any(e.data["site"] == "*" for e in events)


class TestByteForByteReproduction:
    def test_audit_from_disk_matches_in_memory(self, audited_run):
        obs, _, path = audited_run
        from_memory = audit_journal(obs.journal)
        from_disk = audit_file(path)
        assert from_disk.render() == from_memory.render()
        assert from_disk.waterfall().to_csv_string() == \
            from_memory.waterfall().to_csv_string()
        assert from_disk.to_dict() == from_memory.to_dict()

    def test_waterfall_survivor_algebra(self, audited_run):
        obs, _, _ = audited_run
        result = audit_journal(obs.journal)
        rows = result.waterfall().rows
        by_cause = {(r[0], r[1]): r for r in rows}
        assert by_cause[("source", "generated")][2] == result.generated
        # The survivors column walks down from generated to captured.
        survivors = [r[4] for r in rows]
        assert survivors[0] == result.generated
        captured_row = by_cause[("capture", "captured")]
        assert captured_row[2] == captured_row[4] == result.captured
        drop_total = sum(r[2] for r in rows
                         if r[1] not in ("generated", "captured",
                                         "digested", "parse-error"))
        assert result.generated - drop_total == result.captured


class TestViolationDetection:
    def doctor(self, journal, mutate):
        """Copy a journal, mutating each ledger event via ``mutate``."""
        doctored = RunJournal()
        for event in journal:
            data = copy.deepcopy(event.data)
            if event.kind == "ledger":
                mutate(data)
            doctored.emit(event.kind, t=event.t, **data)
        return doctored

    def test_lost_frames_flagged(self, audited_run):
        obs, _, _ = audited_run

        def steal_a_frame(data):
            data["captured"] -= 1
            data["frames_seen"] -= 1
            data["delivered"] -= 1

        result = audit_journal(self.doctor(obs.journal, steal_a_frame))
        assert not result.ok
        assert any("conservation violated" in v for v in result.violations)
        assert "VIOLATION" in result.render()

    def test_wiring_mismatch_flagged(self, audited_run):
        obs, _, _ = audited_run

        def miswire(data):
            data["frames_seen"] += 3

        result = audit_journal(self.doctor(obs.journal, miswire))
        assert any("delivered/seen mismatch" in v for v in result.violations)

    def test_digest_mismatch_flagged_only_when_unambiguous(self):
        journal = RunJournal()
        base = dict(site="S", instance="i", cycle=0, run=0, sample=0,
                    slot=0, mirrored_port="p1", dest_port="mir",
                    method="tcpdump", directions=["rx", "tx"],
                    start=0.0, end=1.0, aborted=False, offered=10,
                    carry_in=0, generated=10, cloned=10, delivered=10,
                    frames_seen=10, captured=10,
                    drops={c: 0 for c in ("oversize", "fault-window",
                                          "mirror-egress", "in-flight",
                                          "nic-ring", "writer-backpressure",
                                          "filtered")},
                    source_rx_drops=0, source_tx_drops=0, verdict=None,
                    conserved=True)
        journal.emit("ledger", pcap="S/unique.pcap", **base)
        journal.emit("ledger", pcap="S/shared.pcap", **base)
        journal.emit("ledger", pcap="S/shared.pcap", **base)
        journal.emit("ledger-digest", pcap="S/unique.pcap", digested=7,
                     truncated=0, parse_errors=0)
        journal.emit("ledger-digest", pcap="S/shared.pcap", digested=7,
                     truncated=0, parse_errors=0)
        result = audit_journal(journal)
        mismatches = [v for v in result.violations if "digest mismatch" in v]
        assert len(mismatches) == 1
        assert "unique.pcap" in mismatches[0]


class TestAuditCli:
    def test_parser(self):
        parser = build_parser()
        args = parser.parse_args(["audit", "j.jsonl", "--csv", "w.csv",
                                  "--json"])
        assert args.command == "audit"
        assert str(args.journal) == "j.jsonl"
        assert str(args.csv) == "w.csv"
        assert args.json

    def test_ok_run_exits_zero(self, audited_run, capsys):
        _, _, path = audited_run
        assert main(["audit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Frame loss waterfall" in out
        assert "conservation:     OK" in out
        assert "scorecard" in out

    def test_csv_written(self, audited_run, tmp_path, capsys):
        _, _, path = audited_run
        csv_path = tmp_path / "waterfall.csv"
        assert main(["audit", str(path), "--csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        assert text.splitlines()[0] == \
            "stage,cause,frames,pct_of_generated,survivors"
        assert "mirror-egress" in text

    def test_json_mode(self, audited_run, capsys):
        _, _, path = audited_run
        assert main(["audit", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["samples"] > 0
        assert set(payload["waterfall"]) == {"title", "columns", "rows"}
        assert "precision" in payload["scorecard"]

    def test_violation_exits_one(self, audited_run, tmp_path, capsys):
        obs, _, _ = audited_run
        doctored = TestViolationDetection().doctor(
            obs.journal, lambda data: data.__setitem__(
                "captured", data["captured"] + 5))
        path = doctored.write(tmp_path / "doctored.jsonl")
        assert main(["audit", str(path)]) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_missing_journal_exits_two(self, capsys):
        assert main(["audit", "/nonexistent/journal.jsonl"]) == 2
        assert "no such journal" in capsys.readouterr().err

    def test_journal_without_ledgers_exits_two(self, tmp_path, capsys):
        journal = RunJournal()
        journal.emit("log", t=1.0, message="hello")
        path = journal.write(tmp_path / "bare.jsonl")
        assert main(["audit", str(path)]) == 2
        assert "no ledger events" in capsys.readouterr().err


class TestDanglingSpanWarnings:
    def test_clean_run_has_no_warnings(self, audited_run):
        obs, _, _ = audited_run
        result = audit_journal(obs.journal)
        assert result.warnings == []
        assert "Warnings" not in result.render()

    def test_never_closed_span_surfaces_as_warning(self, audited_run):
        obs, _, _ = audited_run
        doctored = RunJournal()
        for event in obs.journal:
            doctored.emit(event.kind, t=event.t, **event.data)
        doctored.emit("span-open", t=7.0, span="STAR/99", parent=None,
                      name="capture.session", attrs={"site": "STAR"})
        result = audit_journal(doctored)
        warning, = [w for w in result.warnings if "dangling span" in w]
        assert "capture.session" in warning
        assert "STAR" in warning
        # Warnings are advisory: conservation still holds, so the
        # audit's verdict must not flip.
        assert result.ok
        assert "Warnings:" in result.render()
        assert result.to_dict()["warnings"] == result.warnings

    def test_cli_renders_warning_but_exits_zero(self, audited_run,
                                                tmp_path, capsys):
        obs, _, _ = audited_run
        doctored = RunJournal()
        for event in obs.journal:
            doctored.emit(event.kind, t=event.t, **event.data)
        doctored.emit("span-open", t=7.0, span="STAR/99", parent=None,
                      name="capture.session", attrs={"site": "STAR"})
        path = doctored.write(tmp_path / "dangling.jsonl")
        assert main(["audit", str(path)]) == 0
        assert "dangling span" in capsys.readouterr().out
