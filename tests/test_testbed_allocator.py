"""Tests for the slice allocator: admission, placement, latency, faults."""

import pytest

from repro.testbed.errors import (
    InsufficientResourcesError,
    SliceNotFoundError,
    TransientBackendError,
)
from repro.testbed.faults import FaultInjector
from repro.testbed.federation import FederationBuilder
from repro.testbed.slice_model import NodeRequest, SliceRequest


@pytest.fixture()
def federation():
    return FederationBuilder(seed=42).build(site_names=["STAR", "MICH"])


def request(site="STAR", nodes=1, nics=1):
    return SliceRequest(
        site=site,
        nodes=[NodeRequest(name=f"n{i}", dedicated_nics=nics) for i in range(nodes)],
    )


class TestAdmission:
    def test_allocate_and_delete(self, federation):
        allocator = federation.allocator
        before = federation.site("STAR").available_resources()
        live = allocator.allocate(request())
        during = federation.site("STAR").available_resources()
        assert during.dedicated_nics == before.dedicated_nics - 1
        assert during.cores == before.cores - 2
        allocator.delete(live.name)
        after = federation.site("STAR").available_resources()
        assert after == before

    def test_insufficient_nics_reported(self, federation):
        free = federation.site("STAR").available_resources().dedicated_nics
        with pytest.raises(InsufficientResourcesError) as excinfo:
            federation.allocator.allocate(request(nodes=1, nics=free + 1))
        assert excinfo.value.resource == "dedicated_nics"

    def test_simulate_does_not_consume(self, federation):
        before = federation.site("STAR").available_resources()
        assert federation.allocator.simulate(request()) is None
        assert federation.site("STAR").available_resources() == before

    def test_simulate_reports_shortfall(self, federation):
        free = federation.site("STAR").available_resources().dedicated_nics
        shortfall = federation.allocator.simulate(request(nics=free + 1))
        assert shortfall is not None and shortfall[0] == "dedicated_nics"

    def test_unknown_site(self, federation):
        with pytest.raises(SliceNotFoundError):
            federation.allocator.allocate(request(site="NOWHERE"))

    def test_delete_unknown_slice(self, federation):
        with pytest.raises(SliceNotFoundError):
            federation.allocator.delete("ghost")

    def test_delete_idempotent(self, federation):
        live = federation.allocator.allocate(request())
        federation.allocator.delete(live.name)
        federation.allocator.delete(live.name)  # no error

    def test_vm_ports_granted(self, federation):
        live = federation.allocator.allocate(request())
        vm = live.vm("n0")
        assert len(vm.nic_ports) == 2  # dual-port dedicated NIC


class TestLatency:
    def test_allocation_charges_time(self, federation):
        start = federation.sim.now
        federation.allocator.allocate(request())
        assert federation.sim.now > start

    def test_large_slices_cost_superlinear(self, federation):
        allocator = federation.allocator
        small = allocator.allocation_latency(request(nodes=1))
        big = allocator.allocation_latency(request(nodes=4))
        # 4x slivers must cost more than 4x the marginal latency.
        assert (big - allocator.BASE_LATENCY) > 4 * (small - allocator.BASE_LATENCY)

    def test_failed_allocation_still_costs_base_latency(self, federation):
        free = federation.site("STAR").available_resources().dedicated_nics
        start = federation.sim.now
        with pytest.raises(InsufficientResourcesError):
            federation.allocator.allocate(request(nics=free + 1))
        assert federation.sim.now >= start + federation.allocator.BASE_LATENCY


class TestFaults:
    def test_outage_window_fails_allocation(self):
        faults = FaultInjector()
        federation = FederationBuilder(seed=42).build(
            site_names=["STAR", "MICH"], faults=faults)
        faults.add_outage(0.0, 1000.0, reason="maintenance")
        with pytest.raises(TransientBackendError):
            federation.allocator.allocate(request())

    def test_outage_scoped_to_sites(self):
        faults = FaultInjector()
        federation = FederationBuilder(seed=42).build(
            site_names=["STAR", "MICH"], faults=faults)
        faults.add_outage(0.0, 1e6, sites={"MICH"})
        federation.allocator.allocate(request(site="STAR"))  # unaffected
        with pytest.raises(TransientBackendError):
            federation.allocator.allocate(request(site="MICH"))

    def test_allocation_succeeds_after_outage(self):
        faults = FaultInjector()
        federation = FederationBuilder(seed=42).build(
            site_names=["STAR", "MICH"], faults=faults)
        faults.add_outage(0.0, 10.0)
        federation.sim.run(until=11.0)
        live = federation.allocator.allocate(request())
        assert live.active


class TestRollback:
    def test_partial_failure_rolls_back(self, federation):
        """If placement fails mid-way, nothing stays allocated."""
        site = federation.site("STAR")
        free_nics = site.available_resources().dedicated_nics
        before = site.available_resources()
        # First node fits; the second node's NIC demand cannot be met,
        # but aggregate admission passes only when totals fit -- so use
        # a shape where aggregate fits but per-worker placement fails:
        # one node requesting more contiguous cores than any worker has.
        workers_cores = max(w.capacity.cores for w in site.workers)
        bad = SliceRequest(site="STAR", nodes=[
            NodeRequest(name="ok", dedicated_nics=0),
            NodeRequest(name="huge", cores=workers_cores + 1, dedicated_nics=0),
        ])
        total = site.available_resources()
        if bad.resource_vector().fits_within(total):
            with pytest.raises(InsufficientResourcesError):
                federation.allocator.allocate(bad)
            assert site.available_resources() == before

    def test_slice_request_scaled_down(self):
        req = request(nodes=3)
        smaller = req.scaled_down()
        assert len(smaller.nodes) == 2
        assert smaller.site == req.site
        assert request(nodes=1).scaled_down() is None

    def test_sliver_count(self):
        req = SliceRequest(site="STAR", nodes=[
            NodeRequest(name="a", dedicated_nics=1, fpga_nics=1),
            NodeRequest(name="b", dedicated_nics=0, shared_nic_ports=2),
        ])
        # a: vm + nic + fpga = 3; b: vm + 2 vf = 3.
        assert req.sliver_count() == 6
