"""Whole-program index: cache behavior, event registry, SARIF, graph.

The fact cache must be invisible to correctness: a warm run returns
exactly what a cold run returns, and editing one file re-extracts only
that file.  The event registry must round-trip (regenerating EVENTS.md
against an unchanged tree is a no-op -- the CI drift gate).
"""

from __future__ import annotations

import json
import textwrap

from repro.cli import main
from repro.devtools.lint import (LintConfig, render_events_md, render_sarif,
                                 run_lint)
from repro.devtools.lint.project import FACTS_VERSION

GOOD = """\
    KINDS = ("tick",)

    def emit(journal, now):
        journal.emit("tick", t=now, n=1)

    def read(journal):
        return [e for e in journal.events if e.kind in KINDS]
    """

BAD_SLEEP = """\
    import time

    def wait():
        time.sleep(1.0)
    """


def write(tmp_path, name, body):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return path


def config_for(tmp_path, **kwargs) -> LintConfig:
    return LintConfig(root=tmp_path, **kwargs)


def cli_config(tmp_path) -> str:
    """A minimal pyproject anchoring the CLI's root at tmp_path."""
    path = tmp_path / "pyproject.toml"
    path.write_text('[tool.reprolint]\npaths = ["."]\n')
    return str(path)


# -- cache: hit, invalidation, parity ------------------------------------


def test_cache_hits_on_unchanged_tree(tmp_path):
    write(tmp_path, "a.py", GOOD)
    write(tmp_path, "b.py", GOOD.replace("tick", "tock"))
    cold = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    assert cold.index_stats["cache_misses"] == 2
    assert cold.index_stats["cache_hits"] == 0
    assert (tmp_path / ".reprolint-cache.json").is_file()
    warm = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    assert warm.index_stats["cache_hits"] == 2
    assert warm.index_stats["cache_misses"] == 0


def test_cache_invalidates_only_the_edited_file(tmp_path):
    write(tmp_path, "a.py", GOOD)
    write(tmp_path, "b.py", GOOD.replace("tick", "tock"))
    run_lint(paths=[tmp_path], config=config_for(tmp_path))
    write(tmp_path, "b.py", GOOD.replace("tick", "tocks"))
    warm = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    assert warm.index_stats["cache_hits"] == 1
    assert warm.index_stats["cache_misses"] == 1


def test_cold_and_warm_runs_agree(tmp_path):
    """Cache parity: identical violations, emits, and call edges."""
    write(tmp_path, "a.py", GOOD)
    write(tmp_path, "bad.py", BAD_SLEEP)
    cold = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    warm = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    nocache = run_lint(paths=[tmp_path],
                       config=config_for(tmp_path, use_cache=False))
    for a, b in ((cold, warm), (cold, nocache)):
        assert [v.to_dict() for v in a.violations] \
            == [v.to_dict() for v in b.violations]
        graph_a = a.index.to_graph_dict()
        graph_b = b.index.to_graph_dict()
        graph_a.pop("cache"), graph_b.pop("cache")
        assert graph_a == graph_b


def test_corrupt_cache_is_discarded(tmp_path):
    write(tmp_path, "a.py", GOOD)
    (tmp_path / ".reprolint-cache.json").write_text("{not json")
    result = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    assert result.index_stats["cache_misses"] == 1
    data = json.loads((tmp_path / ".reprolint-cache.json").read_text())
    assert data["version"] == FACTS_VERSION


def test_stale_version_cache_is_discarded(tmp_path):
    write(tmp_path, "a.py", GOOD)
    run_lint(paths=[tmp_path], config=config_for(tmp_path))
    cache_file = tmp_path / ".reprolint-cache.json"
    data = json.loads(cache_file.read_text())
    data["version"] = FACTS_VERSION + 1
    cache_file.write_text(json.dumps(data))
    result = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    assert result.index_stats["cache_misses"] == 1


# -- the event registry and its drift gate -------------------------------


def test_events_md_regeneration_is_a_noop(tmp_path):
    """The committed-EVENTS.md contract: render, re-render, identical."""
    write(tmp_path, "a.py", GOOD)
    result = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    first = render_events_md(result.index, [])
    again = render_events_md(result.index, [])
    assert first == again
    rerun = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    assert render_events_md(rerun.index, []) == first


def test_shipped_events_md_is_current():
    """EVENTS.md in the repo must match the tree (the CI drift gate,
    runnable locally)."""
    from pathlib import Path

    from repro.devtools.lint import events_md_stale, load_config

    config = load_config()
    config.use_cache = False
    result = run_lint(config=config)
    observe = config.options_for("RL009").get("observe_only", [])
    events_md = Path(config.root) / "EVENTS.md"
    assert events_md.is_file(), "EVENTS.md missing from the repo"
    assert not events_md_stale(result.index, list(observe), events_md), \
        "EVENTS.md is stale; regenerate with `repro lint --events-md EVENTS.md`"


def test_cli_check_events_detects_drift(tmp_path, capsys):
    write(tmp_path, "a.py", GOOD)
    config = cli_config(tmp_path)
    target = tmp_path / "EVENTS.md"
    assert main(["lint", "--config", config,
                 "--no-cache", "--events-md", str(target)]) == 0
    assert main(["lint", "--config", config,
                 "--no-cache", "--check-events", str(target)]) == 0
    target.write_text(target.read_text() + "\ndrifted\n")
    assert main(["lint", "--config", config,
                 "--no-cache", "--check-events", str(target)]) == 1
    assert "stale" in capsys.readouterr().err


# -- SARIF ---------------------------------------------------------------


def test_sarif_document_shape(tmp_path):
    write(tmp_path, "bad.py", BAD_SLEEP)
    result = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    doc = render_sarif(result)
    assert doc["version"] == "2.1.0"
    [run] = doc["runs"]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"RL000", "RL003", "RL009", "RL012", "E000"} <= rule_ids
    [finding] = run["results"]
    assert finding["ruleId"] == "RL003"
    assert finding["level"] == "error"
    location = finding["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "bad.py"
    assert location["region"]["startLine"] == 4
    json.dumps(doc)  # must be serializable as-is


def test_cli_sarif_flag(tmp_path, capsys):
    write(tmp_path, "bad.py", BAD_SLEEP)
    assert main(["lint", "--config", cli_config(tmp_path),
                 "--no-cache", "--sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"][0]["ruleId"] == "RL003"


# -- the graph dump ------------------------------------------------------


def test_graph_dump_contents(tmp_path):
    write(tmp_path, "mod.py", """\
        def leaf():
            return 1

        def root():
            return leaf()
        """)
    result = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    graph = result.index.to_graph_dict()
    assert graph["facts_version"] == FACTS_VERSION
    assert "mod.root" in graph["definitions"]
    assert graph["call_graph"]["mod.root"] == ["mod.leaf"]
    assert graph["cache"] == {"hits": 0, "misses": 1}


def test_cli_graph_flag(tmp_path, capsys):
    write(tmp_path, "a.py", GOOD)
    target = tmp_path / "graph.json"
    assert main(["lint", "--config", cli_config(tmp_path),
                 "--no-cache", "--graph", str(target)]) == 0
    capsys.readouterr()
    graph = json.loads(target.read_text())
    assert graph["files"] == ["a.py"]
    assert [e["kind"] for e in graph["events"]] == ["tick"]


# -- RL000 engine integration --------------------------------------------


def test_reasonless_disable_all_cannot_hide_rl000(tmp_path):
    write(tmp_path, "sneaky.py", """\
        # reprolint: disable-file=all
        import time

        def wait():
            time.sleep(1.0)
        """)
    result = run_lint(paths=[tmp_path], config=config_for(tmp_path))
    assert [v.rule for v in result.violations] == ["RL000"]
    assert [v.rule for v in result.suppressed] == ["RL003"]
